"""Nearby-device discovery.

Models the paper's envisioned environment: "a myriad of small
memory-enabled devices with wireless connectivity, scattered all-over,
available to any user either to store data or to relay communications".
Devices join and leave radio range (explicitly, or by moving relative to
the mobile device); the neighborhood emits context events and acts as the
SwappingManager's dynamic store provider.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import DeviceNotFoundError
from repro.events import DeviceJoinedEvent, DeviceLeftEvent, EventBus


@dataclass
class NeighborEntry:
    """One device known to the radio."""

    store: Any  # SwapStore
    position: Optional[Tuple[float, float]] = None
    in_range: bool = True

    @property
    def device_id(self) -> str:
        return self.store.device_id


class Neighborhood:
    """The set of storage devices currently reachable over the radio."""

    def __init__(
        self, bus: Optional[EventBus] = None, radio_range: float = 10.0
    ) -> None:
        self.bus = bus
        self.radio_range = radio_range
        self._entries: Dict[str, NeighborEntry] = {}
        self._own_position: Tuple[float, float] = (0.0, 0.0)

    # -- membership -----------------------------------------------------------

    def join(
        self, store: Any, position: Optional[Tuple[float, float]] = None
    ) -> NeighborEntry:
        """A device enters the neighborhood (in range unless placed out)."""
        entry = NeighborEntry(store=store, position=position)
        if position is not None:
            entry.in_range = self._distance(position) <= self.radio_range
        self._entries[store.device_id] = entry
        if entry.in_range:
            self._emit(DeviceJoinedEvent(device_id=store.device_id))
        return entry

    def leave(self, device_id: str) -> None:
        entry = self._entries.pop(device_id, None)
        if entry is None:
            raise DeviceNotFoundError(f"unknown device {device_id!r}")
        if entry.in_range:
            self._emit(DeviceLeftEvent(device_id=device_id))

    def entry(self, device_id: str) -> NeighborEntry:
        try:
            return self._entries[device_id]
        except KeyError:
            raise DeviceNotFoundError(f"unknown device {device_id!r}") from None

    # -- positions ---------------------------------------------------------------

    def move_self(self, x: float, y: float) -> None:
        """The mobile device moved; re-evaluate who is in range."""
        self._own_position = (x, y)
        self._reevaluate()

    def move_device(self, device_id: str, x: float, y: float) -> None:
        entry = self.entry(device_id)
        entry.position = (x, y)
        self._update_range(entry)

    def set_in_range(self, device_id: str, in_range: bool) -> None:
        """Explicit range toggle for non-positional scenarios."""
        entry = self.entry(device_id)
        if entry.in_range == in_range:
            return
        entry.in_range = in_range
        if in_range:
            self._emit(DeviceJoinedEvent(device_id=device_id))
        else:
            self._emit(DeviceLeftEvent(device_id=device_id))

    # -- discovery ------------------------------------------------------------------

    def discover(self) -> List[Any]:
        """Stores currently in range (the SwappingManager store provider)."""
        return [
            entry.store for entry in self._entries.values() if entry.in_range
        ]

    def in_range_ids(self) -> List[str]:
        return [
            device_id
            for device_id, entry in self._entries.items()
            if entry.in_range
        ]

    def __len__(self) -> int:
        return len(self._entries)

    # -- internals ---------------------------------------------------------------------

    def _distance(self, position: Tuple[float, float]) -> float:
        return math.dist(position, self._own_position)

    def _reevaluate(self) -> None:
        for entry in self._entries.values():
            self._update_range(entry)

    def _update_range(self, entry: NeighborEntry) -> None:
        if entry.position is None:
            return
        now_in_range = self._distance(entry.position) <= self.radio_range
        if now_in_range != entry.in_range:
            entry.in_range = now_in_range
            if now_in_range:
                self._emit(DeviceJoinedEvent(device_id=entry.device_id))
            else:
                self._emit(DeviceLeftEvent(device_id=entry.device_id))

    def _emit(self, event: Any) -> None:
        if self.bus is not None:
            self.bus.emit(event)
