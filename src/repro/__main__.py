"""Command-line entry point: inventory, self-check, quick demo.

Usage::

    python -m repro            # inventory + quick self-check
    python -m repro demo       # run the Figure 2 pressure scenario
    python -m repro figure5    # full Figure 5 reproduction (slow)
    python -m repro obs ...    # inspect observability dumps (check/report/prom)
"""

from __future__ import annotations

import sys


def _self_check() -> bool:
    """A fast end-to-end exercise of every subsystem."""
    from repro import Space, SwapClusterUtils, managed
    from repro.devices import InMemoryStore

    @managed
    class _CheckNode:
        def __init__(self, value: int) -> None:
            self.value = value
            self.next = None

        def get_next(self):
            return self.next

        def get_value(self) -> int:
            return self.value

    space = Space("self-check", heap_capacity=256 * 1024)
    space.manager.add_store(InMemoryStore("check-store"))
    head = _CheckNode(0)
    node = head
    for value in range(1, 50):
        node.next = _CheckNode(value)
        node = node.next
    handle = space.ingest(head, cluster_size=10, root_name="check")
    space.swap_out(2)
    total = 0
    cursor = SwapClusterUtils.assign(space.make_cursor(handle))
    while cursor is not None:
        total += cursor.get_value()
        cursor = cursor.get_next()
    space.verify_integrity()
    space.del_root("check")
    space.gc()
    return total == sum(range(50)) and space.object_count() == 0


def main(argv: list[str]) -> int:
    import repro

    if argv and argv[0] == "figure5":
        from repro.bench.figure5 import main as figure5_main

        return figure5_main(argv[1:])

    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])

    if argv and argv[0] == "demo":
        from repro.sim import run_pressure_scenario

        report = run_pressure_scenario()
        print("Figure 2 pressure scenario:")
        print(f"  batches built:      {report.batches_built}")
        print(f"  swap-outs:          {report.swap_outs}")
        print(f"  swap-ins (reloads): {report.swap_ins}")
        print(f"  GC store drops:     {report.drops}")
        print(f"  radio time:         {report.sim_seconds:.2f} simulated s")
        print(f"  data consistent:    {report.consistent}")
        return 0 if report.consistent else 1

    print(f"repro {repro.__version__} — Object-Swapping for Resource-"
          f"Constrained Devices (ICDCS 2007), full reproduction")
    print(__doc__.split("Usage::")[1])
    ok = _self_check()
    print(f"self-check: {'OK' if ok else 'FAILED'} "
          f"(ingest -> swap-out -> assign-iteration reload -> GC)")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
