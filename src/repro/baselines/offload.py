"""GC-assisted offloading baseline (Messer et al. ICDCS'02, Chen et al. WMCSA'03).

The related work migrates individual objects to a nearby *server* and
leaves per-object **surrogates** behind.  Unlike object-swapping this
requires (Section 6): (i) object tables that account for objects residing
in other machines, (ii) an instrumented LGC that monitors objects
one-by-one to pick offload victims, and (iii) a DGC algorithm managing
references between resident and migrated objects — plus a receiver that
runs a compatible VM/runtime, not a dumb XML store.

This module implements that design honestly (object table, surrogates,
access counting as the "instrumented GC", reference-count DGC between
device and server) so the portability matrix and the overhead comparison
are measured, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional
from xml.etree import ElementTree as ET

from repro.comm.transport import Link, LoopbackLink
from repro.core.clustering import walk_graph
from repro.errors import CodecError, SwapError
from repro.ids import IdAllocator
from repro.memory.heap import Heap
from repro.memory.sizemodel import DEFAULT_SIZE_MODEL, SizeModel
from repro.runtime.classext import instance_fields
from repro.runtime.registry import TypeRegistry, global_registry
from repro.wire.wrappers import decode_value, encode_value

_object_setattr = object.__setattr__


#: The qualitative evaluation's requirements matrix (paper §5 and §6).
#: Keys are the approaches; values name what each demands.
REQUIREMENTS_MATRIX: Dict[str, Dict[str, bool]] = {
    "object-swapping (this paper)": {
        "vm_modification": False,
        "per_object_surrogates": False,
        "dgc_required": False,
        "receiver_needs_vm": False,
        "receiver_needs_middleware": False,
        "cpu_intensive": False,
    },
    "offloading (Messer'02/Chen'03)": {
        "vm_modification": True,
        "per_object_surrogates": True,
        "dgc_required": True,
        "receiver_needs_vm": True,
        "receiver_needs_middleware": True,
        "cpu_intensive": False,
    },
    "heap compression (Chen'03 OOPSLA)": {
        "vm_modification": True,
        "per_object_surrogates": False,
        "dgc_required": False,
        "receiver_needs_vm": False,
        "receiver_needs_middleware": False,
        "cpu_intensive": True,
    },
    "naive per-object proxies": {
        "vm_modification": False,
        "per_object_surrogates": True,
        "dgc_required": False,
        "receiver_needs_vm": False,
        "receiver_needs_middleware": False,
        "cpu_intensive": False,
    },
}


class Surrogate:
    """Per-object stand-in for a migrated object (transparent forwarder)."""

    __slots__ = ("_ol_runtime", "_ol_oid")

    _ol_is_surrogate = True

    def __init__(self, runtime: "OffloadRuntime", oid: int) -> None:
        _object_setattr(self, "_ol_runtime", runtime)
        _object_setattr(self, "_ol_oid", oid)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        target = self._ol_runtime._fetch_back(self._ol_oid)
        return getattr(target, name)

    def __repr__(self) -> str:
        return f"<surrogate oid={self._ol_oid}>"


class _ObjectTableEntry:
    __slots__ = ("oid", "location", "access_count", "remote_ref_count")

    def __init__(self, oid: int) -> None:
        self.oid = oid
        self.location = "local"  # "local" | "remote"
        self.access_count = 0
        #: references from resident objects to this migrated object —
        #: the DGC refcount the approach must maintain
        self.remote_ref_count = 0


class _RemoteObjectServer:
    """The capable receiver this approach requires (runs our runtime)."""

    def __init__(self) -> None:
        self.held: Dict[int, str] = {}

    def put(self, oid: int, payload: str) -> None:
        self.held[oid] = payload

    def get(self, oid: int) -> str:
        return self.held[oid]

    def release(self, oid: int) -> None:
        self.held.pop(oid, None)


class OffloadRuntime:
    """Modified-VM runtime with per-object offloading.

    The "VM modification" shows up as: an object table consulted on
    every mediated access, access counting (the instrumented LGC's
    victim signal), and surrogate maintenance.
    """

    def __init__(
        self,
        heap_capacity: int = 16 * 1024 * 1024,
        link: Optional[Link] = None,
        registry: Optional[TypeRegistry] = None,
        size_model: Optional[SizeModel] = None,
    ) -> None:
        self.heap = Heap(heap_capacity)
        self._registry = registry if registry is not None else global_registry()
        self.size_model = size_model if size_model is not None else DEFAULT_SIZE_MODEL
        self._link = link if link is not None else LoopbackLink()
        self._oids = IdAllocator()
        self._objects: Dict[int, Any] = {}
        self._table: Dict[int, _ObjectTableEntry] = {}
        self._surrogates: Dict[int, Surrogate] = {}
        self.server = _RemoteObjectServer()
        self.offloads = 0
        self.fetch_backs = 0

    # -- adoption ----------------------------------------------------------------

    def ingest(self, root: Any) -> Any:
        for obj in walk_graph(root):
            oid = self._oids.next()
            _object_setattr(obj, "_ol_oid", oid)
            self._objects[oid] = obj
            self._table[oid] = _ObjectTableEntry(oid)
            self.heap.allocate(oid, self.size_model.size_of(obj))
        return root

    def record_access(self, obj: Any) -> None:
        """The instrumented-LGC hook: per-object access monitoring."""
        entry = self._table.get(getattr(obj, "_ol_oid", -1))
        if entry is not None:
            entry.access_count += 1

    # -- offload / fetch-back ----------------------------------------------------------

    def offload(self, oid: int) -> None:
        """Migrate one object to the server, leave a surrogate."""
        entry = self._table[oid]
        if entry.location == "remote":
            raise SwapError(f"object {oid} already offloaded")
        obj = self._objects.pop(oid)
        payload = self._encode(oid, obj)
        self._link.transfer(len(payload.encode("utf-8")))
        self.server.put(oid, payload)
        surrogate = Surrogate(self, oid)
        self._surrogates[oid] = surrogate
        # every resident field referencing the object must be re-pointed
        # to the surrogate, and the DGC refcount established
        refs = 0
        for holder in self._objects.values():
            refs += self._repoint(holder, obj, surrogate)
        entry.remote_ref_count = refs
        entry.location = "remote"
        self.heap.free_oid(oid)
        self.heap.allocate(-oid, self.size_model.proxy_size())  # surrogate cost
        self.offloads += 1

    def offload_coldest(self, count: int = 1) -> List[int]:
        """The GC-assisted victim pick: least-accessed local objects."""
        candidates = sorted(
            (entry for entry in self._table.values() if entry.location == "local"),
            key=lambda entry: entry.access_count,
        )
        chosen = [entry.oid for entry in candidates[:count]]
        for oid in chosen:
            self.offload(oid)
        return chosen

    def _fetch_back(self, oid: int) -> Any:
        entry = self._table[oid]
        if entry.location == "local":
            return self._objects[oid]
        payload = self.server.get(oid)
        self._link.transfer(len(payload.encode("utf-8")))
        obj = self._decode(payload)
        self.server.release(oid)
        self._objects[oid] = obj
        self.heap.free_oid(-oid)
        self.heap.allocate(oid, self.size_model.size_of(obj))
        entry.location = "local"
        surrogate = self._surrogates.pop(oid)
        for holder in self._objects.values():
            self._repoint(holder, surrogate, obj)
        self.fetch_backs += 1
        return obj

    def dgc_release(self, oid: int) -> None:
        """DGC: a remote object with zero inbound refs is reclaimed."""
        entry = self._table.get(oid)
        if entry is None or entry.location != "remote":
            return
        if entry.remote_ref_count == 0:
            self.server.release(oid)
            self._surrogates.pop(oid, None)
            if self.heap.holds(-oid):
                self.heap.free_oid(-oid)
            del self._table[oid]

    # -- plumbing ------------------------------------------------------------------------

    def _repoint(self, holder: Any, old: Any, new: Any) -> int:
        count = 0
        for name, value in instance_fields(holder).items():
            if value is old:
                _object_setattr(holder, name, new)
                count += 1
            elif type(value) is list:
                for index, item in enumerate(value):
                    if item is old:
                        value[index] = new
                        count += 1
        return count

    def _classify(self, value: Any) -> tuple | None:
        oid = getattr(value, "_ol_oid", None)
        if oid is not None and (
            getattr(type(value), "_obi_managed", False)
            or getattr(type(value), "_ol_is_surrogate", False)
        ):
            return ("local", oid)
        return None

    def _encode(self, oid: int, obj: Any) -> str:
        schema = type(obj)._obi_schema
        root = ET.Element("offload-object", {"oid": str(oid), "class": schema.name})
        for name, value in instance_fields(obj).items():
            field_el = ET.SubElement(root, "field", {"name": name})
            field_el.append(encode_value(value, self._classify))
        return ET.tostring(root, encoding="unicode")

    def _decode(self, text: str) -> Any:
        root = ET.fromstring(text)
        oid = int(root.get("oid"))
        cls = self._registry.resolve(root.get("class", ""))
        obj = object.__new__(cls)
        _object_setattr(obj, "_ol_oid", oid)

        def resolve(kind: str, ident: Any) -> Any:
            if kind != "local":
                raise CodecError("offload documents only carry oid references")
            entry = self._table.get(ident)
            if entry is not None and entry.location == "local":
                return self._objects[ident]
            surrogate = self._surrogates.get(ident)
            if surrogate is None:
                surrogate = Surrogate(self, ident)
                self._surrogates[ident] = surrogate
            return surrogate

        for field_el in root:
            _object_setattr(
                obj, field_el.get("name"), decode_value(field_el[0], resolve)
            )
        return obj

    def memory_report(self) -> Dict[str, int]:
        return {
            "resident": len(self._objects),
            "remote": sum(
                1 for entry in self._table.values() if entry.location == "remote"
            ),
            "total_bytes": self.heap.used,
        }
