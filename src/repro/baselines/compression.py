"""Heap-compression baseline (Chen et al. OOPSLA'03; Chihaia & Gross WMPI'04).

The related work frees memory by *compressing* victim data in place
instead of shipping it away: "constant on-the-fly data compression
performed on the heap saves memory but imposes additional CPU load and
energy cost, since compression is a computational-intensive process"
(Section 6); the software-only variant reserves a compressed memory pool
that "actually reduces the memory available to applications".

Implemented as a :class:`~repro.core.interfaces.SwapStore` whose storage
*is the device's own heap*: pass it to ``manager.swap_out(sid,
store=pool)`` and the cluster's XML is zlib-compressed into the pool,
charging the compressed bytes back to the same heap.  Net memory freed is
(cluster footprint − compressed size); the price is CPU seconds, which
the store meters as the energy proxy for the comparison bench.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import StoreFullError, UnknownKeyError
from repro.ids import IdAllocator


@dataclass
class CompressionStats:
    compressions: int = 0
    decompressions: int = 0
    bytes_in: int = 0
    bytes_compressed: int = 0
    cpu_seconds: float = 0.0

    @property
    def compression_ratio(self) -> float:
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_compressed / self.bytes_in


class CompressedPoolStore:
    """An in-heap compressed memory pool with the SwapStore contract."""

    def __init__(
        self,
        space,
        level: int = 6,
        pool_fraction: float = 0.5,
    ) -> None:
        """``pool_fraction`` caps the pool at a share of the heap —
        "devoting too much memory to the compressed-memory pool hurts
        performance as much as not reserving enough" (Section 6)."""
        if not 0.0 < pool_fraction <= 1.0:
            raise ValueError("pool_fraction must be in (0, 1]")
        self._space = space
        self._level = level
        self._pool_limit = int(space.heap.capacity * pool_fraction)
        self._entries: Dict[str, bytes] = {}
        self._pool_oids: Dict[str, int] = {}
        self._pool_ids = IdAllocator(start=1)
        self._pool_used = 0
        self.stats = CompressionStats()

    @property
    def device_id(self) -> str:
        return "compressed-pool"

    @property
    def pool_used(self) -> int:
        return self._pool_used

    @property
    def pool_limit(self) -> int:
        return self._pool_limit

    def store(self, key: str, xml_text: str) -> None:
        raw = xml_text.encode("utf-8")
        started = time.perf_counter()
        compressed = zlib.compress(raw, self._level)
        self.stats.cpu_seconds += time.perf_counter() - started
        self.stats.compressions += 1
        self.stats.bytes_in += len(raw)
        self.stats.bytes_compressed += len(compressed)
        if self._pool_used + len(compressed) > self._pool_limit:
            raise StoreFullError(
                f"compressed pool full: {len(compressed)} bytes over the "
                f"{self._pool_limit}-byte reservation"
            )
        # the pool lives in the SAME heap: compressing trades application
        # memory for pool memory
        pool_oid = -1_000_000 - self._pool_ids.next()
        self._space.heap.allocate(pool_oid, len(compressed))
        self._entries[key] = compressed
        self._pool_oids[key] = pool_oid
        self._pool_used += len(compressed)

    def fetch(self, key: str) -> str:
        compressed = self._entries.get(key)
        if compressed is None:
            raise UnknownKeyError(f"compressed pool: no key {key!r}")
        started = time.perf_counter()
        raw = zlib.decompress(compressed)
        self.stats.cpu_seconds += time.perf_counter() - started
        self.stats.decompressions += 1
        return raw.decode("utf-8")

    def drop(self, key: str) -> None:
        compressed = self._entries.pop(key, None)
        if compressed is None:
            return
        pool_oid = self._pool_oids.pop(key)
        self._space.heap.free_oid(pool_oid)
        self._pool_used -= len(compressed)

    def has_room(self, nbytes: int) -> bool:
        # admission uses a conservative 4:1 estimate; real admission is
        # checked against the actual compressed size in store()
        estimated = max(64, nbytes // 4)
        return (
            self._pool_used + estimated <= self._pool_limit
            and self._space.heap.would_fit(estimated)
        )

    def keys(self):
        return list(self._entries)
