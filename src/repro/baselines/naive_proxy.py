"""The naive one-proxy-per-object baseline.

Paper, Section 5: "our proposed solution also has several benefits over a
naive one that would have one proxy per each object and all references
mediated by them.  Common application objects are small.  So, this could
potentially double memory occupation when fully-loaded ... This approach
would also inevitably impose a higher performance penalty, due to
indirections.  Furthermore, even when all objects were swapped, the
proxies would still remain."

This module implements that design faithfully so the comparison is
runnable: every managed object gets exactly one permanent
:class:`NaiveProxy`; every reference field holds a proxy (so **every**
navigation is mediated); swapping works object-by-object; proxies are
never reclaimed while the graph is reachable, so the proxy overhead
persists at 100% swap-out.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional
from xml.etree import ElementTree as ET

from repro.core.clustering import walk_graph
from repro.core.interfaces import SwapStore
from repro.errors import CodecError, SwapError
from repro.ids import IdAllocator
from repro.memory.heap import Heap
from repro.memory.sizemodel import DEFAULT_SIZE_MODEL, SizeModel
from repro.runtime.classext import instance_fields
from repro.runtime.registry import TypeRegistry, global_registry
from repro.wire.wrappers import decode_value, encode_value

_object_setattr = object.__setattr__


class NaiveProxy:
    """Permanent per-object proxy; all accesses funnel through it."""

    __slots__ = ("_nv_runtime", "_nv_oid")

    _nv_is_naive_proxy = True

    def __init__(self, runtime: "NaiveRuntime", oid: int) -> None:
        _object_setattr(self, "_nv_runtime", runtime)
        _object_setattr(self, "_nv_oid", oid)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        target = self._nv_runtime._resolve(self._nv_oid)
        value = getattr(target, name)
        if callable(value) and getattr(value, "__self__", None) is target:
            def forwarder(*args: Any, **kwargs: Any) -> Any:
                live = self._nv_runtime._resolve(self._nv_oid)
                return getattr(live, name)(*args, **kwargs)

            return forwarder
        return value

    def __setattr__(self, name: str, value: Any) -> None:
        if name.startswith("_nv_"):
            _object_setattr(self, name, value)
            return
        target = self._nv_runtime._resolve(self._nv_oid)
        setattr(target, name, value)

    def __eq__(self, other: Any) -> Any:
        if other is self:
            return True
        if getattr(type(other), "_nv_is_naive_proxy", False):
            return self._nv_oid == other._nv_oid
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._nv_oid)

    def __repr__(self) -> str:
        state = "swapped" if self._nv_runtime.is_swapped(self._nv_oid) else "resident"
        return f"<naive-proxy oid={self._nv_oid} {state}>"


class NaiveRuntime:
    """Object space with per-object proxies and per-object swapping."""

    def __init__(
        self,
        heap_capacity: int = 16 * 1024 * 1024,
        registry: Optional[TypeRegistry] = None,
        size_model: Optional[SizeModel] = None,
    ) -> None:
        self.heap = Heap(heap_capacity)
        self._registry = registry if registry is not None else global_registry()
        self.size_model = size_model if size_model is not None else DEFAULT_SIZE_MODEL
        self._oids = IdAllocator()
        self._objects: Dict[int, Any] = {}
        #: One *permanent strong* proxy per object — the design's flaw:
        #: proxies stay on the heap even when every object is swapped.
        self._proxies: Dict[int, NaiveProxy] = {}
        self._swapped: Dict[int, str] = {}  # oid -> store key
        self._store: Optional[SwapStore] = None
        self.swap_outs = 0
        self.swap_ins = 0

    # -- setup ---------------------------------------------------------------

    def attach_store(self, store: SwapStore) -> None:
        self._store = store

    def ingest(self, root: Any) -> NaiveProxy:
        """Adopt a raw graph: every object proxied, every edge mediated."""
        order = walk_graph(root)
        for obj in order:
            oid = self._oids.next()
            _object_setattr(obj, "_nv_oid", oid)
            self._objects[oid] = obj
            self._proxies[oid] = NaiveProxy(self, oid)
            self.heap.allocate(oid, self.size_model.size_of(obj))
            # the proxy itself occupies heap — and never leaves
            self.heap.allocate(-oid, self.size_model.proxy_size())
        for obj in order:
            self._mediate_fields(obj)
        return self._proxies[root._nv_oid]

    def proxy_of(self, oid: int) -> NaiveProxy:
        return self._proxies[oid]

    def is_swapped(self, oid: int) -> bool:
        return oid in self._swapped

    def object_count(self) -> int:
        return len(self._proxies)

    def resident_count(self) -> int:
        return len(self._objects)

    # -- swapping (object granularity) ------------------------------------------

    def swap_out(self, oid: int) -> None:
        if oid in self._swapped:
            raise SwapError(f"object {oid} already swapped")
        if self._store is None:
            raise SwapError("no store attached")
        obj = self._objects.pop(oid)
        key = f"naive/{oid}"
        self._store.store(key, self._encode(oid, obj))
        self._swapped[oid] = key
        self.heap.free_oid(oid)
        # note: heap entry -oid (the proxy) intentionally NOT freed
        self.swap_outs += 1

    def swap_out_all(self) -> int:
        count = 0
        for oid in list(self._objects):
            self.swap_out(oid)
            count += 1
        return count

    def _resolve(self, oid: int) -> Any:
        obj = self._objects.get(oid)
        if obj is not None:
            return obj
        key = self._swapped.pop(oid)
        assert self._store is not None
        obj = self._decode(self._store.fetch(key))
        self._store.drop(key)
        self._objects[oid] = obj
        self.heap.allocate(oid, self.size_model.size_of(obj))
        self.swap_ins += 1
        return obj

    # -- mediation -------------------------------------------------------------------

    def _mediate_fields(self, obj: Any) -> None:
        for name, value in instance_fields(obj).items():
            new_value = self._mediate_value(value)
            if new_value is not value:
                _object_setattr(obj, name, new_value)

    def _mediate_value(self, value: Any) -> Any:
        oid = getattr(value, "_nv_oid", None)
        if oid is not None and getattr(type(value), "_obi_managed", False):
            return self._proxies[oid]
        if type(value) is list:
            for index, item in enumerate(value):
                new_item = self._mediate_value(item)
                if new_item is not item:
                    value[index] = new_item
            return value
        if type(value) is tuple:
            rebuilt = tuple(self._mediate_value(item) for item in value)
            return rebuilt if any(
                new is not old for new, old in zip(rebuilt, value)
            ) else value
        return value

    # -- per-object wire format -----------------------------------------------------------

    def _classify(self, value: Any) -> tuple | None:
        if getattr(type(value), "_nv_is_naive_proxy", False):
            return ("local", value._nv_oid)
        if getattr(type(value), "_obi_managed", False):
            raise CodecError("naive runtime fields must hold proxies, not raw refs")
        return None

    def _encode(self, oid: int, obj: Any) -> str:
        schema = type(obj)._obi_schema
        root = ET.Element("naive-object", {"oid": str(oid), "class": schema.name})
        for name, value in instance_fields(obj).items():
            field_el = ET.SubElement(root, "field", {"name": name})
            field_el.append(encode_value(value, self._classify))
        return ET.tostring(root, encoding="unicode")

    def _decode(self, text: str) -> Any:
        root = ET.fromstring(text)
        oid = int(root.get("oid"))
        cls = self._registry.resolve(root.get("class", ""))
        obj = object.__new__(cls)
        _object_setattr(obj, "_nv_oid", oid)

        def resolve(kind: str, ident: Any) -> Any:
            if kind != "local":
                raise CodecError("naive documents only carry proxy references")
            return self._proxies[ident]

        for field_el in root:
            name = field_el.get("name")
            _object_setattr(obj, name, decode_value(field_el[0], resolve))
        return obj

    # -- reporting -------------------------------------------------------------------------

    def memory_report(self) -> Dict[str, int]:
        object_bytes = sum(
            self.heap.size_of(oid) for oid in self._objects if self.heap.holds(oid)
        )
        proxy_bytes = len(self._proxies) * self.size_model.proxy_size()
        return {
            "objects": len(self._proxies),
            "resident": len(self._objects),
            "object_bytes": object_bytes,
            "proxy_bytes": proxy_bytes,
            "total_bytes": self.heap.used,
        }
