"""Baselines from the paper's Section 5 argument and Section 6 related work.

* :mod:`repro.baselines.naive_proxy` — the "naive" design the paper
  argues against: one proxy per object, every reference mediated,
  proxies persisting after swap (≈2× memory at full load);
* :mod:`repro.baselines.compression` — heap compression for memory-
  constrained Java environments (Chen et al., OOPSLA'03) and the
  software-only compressed memory pool (Chihaia & Gross, WMPI'04):
  victims compress into an in-heap pool, costing CPU instead of a radio;
* :mod:`repro.baselines.offload` — GC-assisted memory offloading with
  per-object surrogates and an object table (Messer et al., ICDCS'02 /
  Chen et al., WMCSA'03), which requires a modified VM and a capable
  receiver — the requirements matrix the qualitative evaluation reports.
"""

from repro.baselines.naive_proxy import NaiveRuntime, NaiveProxy
from repro.baselines.compression import CompressedPoolStore, CompressionStats
from repro.baselines.offload import OffloadRuntime, Surrogate, REQUIREMENTS_MATRIX

__all__ = [
    "NaiveRuntime",
    "NaiveProxy",
    "CompressedPoolStore",
    "CompressionStats",
    "OffloadRuntime",
    "Surrogate",
    "REQUIREMENTS_MATRIX",
]
