"""The master object server.

Holds master copies of published object graphs, partitioned into
replication clusters of adaptable size, and serves them cluster-by-
cluster as XML replica documents.  The wire format wraps the shared
cluster codec with a frontier table::

    <replica-cluster root="album" cid="4">
      <frontier>
        <entry index="0" cid="5" oid="123"/>
      </frontier>
      <swap-cluster space="server" sid="4" epoch="0" count="20">…</swap-cluster>
    </replica-cluster>

``<outref index=…/>`` elements inside the cluster body point into the
frontier table: references to objects in clusters the device has not
fetched yet.

Two lifecycle stances, matching the paper: **swapping** involves no
server bookkeeping whatsoever (nearby stores just hold text), while
**replication** uses a reference-listing DGC-lite — devices register the
clusters they replicate and asynchronously unregister when their local
collector reclaims a replica, so the server knows which master clusters
still have live replicas anywhere.  Replica *consistency* (concurrent
updates, reconciliation) remains out of scope as documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol, Tuple
from xml.etree import ElementTree as ET

from repro.comm.webservice import WebServiceClient, WebServiceEndpoint
from repro.core.clustering import partition_sequential, walk_graph
from repro.errors import CodecError, ReplicationError, SyncConflictError, SyncError
from repro.ids import IdAllocator
from repro.replication.cluster import ObjectCluster
from repro.runtime.registry import TypeRegistry, global_registry
from repro.wire.wrappers import decode_value
from repro.wire.xmlcodec import encode_cluster

_object_setattr = object.__setattr__


@dataclass(frozen=True)
class RootDescriptor:
    """What a device needs to start replicating a published graph."""

    root_name: str
    root_cid: int
    root_soid: int
    cluster_count: int
    object_count: int
    class_name: str

    def to_wire(self) -> Dict[str, Any]:
        return {
            "root_name": self.root_name,
            "root_cid": self.root_cid,
            "root_soid": self.root_soid,
            "cluster_count": self.cluster_count,
            "object_count": self.object_count,
            "class_name": self.class_name,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "RootDescriptor":
        return cls(**data)


class _PublishedGraph:
    def __init__(self, root_name: str) -> None:
        self.root_name = root_name
        self.root_soid = 0
        self.root_cid = 0
        self.clusters: Dict[int, ObjectCluster] = {}
        self.cid_by_soid: Dict[int, int] = {}
        self.soid_to_object: Dict[int, Any] = {}
        #: per-cluster master version, bumped on every accepted push
        self.versions: Dict[int, int] = {}
        self.object_count = 0
        self.root_class = ""


class ObjectServer:
    """Publishes object graphs and serves replica clusters."""

    def __init__(
        self, name: str = "server", registry: Optional[TypeRegistry] = None
    ) -> None:
        self.name = name
        self._registry = registry if registry is not None else global_registry()
        self._soids = IdAllocator(start=1)
        self._cids = IdAllocator(start=1)
        self._graphs: Dict[str, _PublishedGraph] = {}
        #: DGC-lite reference listing: which device spaces hold a live
        #: replica of each cluster.  "Memory management depends on object
        #: replication to be aware of which objects have been replicated"
        #: (Section 2); devices unregister when their local collector
        #: reclaims a replica, asynchronously and without blocking.
        self._replica_holders: Dict[Tuple[str, int], set] = {}
        self.clusters_served = 0

    # -- publishing -------------------------------------------------------------

    def publish(self, root_name: str, root: Any, cluster_size: int = 20) -> RootDescriptor:
        """Partition a master graph into clusters and make it fetchable."""
        if root_name in self._graphs:
            raise ReplicationError(f"root {root_name!r} already published")
        graph = _PublishedGraph(root_name)
        order = walk_graph(root)
        for obj in order:
            soid = getattr(obj, "_obi_soid", None)
            if soid is None:
                soid = self._soids.next()
                _object_setattr(obj, "_obi_soid", soid)
        for members in partition_sequential(order, cluster_size):
            cid = self._cids.next()
            cluster = ObjectCluster(cid=cid, members=members)
            graph.clusters[cid] = cluster
            graph.versions[cid] = 1
            for obj in members:
                graph.cid_by_soid[obj._obi_soid] = cid
                graph.soid_to_object[obj._obi_soid] = obj
        graph.root_soid = root._obi_soid
        graph.root_cid = graph.cid_by_soid[graph.root_soid]
        graph.object_count = len(order)
        graph.root_class = type(root)._obi_schema.name
        self._graphs[root_name] = graph
        return self.describe_root(root_name)

    def unpublish(self, root_name: str) -> None:
        self._graphs.pop(root_name, None)

    def published_roots(self) -> List[str]:
        return sorted(self._graphs)

    # -- serving ------------------------------------------------------------------

    def describe_root(self, root_name: str) -> RootDescriptor:
        graph = self._graph(root_name)
        return RootDescriptor(
            root_name=root_name,
            root_cid=graph.root_cid,
            root_soid=graph.root_soid,
            cluster_count=len(graph.clusters),
            object_count=graph.object_count,
            class_name=graph.root_class,
        )

    def fetch_cluster(self, root_name: str, cid: int) -> str:
        """One replica document: frontier table + cluster body."""
        graph = self._graph(root_name)
        cluster = graph.clusters.get(cid)
        if cluster is None:
            raise ReplicationError(f"root {root_name!r} has no cluster {cid}")

        members = {obj._obi_soid: obj for obj in cluster.members}
        frontier: List[Tuple[int, int]] = []  # (cid, soid) per index
        index_by_soid: Dict[int, int] = {}

        def foreign_index_of(obj: Any) -> int:
            soid = obj._obi_soid
            index = index_by_soid.get(soid)
            if index is None:
                index = len(frontier)
                index_by_soid[soid] = index
                frontier.append((graph.cid_by_soid[soid], soid))
            return index

        body = encode_cluster(
            sid=cid,
            space=self.name,
            epoch=0,
            objects=members,
            oid_of=lambda obj: obj._obi_soid,
            outbound_index_of=lambda proxy: (_ for _ in ()).throw(
                ReplicationError("master graphs must not contain proxies")
            ),
            foreign_index_of=foreign_index_of,
        )

        root = ET.Element(
            "replica-cluster",
            {
                "root": root_name,
                "cid": str(cid),
                "version": str(graph.versions.get(cid, 1)),
            },
        )
        frontier_el = ET.SubElement(root, "frontier")
        for index, (frontier_cid, soid) in enumerate(frontier):
            ET.SubElement(
                frontier_el,
                "entry",
                {"index": str(index), "cid": str(frontier_cid), "oid": str(soid)},
            )
        root.append(ET.fromstring(body))
        self.clusters_served += 1
        return ET.tostring(root, encoding="unicode")

    def cluster_ids(self, root_name: str) -> List[int]:
        return sorted(self._graph(root_name).clusters)

    # -- reintegration (push) ----------------------------------------------------

    def cluster_version(self, root_name: str, cid: int) -> int:
        graph = self._graph(root_name)
        if cid not in graph.clusters:
            raise ReplicationError(f"root {root_name!r} has no cluster {cid}")
        return graph.versions[cid]

    def apply_push(self, xml_text: str) -> "PushResult":
        """Reintegrate a device's changes to one cluster (values + edges
        among already-published objects; structural growth is rejected).

        Optimistic concurrency: the push carries the version the replica
        was based on; if the master has moved past it, the push is
        refused with the current version so the device can pull and
        retry (loosely-coupled reintegration).
        """
        try:
            root = ET.fromstring(xml_text)
        except ET.ParseError as exc:
            raise SyncError(f"malformed push document: {exc}") from exc
        if root.tag != "push-cluster":
            raise SyncError(f"expected <push-cluster>, got <{root.tag}>")
        root_name = root.get("root", "")
        cid = int(root.get("cid", "-1"))
        base_version = int(root.get("base_version", "-1"))
        device = root.get("device", "?")
        graph = self._graph(root_name)
        if cid not in graph.clusters:
            raise SyncError(f"root {root_name!r} has no cluster {cid}")
        current = graph.versions[cid]
        if base_version != current:
            return PushResult(
                accepted=False,
                version=current,
                message=(
                    f"conflict: master at version {current}, "
                    f"push based on {base_version}"
                ),
            )

        member_soids = {obj._obi_soid for obj in graph.clusters[cid].members}

        def resolve(kind: str, ident: Any) -> Any:
            if kind == "local":
                soid = int(ident)
            elif kind == "ext":
                soid = int(ident["soid"])
            else:
                raise SyncError("push documents must not contain <outref>")
            target = graph.soid_to_object.get(soid)
            if target is None:
                raise SyncError(f"push references unknown soid {soid}")
            return target

        # validate fully before mutating anything
        updates = []
        for obj_el in root:
            if obj_el.tag != "object":
                raise SyncError(f"unexpected <{obj_el.tag}> in push document")
            soid = int(obj_el.get("soid", "-1"))
            if soid not in member_soids:
                raise SyncError(
                    f"soid {soid} is not a member of cluster {cid} "
                    f"(structural growth is not supported by push)"
                )
            master = graph.soid_to_object[soid]
            expected_class = type(master)._obi_schema.name
            if obj_el.get("class") != expected_class:
                raise SyncError(
                    f"soid {soid}: class mismatch "
                    f"({obj_el.get('class')} vs {expected_class})"
                )
            fields = {}
            for field_el in obj_el:
                if field_el.tag != "field" or len(field_el) != 1:
                    raise SyncError(f"soid {soid}: malformed <field>")
                fields[field_el.get("name")] = decode_value(field_el[0], resolve)
            updates.append((master, fields))

        for master, fields in updates:
            for name in list(vars(master)):
                if not name.startswith("_obi_"):
                    object.__delattr__(master, name)
            for name, value in fields.items():
                _object_setattr(master, name, value)
        graph.versions[cid] = current + 1
        return PushResult(
            accepted=True,
            version=graph.versions[cid],
            message=f"accepted from {device}",
        )

    # -- DGC-lite: replica reference listing -----------------------------------

    def register_replica(self, root_name: str, cid: int, device: str) -> None:
        """A device materialized a replica of (root, cid)."""
        self._graph(root_name)  # validates the root
        self._replica_holders.setdefault((root_name, cid), set()).add(device)

    def unregister_replica(self, root_name: str, cid: int, device: str) -> None:
        """A device's local collector reclaimed its replica (idempotent)."""
        holders = self._replica_holders.get((root_name, cid))
        if holders is not None:
            holders.discard(device)
            if not holders:
                del self._replica_holders[(root_name, cid)]

    def replica_holders(self, root_name: str, cid: int) -> List[str]:
        return sorted(self._replica_holders.get((root_name, cid), ()))

    def replica_count(self, root_name: str) -> int:
        """Total live replica registrations across a root's clusters."""
        return sum(
            len(holders)
            for (held_root, _), holders in self._replica_holders.items()
            if held_root == root_name
        )

    def unreplicated_clusters(self, root_name: str) -> List[int]:
        """Clusters with no live replica anywhere (safe to archive)."""
        return [
            cid
            for cid in self.cluster_ids(root_name)
            if not self._replica_holders.get((root_name, cid))
        ]

    def _graph(self, root_name: str) -> _PublishedGraph:
        graph = self._graphs.get(root_name)
        if graph is None:
            raise ReplicationError(f"no published root {root_name!r}")
        return graph

    # -- web-service exposure ----------------------------------------------------------

    def as_endpoint(self) -> WebServiceEndpoint:
        endpoint = WebServiceEndpoint(self.name)
        endpoint.register(
            "describe_root",
            lambda root_name: self.describe_root(root_name).to_wire(),
        )
        endpoint.register(
            "fetch_cluster",
            lambda root_name, cid: self.fetch_cluster(root_name, cid),
        )
        endpoint.register("published_roots", self.published_roots)
        endpoint.register(
            "register_replica",
            lambda root_name, cid, device: self.register_replica(
                root_name, cid, device
            ),
        )
        endpoint.register(
            "unregister_replica",
            lambda root_name, cid, device: self.unregister_replica(
                root_name, cid, device
            ),
        )
        endpoint.register(
            "apply_push", lambda xml_text: self.apply_push(xml_text).to_wire()
        )
        endpoint.register(
            "cluster_version",
            lambda root_name, cid: self.cluster_version(root_name, cid),
        )
        return endpoint


@dataclass(frozen=True)
class PushResult:
    """Outcome of a reintegration push."""

    accepted: bool
    version: int
    message: str = ""

    def to_wire(self) -> Dict[str, Any]:
        return {
            "accepted": self.accepted,
            "version": self.version,
            "message": self.message,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "PushResult":
        return cls(**data)


class ServerClient(Protocol):
    """What a replicator needs from the server side."""

    def describe_root(self, root_name: str) -> RootDescriptor: ...

    def fetch_cluster(self, root_name: str, cid: int) -> str: ...

    def register_replica(self, root_name: str, cid: int, device: str) -> None: ...

    def unregister_replica(self, root_name: str, cid: int, device: str) -> None: ...


class DirectServerClient:
    """Same-process client (tests, single-machine scenarios)."""

    def __init__(self, server: ObjectServer) -> None:
        self._server = server

    def describe_root(self, root_name: str) -> RootDescriptor:
        return self._server.describe_root(root_name)

    def fetch_cluster(self, root_name: str, cid: int) -> str:
        return self._server.fetch_cluster(root_name, cid)

    def register_replica(self, root_name: str, cid: int, device: str) -> None:
        self._server.register_replica(root_name, cid, device)

    def unregister_replica(self, root_name: str, cid: int, device: str) -> None:
        self._server.unregister_replica(root_name, cid, device)

    def apply_push(self, xml_text: str) -> PushResult:
        return self._server.apply_push(xml_text)

    def cluster_version(self, root_name: str, cid: int) -> int:
        return self._server.cluster_version(root_name, cid)


class WsServerClient:
    """Server access over the web-service bridge (charges the link)."""

    def __init__(self, client: WebServiceClient) -> None:
        self._client = client

    def describe_root(self, root_name: str) -> RootDescriptor:
        data = self._client.call("describe_root", root_name=root_name)
        return RootDescriptor.from_wire(data)

    def fetch_cluster(self, root_name: str, cid: int) -> str:
        return self._client.call("fetch_cluster", root_name=root_name, cid=cid)

    def register_replica(self, root_name: str, cid: int, device: str) -> None:
        self._client.call(
            "register_replica", root_name=root_name, cid=cid, device=device
        )

    def unregister_replica(self, root_name: str, cid: int, device: str) -> None:
        self._client.call(
            "unregister_replica", root_name=root_name, cid=cid, device=device
        )

    def apply_push(self, xml_text: str) -> PushResult:
        return PushResult.from_wire(
            self._client.call("apply_push", xml_text=xml_text)
        )

    def cluster_version(self, root_name: str, cid: int) -> int:
        return self._client.call(
            "cluster_version", root_name=root_name, cid=cid
        )


def parse_replica_document(
    text: str,
) -> Tuple[int, List[Tuple[int, int]], str, int]:
    """Split a replica document into (cid, frontier, body_xml, version)."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise CodecError(f"malformed replica document: {exc}") from exc
    if root.tag != "replica-cluster":
        raise CodecError(f"expected <replica-cluster>, got <{root.tag}>")
    cid = int(root.get("cid", "-1"))
    version = int(root.get("version", "1"))
    frontier_el = root.find("frontier")
    body_el = root.find("swap-cluster")
    if frontier_el is None or body_el is None:
        raise CodecError("replica document missing <frontier> or <swap-cluster>")
    frontier: List[Tuple[int, int]] = []
    for entry in frontier_el:
        frontier.append((int(entry.get("cid")), int(entry.get("oid"))))
    return cid, frontier, ET.tostring(body_el, encoding="unicode"), version
