"""Incremental object replication (the OBIWAN substrate under swapping).

"In OBIWAN, objects are incrementally replicated to devices in groups
(clusters) of adaptable size.  Objects not yet replicated are replaced,
on the device, by proxies transparent to application code.  When these
proxies are invoked, object replication is triggered and, after
replicating another cluster of objects, the proxies are removed from the
object graph" (Section 1).

Pieces:

* :mod:`repro.replication.server` — the master object server: publishes
  graphs partitioned into clusters, serves them as XML replica documents
  (directly or as a web-service endpoint);
* :mod:`repro.replication.proxies` — replication proxies: the
  object-fault handlers that stand in for not-yet-replicated objects;
* :mod:`repro.replication.replicator` — the device-side engine that
  materializes clusters on demand, folds consecutive clusters into
  swap-clusters, and performs proxy replacement (raw references within a
  swap-cluster, swap-cluster-proxies across).
* :mod:`repro.replication.cluster` — cluster partitioning (re-exported
  from the core clustering module).
"""

from repro.replication.cluster import (
    ObjectCluster,
    partition_bfs,
    partition_sequential,
    walk_graph,
)
from repro.replication.server import ObjectServer, DirectServerClient, RootDescriptor
from repro.replication.proxies import ReplicationProxy
from repro.replication.replicator import Replicator
from repro.replication.sync import ReplicaSync, SyncStatus
from repro.replication.server import PushResult, WsServerClient

__all__ = [
    "ObjectCluster",
    "partition_bfs",
    "partition_sequential",
    "walk_graph",
    "ObjectServer",
    "DirectServerClient",
    "RootDescriptor",
    "ReplicationProxy",
    "Replicator",
    "ReplicaSync",
    "SyncStatus",
    "PushResult",
    "WsServerClient",
]
