"""Loosely-coupled replica synchronization (push / pull reintegration).

OBIWAN's broader platform supports "loosely-coupled, mobile replication
of objects with transactions" (the paper's reference [13]); this module
implements the reintegration half at cluster granularity, in the spirit
of mobile middleware: the device works disconnected on its replicas,
then

* ``push(cid)`` sends a cluster's current state back to the master with
  the version it was based on — the server accepts and bumps the
  version, or refuses with the current version (optimistic concurrency,
  no locks, no blocking);
* ``pull(cid)`` refreshes the local replica *in place* from the master —
  the replicas keep their oids, so every live proxy and root handle
  stays valid.

Scope (documented, enforced): pushes carry field values and edges among
*already-published* objects; structural growth (device-created objects)
is rejected by the server — DESIGN.md keeps full consistency machinery
out of scope.  Dirty tracking is state-based: a cluster is dirty when
its canonical push encoding differs from the baseline captured at
fetch/last-sync (no write interception, so it is insensitive to how the
writes were made — raw, via proxies, or via methods).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional
from xml.etree import ElementTree as ET

from repro.errors import SyncConflictError, SyncError
from repro.events import ClusterReplicatedEvent
from repro.replication.server import PushResult, parse_replica_document
from repro.runtime.classext import instance_fields
from repro.wire.canonical import element_digest
from repro.wire.wrappers import encode_value

_object_setattr = object.__setattr__


@dataclass(frozen=True)
class SyncStatus:
    cid: int
    dirty: bool
    local_version: int
    server_version: int

    @property
    def behind(self) -> bool:
        return self.server_version > self.local_version


class ReplicaSync:
    """Push/pull reintegration for one replicator's clusters."""

    def __init__(self, replicator: Any) -> None:
        self._repl = replicator
        self._space = replicator._space
        self._client = replicator._client
        self._baseline: Dict[int, str] = {}
        # baseline everything already materialized, then every new arrival
        for cid in list(replicator._soids_by_cid):
            self._baseline[cid] = self._digest(cid)
        self._space.bus.subscribe(ClusterReplicatedEvent, self._on_replicated)

    # -- dirty tracking ---------------------------------------------------------

    def dirty(self, cid: int) -> bool:
        baseline = self._baseline.get(cid)
        if baseline is None:
            return False
        return self._digest(cid) != baseline

    def dirty_clusters(self) -> List[int]:
        return sorted(cid for cid in self._baseline if self.dirty(cid))

    def status(self, cid: int) -> SyncStatus:
        root_name = self._repl._root_by_cid.get(cid)
        if root_name is None:
            raise SyncError(f"cluster {cid} is not replicated here")
        return SyncStatus(
            cid=cid,
            dirty=self.dirty(cid),
            local_version=self._repl._version_by_cid.get(cid, 0),
            server_version=self._client.cluster_version(root_name, cid),
        )

    # -- push -----------------------------------------------------------------------

    def push(self, cid: int) -> PushResult:
        """Reintegrate one cluster's changes into the master.

        Raises :class:`SyncConflictError` when the master moved past the
        replica's base version — pull first, then push again.
        """
        root_name = self._require_replicated(cid)
        document = self._build_push_document(root_name, cid)
        result = self._client.apply_push(document)
        if not result.accepted:
            raise SyncConflictError(
                f"cluster {cid}: {result.message}; pull before pushing"
            )
        self._repl._version_by_cid[cid] = result.version
        self._baseline[cid] = self._digest(cid)
        return result

    def push_all(self) -> Dict[int, PushResult]:
        return {cid: self.push(cid) for cid in self.dirty_clusters()}

    # -- pull ------------------------------------------------------------------------

    def pull(self, cid: int, overwrite: bool = False) -> int:
        """Refresh the local replica of ``cid`` from the master, in place.

        Refuses to clobber local unpushed changes unless ``overwrite``;
        returns the master version pulled.
        """
        root_name = self._require_replicated(cid)
        if self.dirty(cid) and not overwrite:
            raise SyncConflictError(
                f"cluster {cid} has local changes; push them or pull with "
                f"overwrite=True"
            )
        space = self._space
        sid = self._ensure_resident(cid)
        text = self._client.fetch_cluster(root_name, cid)
        parsed_cid, frontier, body, version = parse_replica_document(text)
        if parsed_cid != cid:
            raise SyncError(f"asked for cluster {cid}, server sent {parsed_cid}")

        def resolve(kind: str, ident: Any) -> Any:
            if kind == "local":
                local_oid = self._repl._oid_by_soid.get(int(ident))
                if local_oid is None:
                    raise SyncError(
                        f"pull of cluster {cid}: master gained object "
                        f"soid={ident}; re-replication required"
                    )
                return space._objects[local_oid]
            if kind == "out":
                frontier_cid, frontier_soid = frontier[int(ident)]
                return self._repl._resolve_extern(
                    {"cid": frontier_cid, "soid": frontier_soid}, sid
                )
            return self._repl._resolve_extern(ident, sid)

        body_root = ET.fromstring(body)
        updates = []
        for obj_el in body_root:
            soid = int(obj_el.get("oid"))
            local_oid = self._repl._oid_by_soid.get(soid)
            if local_oid is None:
                raise SyncError(
                    f"pull of cluster {cid}: master gained object soid={soid}; "
                    f"re-replication required"
                )
            replica = space._objects[local_oid]
            fields = {}
            for field_el in obj_el:
                from repro.wire.wrappers import decode_value

                fields[field_el.get("name")] = decode_value(field_el[0], resolve)
            updates.append((replica, fields))

        for replica, fields in updates:
            for name in list(vars(replica)):
                if not name.startswith("_obi_"):
                    object.__delattr__(replica, name)
            for name, value in fields.items():
                _object_setattr(replica, name, value)
            space.heap.resize(
                replica._obi_oid, space.size_model.size_of(replica)
            )
            self._repl._register_sites(replica)

        self._repl._version_by_cid[cid] = version
        self._baseline[cid] = self._digest(cid)
        space.verify_integrity()
        return version

    # -- internals ----------------------------------------------------------------------

    def _require_replicated(self, cid: int) -> str:
        root_name = self._repl._root_by_cid.get(cid)
        if root_name is None or cid not in self._repl._soids_by_cid:
            raise SyncError(f"cluster {cid} is not materialized on this device")
        return root_name

    def _ensure_resident(self, cid: int) -> int:
        sid = self._repl._materialized.get(cid)
        if sid is None:
            raise SyncError(f"cluster {cid} is not materialized on this device")
        cluster = self._space._clusters.get(sid)
        if cluster is None:
            raise SyncError(f"cluster {cid}'s swap-cluster was collected")
        if cluster.is_swapped:
            self._space.manager.swap_in(sid)
        return sid

    def _object_elements(self, cid: int) -> List[ET.Element]:
        space = self._space
        self._ensure_resident(cid)
        member_soids = set(self._repl._soids_by_cid.get(cid, ()))

        def classify(value: Any) -> Any:
            cls = type(value)
            if getattr(cls, "_obi_is_proxy", False):
                return self._extern_of(value._obi_target_oid, member_soids)
            if getattr(cls, "_obi_is_repl_proxy", False):
                return ("ext", {"cid": value._obi_cid, "soid": value._obi_soid})
            if getattr(cls, "_obi_managed", False):
                return self._extern_of(value._obi_oid, member_soids)
            return None

        elements = []
        for soid in sorted(member_soids):
            local_oid = self._repl._oid_by_soid[soid]
            replica = space._objects[local_oid]
            obj_el = ET.Element(
                "object",
                {"soid": str(soid), "class": type(replica)._obi_schema.name},
            )
            for name, value in instance_fields(replica).items():
                field_el = ET.SubElement(obj_el, "field", {"name": name})
                field_el.append(encode_value(value, classify))
            elements.append(obj_el)
        return elements

    def _extern_of(self, local_oid: int, member_soids: set) -> Any:
        soid = self._repl._soid_by_oid.get(local_oid)
        if soid is None:
            raise SyncError(
                f"cluster contains a device-created object (oid={local_oid}); "
                f"structural growth cannot be pushed"
            )
        if soid in member_soids:
            return ("local", soid)
        cid = self._repl._cid_by_soid.get(soid)
        if cid is None:
            raise SyncError(f"soid {soid} has no known master cluster")
        return ("ext", {"cid": cid, "soid": soid})

    def _digest(self, cid: int) -> str:
        body = ET.Element("push-body", {"cid": str(cid)})
        for element in self._object_elements(cid):
            body.append(element)
        # hash the tree directly: no serialize -> parse -> re-serialize pass
        return element_digest(body)

    def _build_push_document(self, root_name: str, cid: int) -> str:
        document = ET.Element(
            "push-cluster",
            {
                "root": root_name,
                "cid": str(cid),
                "base_version": str(self._repl._version_by_cid.get(cid, 0)),
                "device": self._space.name,
            },
        )
        for element in self._object_elements(cid):
            document.append(element)
        return ET.tostring(document, encoding="unicode")

    def _on_replicated(self, event: Any) -> None:
        if event.space != self._space.name:
            return
        if event.cid in self._repl._soids_by_cid and event.cid not in self._baseline:
            self._baseline[event.cid] = self._digest(event.cid)
