"""The device-side incremental replication engine.

Fetches clusters on demand (object faults), adopts the replicas into the
device space, folds every ``clusters_per_swap`` consecutively fetched
clusters into one swap-cluster ("considering a number, also adaptable,
of chained object clusters as a single macro-object", Section 1), and
performs **proxy replacement**:

* references between objects that landed in the *same* swap-cluster end
  up raw — "there are no further indirections w.r.t. object invocation
  (the application runs at full-speed), once objects are replicated";
* references across swap-clusters get a swap-cluster-proxy — "for
  objects belonging to different swap-clusters, a special proxy always
  remains in the way";
* replication proxies standing in fields are rewritten to those final
  references as soon as their target cluster materializes.

The replicator also installs the space's extern resolver so replication
proxies serialized inside a swapped cluster (``<extref>``) reconnect on
reload, and listens to swap-in events to re-register holder sites.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReplicationError
from repro.events import (
    ClusterCollectedEvent,
    ClusterReplicatedEvent,
    ObjectFaultEvent,
    SwapInEvent,
)
from repro.ids import ROOT_SID
from repro.replication.proxies import ReplicationProxy
from repro.replication.server import ServerClient, parse_replica_document
from repro.runtime.classext import instance_fields
from repro.wire.xmlcodec import decode_cluster

_object_setattr = object.__setattr__


class Replicator:
    """Incremental replication into one space from one server client."""

    def __init__(
        self,
        space: Any,
        client: ServerClient,
        clusters_per_swap: int = 1,
        prefetch_frontier: int = 0,
    ) -> None:
        if clusters_per_swap <= 0:
            raise ValueError("clusters_per_swap must be positive")
        if prefetch_frontier < 0:
            raise ValueError("prefetch_frontier must be non-negative")
        self._space = space
        self._client = client
        self._clusters_per_swap = clusters_per_swap
        #: After each fault, eagerly materialize up to this many further
        #: clusters reachable from the faulted cluster's frontier
        #: (hoarding: "when one of the objects enclosed in the cluster
        #: becomes needed again, there is a high probability that the
        #: others will be as well" extends one hop outward).
        self.prefetch_frontier = prefetch_frontier
        self._oid_by_soid: Dict[int, int] = {}
        self._soid_by_oid: Dict[int, int] = {}
        #: cid -> soids fetched in it, and the master version they came from
        self._soids_by_cid: Dict[int, List[int]] = {}
        self._version_by_cid: Dict[int, int] = {}
        #: soid -> owning server cluster (members + observed frontier).
        self._cid_by_soid: Dict[int, int] = {}
        self._proxies: Dict[int, ReplicationProxy] = {}
        self._materialized: Dict[int, int] = {}  # cid -> sid
        #: cid -> the cids its frontier references (filled on fetch).
        self._frontier_of: Dict[int, List[int]] = {}
        self._root_by_cid: Dict[int, str] = {}
        self._current_sc: Any = None
        self._current_count = 0
        self.faults = 0
        self.clusters_fetched = 0
        self.prefetched = 0
        #: sid -> cids folded into it (for DGC-lite unregistration).
        self._cids_by_sid: Dict[int, List[int]] = {}
        #: cid -> root name (registration bookkeeping).
        self._registered_root: Dict[int, str] = {}
        space.extern_resolver = self._resolve_extern
        space.bus.subscribe(SwapInEvent, self._on_swap_in)
        space.bus.subscribe(ClusterCollectedEvent, self._on_cluster_collected)

    # -- public API ---------------------------------------------------------------

    def replicate(self, root_name: str) -> Any:
        """Replicate a published root's first cluster; returns the handle.

        Further clusters arrive on demand when the application navigates
        past the replicated frontier.
        """
        descriptor = self._client.describe_root(root_name)
        self._root_by_cid[descriptor.root_cid] = root_name
        if descriptor.root_soid not in self._oid_by_soid:
            self._materialize(root_name, descriptor.root_cid)
        root_oid = self._oid_by_soid[descriptor.root_soid]
        handle = self._space._proxy_for(ROOT_SID, root_oid)
        self._space._roots[root_name] = handle
        return handle

    def prefetch(self, root_name: str, cids: List[int]) -> None:
        """Eagerly materialize specific clusters (hoarding)."""
        for cid in cids:
            self._root_by_cid.setdefault(cid, root_name)
            self._materialize(root_name, cid)

    def materialized_clusters(self) -> Dict[int, int]:
        return dict(self._materialized)

    def pending_proxy_count(self) -> int:
        return len(self._proxies)

    def oid_of_soid(self, soid: int) -> Optional[int]:
        return self._oid_by_soid.get(soid)

    # -- fault handling --------------------------------------------------------------

    def fault(self, proxy: ReplicationProxy) -> Any:
        """A replication proxy was invoked: fetch its cluster, replace it."""
        soid = proxy._obi_soid
        cid = proxy._obi_cid
        if soid not in self._oid_by_soid:
            root_name = self._root_by_cid.get(cid)
            if root_name is None:
                raise ReplicationError(
                    f"replication proxy for cid={cid} has no known root"
                )
            self.faults += 1
            self._space.bus.emit(
                ObjectFaultEvent(space=self._space.name, cid=cid)
            )
            self._materialize(root_name, cid)
            if self.prefetch_frontier > 0:
                self._prefetch_from(root_name, cid, self.prefetch_frontier)
        target_oid = self._oid_by_soid[soid]
        self._replace_sites(proxy)
        self._proxies.pop(soid, None)

        sites: List[Any] = proxy._obi_sites
        holder_sid = ROOT_SID
        for holder in sites:
            if getattr(holder, "_obi_space", None) is self._space:
                holder_sid = holder._obi_sid
                break
        target_sid = self._space._sid_by_oid[target_oid]
        if target_sid == holder_sid:
            resident = self._space._objects.get(target_oid)
            if resident is not None:
                return resident
        return self._space._proxy_for(holder_sid, target_oid)

    def _prefetch_from(self, root_name: str, cid: int, budget: int) -> int:
        """Materialize up to ``budget`` clusters reachable from ``cid``'s
        frontier, breadth-first.  Returns how many were fetched."""
        fetched = 0
        queue = list(self._frontier_of.get(cid, ()))
        seen = set(queue)
        while queue and fetched < budget:
            next_cid = queue.pop(0)
            if next_cid in self._materialized:
                continue
            self._materialize(root_name, next_cid)
            fetched += 1
            self.prefetched += 1
            for further in self._frontier_of.get(next_cid, ()):
                if further not in seen:
                    seen.add(further)
                    queue.append(further)
        return fetched

    # -- materialization ---------------------------------------------------------------

    def _materialize(self, root_name: str, cid: int) -> int:
        existing = self._materialized.get(cid)
        if existing is not None:
            return existing
        space = self._space
        text = self._client.fetch_cluster(root_name, cid)
        parsed_cid, frontier, body, version = parse_replica_document(text)
        if parsed_cid != cid:
            raise ReplicationError(
                f"asked for cluster {cid}, server returned {parsed_cid}"
            )
        self._frontier_of[cid] = sorted({frontier_cid for frontier_cid, _ in frontier})

        swap_cluster = self._current_sc
        if (
            swap_cluster is None
            or not swap_cluster.is_resident
            or swap_cluster.sid not in space._clusters
            or self._current_count >= self._clusters_per_swap
        ):
            swap_cluster = space.new_swap_cluster()
            self._current_sc = swap_cluster
            self._current_count = 0
        sid = swap_cluster.sid

        def resolve_out(index: int) -> Any:
            frontier_cid, frontier_soid = frontier[index]
            self._root_by_cid.setdefault(frontier_cid, root_name)
            self._cid_by_soid.setdefault(frontier_soid, frontier_cid)
            known_oid = self._oid_by_soid.get(frontier_soid)
            if known_oid is not None:
                target_sid = space._sid_by_oid.get(known_oid)
                if target_sid == sid and known_oid in space._objects:
                    return space._objects[known_oid]
                if target_sid is not None:
                    return space._proxy_for(sid, known_oid)
            return self._proxy_of(frontier_cid, frontier_soid)

        swap_cluster.pins += 1
        try:
            document = decode_cluster(
                body,
                registry=space._registry,
                resolve_out=resolve_out,
                resolve_extern=lambda attrs: self._resolve_extern(attrs, sid),
            )
            for soid in sorted(document.objects):
                replica = document.objects[soid]
                space.adopt(replica, sid)
                self._oid_by_soid[soid] = replica._obi_oid
                self._soid_by_oid[replica._obi_oid] = soid
            for replica in document.objects.values():
                self._register_sites(replica)
        finally:
            swap_cluster.pins -= 1

        swap_cluster.cids.append(cid)
        self._current_count += 1
        self._materialized[cid] = sid
        self._soids_by_cid[cid] = sorted(document.objects)
        self._version_by_cid[cid] = version
        for soid in document.objects:
            self._cid_by_soid[soid] = cid
        self._cids_by_sid.setdefault(sid, []).append(cid)
        self.clusters_fetched += 1
        # DGC-lite: tell the server this device now holds a live replica
        register = getattr(self._client, "register_replica", None)
        if register is not None:
            register(root_name, cid, space.name)
            self._registered_root[cid] = root_name

        # proxy replacement: every pending proxy whose target just arrived
        for soid in [s for s in self._proxies if s in self._oid_by_soid]:
            self._replace_sites(self._proxies.pop(soid))

        space.bus.emit(
            ClusterReplicatedEvent(
                space=space.name,
                cid=cid,
                sid=sid,
                object_count=len(document.objects),
            )
        )
        return sid

    # -- proxy replacement -----------------------------------------------------------------

    def _replace_sites(self, proxy: ReplicationProxy) -> None:
        space = self._space
        target_oid = self._oid_by_soid.get(proxy._obi_soid)
        if target_oid is None:
            return
        for holder in list(proxy._obi_sites):
            if getattr(holder, "_obi_space", None) is not space:
                continue
            holder_oid = getattr(holder, "_obi_oid", None)
            if holder_oid not in space._objects:
                # holder's cluster is swapped out; its XML carries an
                # <extref> that the extern resolver reconnects on reload
                continue
            holder_sid = holder._obi_sid
            target_sid = space._sid_by_oid[target_oid]
            if target_sid == holder_sid and target_oid in space._objects:
                final: Any = space._objects[target_oid]
            else:
                final = space._proxy_for(holder_sid, target_oid)
            self._replace_in_holder(holder, proxy, final)
        proxy._obi_sites.clear()

    def _replace_in_holder(
        self, holder: Any, proxy: ReplicationProxy, final: Any
    ) -> None:
        for name, value in instance_fields(holder).items():
            new_value = self._replace_value(value, proxy, final)
            if new_value is not value:
                _object_setattr(holder, name, new_value)

    def _replace_value(self, value: Any, proxy: ReplicationProxy, final: Any) -> Any:
        if value is proxy:
            return final
        cls = type(value)
        if cls is list:
            for index, item in enumerate(value):
                new_item = self._replace_value(item, proxy, final)
                if new_item is not item:
                    value[index] = new_item
            return value
        if cls is tuple:
            rebuilt = tuple(
                self._replace_value(item, proxy, final) for item in value
            )
            return rebuilt if any(
                new is not old for new, old in zip(rebuilt, value)
            ) else value
        if cls is dict:
            changed = False
            rebuilt_dict = {}
            for key, item in value.items():
                new_key = self._replace_value(key, proxy, final)
                new_item = self._replace_value(item, proxy, final)
                changed = changed or new_key is not key or new_item is not item
                rebuilt_dict[new_key] = new_item
            if changed:
                value.clear()
                value.update(rebuilt_dict)
            return value
        if cls in (set, frozenset):
            if any(item is proxy for item in value):
                rebuilt_set = {
                    final if item is proxy else item for item in value
                }
                if cls is set:
                    value.clear()
                    value.update(rebuilt_set)
                    return value
                return frozenset(rebuilt_set)
            return value
        return value

    # -- site registration ----------------------------------------------------------------------

    def _register_sites(self, holder: Any) -> None:
        for value in instance_fields(holder).values():
            self._register_sites_in_value(value, holder)

    def _register_sites_in_value(self, value: Any, holder: Any) -> None:
        if getattr(type(value), "_obi_is_repl_proxy", False):
            value._obi_register_site(holder)
            return
        cls = type(value)
        if cls in (list, tuple, set, frozenset):
            for item in value:
                self._register_sites_in_value(item, holder)
        elif cls is dict:
            for key, item in value.items():
                self._register_sites_in_value(key, holder)
                self._register_sites_in_value(item, holder)

    # -- wire/GC integration ------------------------------------------------------------------------

    def _resolve_extern(self, attrs: Dict[str, str], sid: int) -> Any:
        cid = int(attrs["cid"])
        soid = int(attrs["soid"])
        known_oid = self._oid_by_soid.get(soid)
        if known_oid is not None:
            target_sid = self._space._sid_by_oid.get(known_oid)
            if target_sid is not None:
                if target_sid == sid and known_oid in self._space._objects:
                    return self._space._objects[known_oid]
                return self._space._proxy_for(sid, known_oid)
        return self._proxy_of(cid, soid)

    def _on_cluster_collected(self, event: Any) -> None:
        """The local collector reclaimed a swap-cluster: release the
        server-side replica registrations of the cids it contained."""
        if event.space != self._space.name:
            return
        unregister = getattr(self._client, "unregister_replica", None)
        self._cids_by_sid.pop(event.sid, None)
        for cid in event.cids:
            self._materialized.pop(cid, None)
            root_name = self._registered_root.pop(cid, None)
            if root_name is not None and unregister is not None:
                unregister(root_name, cid, self._space.name)

    def _on_swap_in(self, event: Any) -> None:
        if event.space != self._space.name:
            return
        cluster = self._space._clusters.get(event.sid)
        if cluster is None:
            return
        for oid in cluster.oids:
            holder = self._space._objects.get(oid)
            if holder is not None:
                self._register_sites(holder)

    def _proxy_of(self, cid: int, soid: int) -> ReplicationProxy:
        proxy = self._proxies.get(soid)
        if proxy is None:
            proxy = ReplicationProxy(self, cid, soid)
            self._proxies[soid] = proxy
            self._cid_by_soid.setdefault(soid, cid)
        return proxy

    def cid_of_soid(self, soid: int) -> Optional[int]:
        return self._cid_by_soid.get(soid)

    def soid_of_oid(self, oid: int) -> Optional[int]:
        return self._soid_by_oid.get(oid)

    def cluster_soids(self, cid: int) -> List[int]:
        return list(self._soids_by_cid.get(cid, ()))

    def cluster_version(self, cid: int) -> Optional[int]:
        return self._version_by_cid.get(cid)
