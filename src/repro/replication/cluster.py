"""Object clusters and partitioning (replication view).

The partitioning algorithms live in :mod:`repro.core.clustering` (they
are shared with :meth:`Space.ingest`); this module re-exports them and
adds the :class:`ObjectCluster` record the server keeps per published
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

from repro.core.clustering import (
    group_clusters,
    managed_neighbors,
    partition_bfs,
    partition_sequential,
    resolve_strategy,
    walk_graph,
)

__all__ = [
    "ObjectCluster",
    "group_clusters",
    "managed_neighbors",
    "partition_bfs",
    "partition_sequential",
    "resolve_strategy",
    "walk_graph",
]


@dataclass
class ObjectCluster:
    """One replication cluster on the server: an ordered member list."""

    cid: int
    members: List[Any] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.members)

    def member_oids(self, oid_of) -> List[int]:
        return [oid_of(obj) for obj in self.members]
