"""Replication proxies: object-fault handlers.

"Objects not yet replicated are replaced, on the device, by proxies
transparent to application code.  When these proxies are invoked, object
replication is triggered and, after replicating another cluster of
objects, the proxies are removed from the object graph (i.e., replaced
by the actual object replicas)" (Section 1).

Unlike swap-cluster-proxies, a replication proxy is **transient**: once
its target cluster materializes, every field that held it is rewritten
to the final reference — the raw replica when target and holder ended up
in the same swap-cluster, a swap-cluster-proxy otherwise — and the proxy
dies.  If a handle leaks into application variables it keeps working
(every access faults through to the final reference), it just stays
mediated.

A replication proxy can also survive a swap cycle: the cluster codec
serializes it as ``<extref cid=… soid=…/>`` via
:meth:`_obi_extern_attrs`, and the replicator's extern resolver rebuilds
the right handle on reload.
"""

from __future__ import annotations

from typing import Any, Dict, List


class ReplicationProxy:
    """Stand-in for an object whose cluster has not been fetched yet."""

    __slots__ = ("_obi_repl", "_obi_cid", "_obi_soid", "_obi_sites", "__weakref__")

    #: Marker for structural type tests.
    _obi_is_repl_proxy = True

    def __init__(self, replicator: Any, cid: int, soid: int) -> None:
        object.__setattr__(self, "_obi_repl", replicator)
        object.__setattr__(self, "_obi_cid", cid)
        object.__setattr__(self, "_obi_soid", soid)
        object.__setattr__(self, "_obi_sites", [])

    # -- site tracking (holders whose fields must be rewritten) ---------------

    def _obi_register_site(self, holder: Any) -> None:
        sites: List[Any] = self._obi_sites
        if not any(existing is holder for existing in sites):
            sites.append(holder)

    # -- wire support -----------------------------------------------------------

    def _obi_extern_attrs(self) -> Dict[str, int]:
        return {"cid": self._obi_cid, "soid": self._obi_soid}

    # -- fault handling ------------------------------------------------------------

    def _obi_fault(self) -> Any:
        """Materialize the target cluster; returns the final handle."""
        return self._obi_repl.fault(self)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        if name.startswith("_obi_"):
            raise AttributeError(name)
        return getattr(self._obi_fault(), name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name.startswith("_obi_"):
            object.__setattr__(self, name, value)
            return
        setattr(self._obi_fault(), name, value)

    def __eq__(self, other: Any) -> Any:
        if other is self:
            return True
        return self._obi_fault() == other

    def __ne__(self, other: Any) -> Any:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(self._obi_fault())

    def __repr__(self) -> str:
        return (
            f"<replication-proxy cid={self._obi_cid} soid={self._obi_soid} "
            f"sites={len(self._obi_sites)}>"
        )
