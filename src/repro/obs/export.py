"""Exporters: JSONL trace/metric dumps and Prometheus text format.

The JSONL dump is the interchange format between a run and the ``python
-m repro obs`` CLI: one JSON object per line, discriminated by ``kind``
(``meta`` / ``span`` / ``metric``).  Several runs may be appended to one
file; each contributes its own ``meta`` line.  :func:`check_dump`
validates the schema (the CI ``obs-smoke`` job gates on it) and
:func:`load_dump` parses a file back into records.

:func:`render_prometheus` writes the registry in the Prometheus text
exposition format (``# TYPE`` comments, ``_total`` counters,
``_bucket{le=...}`` histogram series), dots mangled to underscores.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Bumped when a dump line's schema changes incompatibly.
DUMP_VERSION = 1

_REQUIRED_KEYS = {
    "meta": {"kind", "version", "space", "clock_s"},
    "span": {
        "kind", "trace", "span", "parent", "name", "start_s", "end_s",
        "duration_s", "wall_s", "status", "tags",
    },
    "metric": {"kind", "type", "name"},
}

_METRIC_KEYS = {
    "counter": {"value"},
    "gauge": {"value"},
    "histogram": {"bounds", "counts", "sum", "count"},
}


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def write_dump(obs: Any, handle: IO[str], *, label: Optional[str] = None) -> int:
    """Serialize one observability state as JSONL lines; returns lines
    written.  ``label`` distinguishes runs sharing a file (bench
    scenarios append to one dump)."""
    meta: Dict[str, Any] = {
        "kind": "meta",
        "version": DUMP_VERSION,
        "space": obs.space_name,
        "clock_s": obs.clock.now(),
        "spans": len(obs.tracer.finished),
        "dropped_spans": obs.tracer.dropped_spans,
    }
    if label is not None:
        meta["label"] = label
    lines = 1
    handle.write(json.dumps(meta, sort_keys=True) + "\n")
    for span in obs.tracer.finished:
        handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        lines += 1
    for metric in obs.metrics.all():
        handle.write(json.dumps(metric.to_dict(), sort_keys=True) + "\n")
        lines += 1
    return lines


def load_dump(source: Any) -> List[Dict[str, Any]]:
    """Parse a JSONL dump (a path or an open text handle) into records."""
    if hasattr(source, "read"):
        return _parse_dump_lines(source, "<stream>")
    with open(source, "r", encoding="utf-8") as handle:
        return _parse_dump_lines(handle, str(source))


def _parse_dump_lines(
    handle: Iterable[str], where: str
) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{where}:{line_number}: not JSON: {exc}") from exc
        records.append(record)
    return records


def check_dump(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Schema-check dump records; returns human-readable problems
    (empty list = well-formed)."""
    problems: List[str] = []
    saw_meta = False
    for index, record in enumerate(records, start=1):
        where = f"record {index}"
        if not isinstance(record, dict):
            problems.append(f"{where}: not an object")
            continue
        kind = record.get("kind")
        required = _REQUIRED_KEYS.get(kind)
        if required is None:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        missing = required - set(record)
        if missing:
            problems.append(
                f"{where} ({kind}): missing keys {sorted(missing)}"
            )
            continue
        if kind == "meta":
            saw_meta = True
            if record["version"] != DUMP_VERSION:
                problems.append(
                    f"{where}: dump version {record['version']!r} != "
                    f"{DUMP_VERSION}"
                )
        elif kind == "span":
            if record["status"] not in ("ok", "error"):
                problems.append(
                    f"{where}: bad span status {record['status']!r}"
                )
            if not isinstance(record["tags"], dict):
                problems.append(f"{where}: span tags not an object")
            end = record["end_s"]
            if end is not None and end < record["start_s"]:
                problems.append(f"{where}: span ends before it starts")
        elif kind == "metric":
            metric_keys = _METRIC_KEYS.get(record["type"])
            if metric_keys is None:
                problems.append(
                    f"{where}: unknown metric type {record['type']!r}"
                )
                continue
            missing = metric_keys - set(record)
            if missing:
                problems.append(
                    f"{where} ({record['type']} {record['name']}): "
                    f"missing keys {sorted(missing)}"
                )
                continue
            if record["type"] == "histogram" and len(record["counts"]) != len(
                record["bounds"]
            ) + 1:
                problems.append(
                    f"{where}: histogram {record['name']} has "
                    f"{len(record['counts'])} counts for "
                    f"{len(record['bounds'])} bounds"
                )
    if not saw_meta:
        problems.append("no meta record found")
    return problems


def registry_from_dump(records: Iterable[Dict[str, Any]]) -> MetricsRegistry:
    """Rebuild a registry from dump metric lines (merging repeated runs
    by taking counters/histograms cumulatively and gauges last-wins)."""
    registry = MetricsRegistry()
    for record in records:
        if record.get("kind") != "metric":
            continue
        name = record["name"]
        if record["type"] == "counter":
            registry.counter(name).inc(int(record["value"]))
        elif record["type"] == "gauge":
            registry.gauge(name).set(record["value"])
        elif record["type"] == "histogram":
            histogram = registry.histogram(name, record["bounds"])
            if tuple(float(b) for b in record["bounds"]) == histogram.bounds:
                for slot, count in enumerate(record["counts"]):
                    histogram.counts[slot] += int(count)
                histogram.sum += record["sum"]
                histogram.count += int(record["count"])
    return registry


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------


def _prom_name(name: str, prefix: str) -> str:
    mangled = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{prefix}_{mangled}" if prefix else mangled


def _prom_number(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(
    registry: MetricsRegistry, *, prefix: str = "repro"
) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.all():
        if isinstance(metric, Counter):
            name = _prom_name(metric.name, prefix)
            if not name.endswith("_total"):
                name += "_total"
            lines.append(f"# HELP {name} {metric.name}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {metric.value}")
        elif isinstance(metric, Gauge):
            name = _prom_name(metric.name, prefix)
            lines.append(f"# HELP {name} {metric.name}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_number(metric.value)}")
        elif isinstance(metric, Histogram):
            name = _prom_name(metric.name, prefix)
            lines.append(f"# HELP {name} {metric.name}")
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in metric.cumulative():
                lines.append(
                    f'{name}_bucket{{le="{_prom_number(bound)}"}} {cumulative}'
                )
            lines.append(f"{name}_sum {_prom_number(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[Tuple[str, str], float]:
    """A minimal parser for the text format (tests and the CLI use it to
    prove an export is well-formed).  Returns {(name, labels): value}."""
    samples: Dict[Tuple[str, str], float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            series, value_text = line.rsplit(" ", 1)
        except ValueError:
            raise ValueError(f"line {line_number}: no sample value") from None
        if "{" in series:
            name, _, label_part = series.partition("{")
            if not label_part.endswith("}"):
                raise ValueError(f"line {line_number}: unterminated labels")
            labels = label_part[:-1]
        else:
            name, labels = series, ""
        if not name or not (name[0].isalpha() or name[0] in "_:"):
            raise ValueError(f"line {line_number}: bad metric name {name!r}")
        value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        samples[(name, labels)] = value
    return samples
