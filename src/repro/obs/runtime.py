"""The per-manager observability state: tracer + metrics + profiler.

One :class:`Observability` per :class:`~repro.core.manager.
SwappingManager`, created by ``manager.enable_observability()`` —
mirroring ``enable_resilience()`` / ``enable_fastpath()``.  Attaching

* installs the tracer as the event bus's trace provider, so every
  :class:`~repro.events.Event` emitted inside an open span carries that
  span's trace/span ids;
* subscribes to the bus and counts every event under
  ``event.<topic>.count``;
* hooks the :class:`~repro.comm.transport.SimulatedLink` of each known
  store (``on_transfer``), turning every radio transfer into a
  ``link.transfer`` span plus link metrics — stores added later are
  hooked by ``manager.add_store``;
* bridges finished ``swap.out`` / ``swap.in`` spans into latency
  histograms.

Detaching undoes all of it; with no state attached the manager's only
overhead is a ``None`` check per operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.export import render_prometheus, write_dump
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    PAYLOAD_BUCKETS_B,
    RETRY_BUCKETS,
)
from repro.obs.profile import PhaseProfiler, format_breakdown
from repro.obs.trace import NULL_SPAN, Span, Tracer, span_tree


@dataclass(frozen=True)
class ObsConfig:
    """Tuning knobs for the observability subsystem."""

    #: Finished spans retained in the tracer's bounded buffer.
    max_spans: int = 4096
    #: Count every bus event under ``event.<topic>.count``.
    count_events: bool = True
    #: Record a ``link.transfer`` span per radio transfer (the metrics
    #: are kept either way).
    trace_link_transfers: bool = True
    #: Bucket bounds for the swap latency histograms (simulated s).
    latency_buckets_s: Tuple[float, ...] = LATENCY_BUCKETS_S
    #: Bucket bounds for shipped payload sizes (bytes).
    payload_buckets_b: Tuple[float, ...] = PAYLOAD_BUCKETS_B
    #: Bucket bounds for retry attempts per operation.
    retry_buckets: Tuple[float, ...] = RETRY_BUCKETS


class Observability:
    """Tracing + metrics + profiling for one swapping manager."""

    def __init__(self, manager: Any, config: Optional[ObsConfig] = None) -> None:
        self.config = config if config is not None else ObsConfig()
        self._manager = manager
        self.tracer = Tracer(self.clock, max_spans=self.config.max_spans)
        self.metrics = MetricsRegistry()
        self.profiler = PhaseProfiler()
        self._unsubscribe: List[Callable[[], None]] = []
        self._hooked_links: List[Any] = []
        # bind once: ``self._on_link_transfer`` makes a fresh bound-method
        # object per access, so identity checks at detach need this handle
        self._link_hook = self._on_link_transfer
        self._attached = False
        #: Tenant id used to label per-tenant series (``tenant.<id>.*``).
        #: Set explicitly via :meth:`set_tenant_label`, else inferred
        #: from ``manager.tenant`` at refresh time.
        self._tenant_label: Optional[str] = None
        # pre-create the headline histograms so exports are stable even
        # before the first operation
        self.metrics.histogram(
            "swap.out.latency_s", self.config.latency_buckets_s
        )
        self.metrics.histogram(
            "swap.in.latency_s", self.config.latency_buckets_s
        )
        self.metrics.histogram(
            "swap.payload.bytes", self.config.payload_buckets_b
        )
        self.metrics.histogram(
            "swap.retry.attempts", self.config.retry_buckets
        )
        self.tracer.add_observer(self.profiler.record)
        self.tracer.add_observer(self._bridge_span)

    # -- plumbing ----------------------------------------------------------

    @property
    def _space(self) -> Any:
        return self._manager._space

    @property
    def space_name(self) -> str:
        return self._space.name

    @property
    def clock(self) -> Any:
        return self._manager._space.clock

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> None:
        if self._attached:
            return
        self._attached = True
        bus = self._space.bus
        bus.set_trace_provider(self.tracer.current_context)
        if self.config.count_events:
            self._unsubscribe.append(bus.subscribe_all(self._on_event))
        for store in self._manager.available_stores():
            self.instrument_store(store)

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        self._space.bus.set_trace_provider(None)
        for unsubscribe in self._unsubscribe:
            try:
                unsubscribe()
            except ValueError:  # already gone
                pass
        self._unsubscribe.clear()
        for link in self._hooked_links:
            if link.on_transfer is self._link_hook:
                link.on_transfer = None
        self._hooked_links.clear()

    def instrument_store(self, store: Any) -> None:
        """Hook the store's underlying simulated link, if it has one."""
        from repro.comm.transport import SimulatedLink

        link = getattr(store, "link", None)
        seen = 0
        # unwrap fault-injection decorators (FlakyLink keeps the real
        # link in ``_inner``) down to the object that owns the hook slot
        while link is not None and not isinstance(link, SimulatedLink):
            link = getattr(link, "_inner", None)
            seen += 1
            if seen > 8:  # defensive: cyclic wrappers
                return
        if link is None or link in self._hooked_links:
            return
        if link.on_transfer is None:
            link.on_transfer = self._link_hook
            self._hooked_links.append(link)

    # -- hooks -------------------------------------------------------------

    def _on_event(self, event: Any) -> None:
        try:
            self.metrics.counter(f"event.{type(event).topic}.count").inc()
        except Exception:  # noqa: BLE001 - observability must never break ops
            pass

    def _on_link_transfer(self, link: Any, nbytes: int, elapsed_s: float) -> None:
        try:
            self.metrics.counter("link.transfer.count").inc()
            self.metrics.counter("link.bytes.total").inc(nbytes)
            now = self.clock.now()
            if self.config.trace_link_transfers:
                self.tracer.record_span(
                    "link.transfer",
                    start_s=now - elapsed_s,
                    end_s=now,
                    link=getattr(link, "name", "link"),
                    nbytes=nbytes,
                )
        except Exception:  # noqa: BLE001
            pass

    def _bridge_span(self, span: Span) -> None:
        if span.name == "swap.out":
            self.metrics.histogram(
                "swap.out.latency_s", self.config.latency_buckets_s
            ).observe(span.duration_s)
        elif span.name == "swap.in":
            self.metrics.histogram(
                "swap.in.latency_s", self.config.latency_buckets_s
            ).observe(span.duration_s)
        elif span.name == "retry.backoff":
            self.metrics.counter("swap.retry.count").inc()

    # -- recording helpers used by instrumented code -----------------------

    def observe_payload(self, nbytes: int) -> None:
        self.metrics.histogram(
            "swap.payload.bytes", self.config.payload_buckets_b
        ).observe(nbytes)

    def observe_attempts(self, attempts: int) -> None:
        self.metrics.histogram(
            "swap.retry.attempts", self.config.retry_buckets
        ).observe(attempts)

    # -- unified counter view ----------------------------------------------

    def set_tenant_label(self, tenant_id: Optional[str]) -> None:
        """Label this manager's per-tenant series ``tenant.<id>.*``.

        Called by :meth:`repro.fleet.tenancy.Tenant.bind`; ``None``
        clears the label (refresh then falls back to ``manager.tenant``
        when one is bound).
        """
        self._tenant_label = tenant_id

    def tenant_label(self) -> Optional[str]:
        if self._tenant_label is not None:
            return self._tenant_label
        tenant = getattr(self._manager, "tenant", None)
        return tenant.tenant_id if tenant is not None else None

    def refresh(self) -> None:
        """Absorb the legacy ``ManagerStats`` counters (dot-named via
        :data:`repro.stats.COUNTER_NAMES`) and current gauges into the
        registry.  Called before every export/snapshot."""
        from repro.stats import counter_snapshot

        counters = counter_snapshot(self._manager.stats)
        for name, value in counters.items():
            self.metrics.counter(name).set_to(value)
        label = self.tenant_label()
        if label is not None:
            # the same ManagerStats swap counters, re-registered under
            # the tenant label.  ``set_to`` keeps the copy idempotent —
            # repeated refreshes never double-count, and the global
            # series above stay the single source of truth.
            for name, value in counters.items():
                if name.startswith("swap."):
                    self.metrics.counter(f"tenant.{label}.{name}").set_to(
                        value
                    )
        heap = self._space.heap
        self.metrics.gauge("heap.used.bytes").set(heap.used)
        self.metrics.gauge("heap.capacity.bytes").set(heap.capacity)
        fastpath = self._manager.fastpath
        self.metrics.gauge("fastpath.cache.bytes").set(
            fastpath.cache.used_bytes if fastpath is not None else 0
        )
        stats = self._manager.stats
        if stats.swap_outs:
            hits = stats.fastpath_noops + stats.fastpath_reships
            self.metrics.gauge("fastpath.cache.hit_ratio").set(
                hits / stats.swap_outs
            )
        scheduler = getattr(fastpath, "scheduler", None)
        if scheduler is not None:
            pipeline = scheduler.stats
            self.metrics.counter("link.pipeline.transfers").set_to(
                pipeline.transfers
            )
            self.metrics.counter("link.pipeline.barriers").set_to(
                pipeline.barriers
            )
            self.metrics.gauge("link.pipeline.serial_s").set(
                pipeline.serial_s
            )
            self.metrics.gauge("link.pipeline.pipelined_s").set(
                pipeline.pipelined_s
            )
            self.metrics.gauge("link.pipeline.saved_s").set(
                pipeline.saved_s
            )
        sched = getattr(self._manager, "sched", None)
        if sched is not None:
            sstats = sched.stats
            self.metrics.gauge("sched.queue.depth").set(len(sched.queue))
            self.metrics.counter("sched.queue.max_depth").set_to(
                sstats.max_queue_depth
            )
            self.metrics.counter("sched.ops.issued").set_to(sstats.ops_issued)
            self.metrics.counter("sched.fetch.demand").set_to(
                sstats.demand_fetches
            )
            self.metrics.gauge("sched.inflight.fetches").set(
                sched.in_flight_fetches()
            )
            self.metrics.counter("sched.writeback.ships").set_to(
                sstats.writebacks
            )
            self.metrics.counter("sched.drops.stale").set_to(
                sstats.stale_drops
            )
            self.metrics.counter("sched.prefetch.issued").set_to(
                sstats.prefetch_issued
            )
            self.metrics.counter("sched.prefetch.hits").set_to(
                sstats.prefetch_hits
            )
            self.metrics.counter("sched.prefetch.waste").set_to(
                sstats.prefetch_waste
            )
            self.metrics.counter("sched.prefetch.cancelled").set_to(
                sstats.prefetch_cancelled
            )
            self.metrics.counter("sched.prefetch.preempted").set_to(
                sstats.prefetch_preempted
            )
            self.metrics.counter("sched.prefetch.demoted").set_to(
                sstats.prefetch_demoted
            )
            self.metrics.gauge("sched.stall.demand_s").set(
                sstats.demand_stall_s
            )
            self.metrics.gauge("sched.stall.hit_s").set(sstats.hit_stall_s)
            self.metrics.gauge("sched.stall.backpressure_s").set(
                sstats.backpressure_stall_s
            )
            self.metrics.gauge("sched.stall.saved_s").set(
                sstats.stall_saved_s
            )
            self.metrics.gauge("sched.overlap.ratio").set(
                sched.overlap_ratio()
            )
        ladder = getattr(self._manager, "ladder", None)
        if ladder is not None:
            signal = ladder.signal
            if signal is not None:
                self.metrics.gauge("policy.pressure.level").set(
                    int(signal.level)
                )
                self.metrics.gauge("policy.pressure.heap_headroom").set(
                    signal.heap_headroom
                )
                self.metrics.gauge("policy.pressure.store_health").set(
                    signal.store_health
                )
                self.metrics.gauge("policy.pressure.link_saturation").set(
                    signal.link_saturation
                )
            self.metrics.gauge("policy.ladder.rung").set(int(ladder.rung))
            faults = ladder.fault_stalls
            self.metrics.counter("slo.fault_stall.count").set_to(faults.count)
            self.metrics.gauge("slo.fault_stall.p95_s").set(faults.p95())
            self.metrics.gauge("slo.fault_stall.max_s").set(faults.max_s)
            self.metrics.gauge("slo.fault_stall.total_s").set(faults.total_s)
            self.metrics.gauge("slo.fault_stall.foreground_p95_s").set(
                faults.p95(min_priority=2)
            )
            allocs = ladder.alloc_stalls
            self.metrics.counter("slo.alloc_stall.count").set_to(allocs.count)
            self.metrics.gauge("slo.alloc_stall.p95_s").set(allocs.p95())
        topology = getattr(self._manager, "topology", None)
        if topology is not None:
            tstats = topology.stats
            self.metrics.gauge("topology.shards").set(
                topology.shard_table.num_shards
            )
            self.metrics.gauge("topology.cells.live_fraction").set(
                topology.live_cell_fraction()
            )
            self.metrics.counter("topology.reparent.noops").set_to(
                tstats.reparent_noops
            )
            self.metrics.counter("topology.reads.partial").set_to(
                tstats.partial_reads
            )
            self.metrics.counter("topology.ops.invalidated").set_to(
                tstats.ops_invalidated
            )
            self.metrics.counter("topology.repair.replicas").set_to(
                tstats.repair_replicas
            )
            self.metrics.counter("topology.repair.bytes").set_to(
                tstats.repair_bytes
            )
            self.metrics.gauge("topology.reparent.last_latency_s").set(
                tstats.last_reparent_latency_s
            )
        tenant = getattr(self._manager, "tenant", None)
        if tenant is not None:
            registry = tenant._registry
            self.metrics.gauge("tenant.store.bytes").set(tenant.store_bytes())
            self.metrics.gauge("tenant.fair_share.bytes").set(
                tenant.fair_share_bytes()
            )
            self.metrics.gauge("tenant.quota.bytes").set(
                tenant.spec.store_quota_bytes
            )
            self.metrics.gauge("tenant.pressure.level").set(
                int(tenant.pressure().level)
            )
            self.metrics.counter("tenant.evicted.copies").set_to(
                tenant.evicted_copies
            )
            self.metrics.counter("tenant.evicted.bytes").set_to(
                tenant.evicted_bytes
            )
            self.metrics.gauge("fleet.capacity.bytes").set(
                registry.capacity_bytes()
            )
            self.metrics.gauge("fleet.used.bytes").set(registry.used_bytes())
            self.metrics.gauge("fleet.free_fraction").set(
                registry.free_fraction()
            )
            self.metrics.gauge("fleet.under_pressure").set(
                1 if registry.under_pressure() else 0
            )
        self.metrics.counter("trace.spans.dropped").set_to(
            self.tracer.dropped_spans
        )
        dropped_events = getattr(self._space.bus, "dropped_count", None)
        if dropped_events is not None:
            self.metrics.counter("event.history.dropped").set_to(dropped_events)

    # -- exports -----------------------------------------------------------

    def export_jsonl(self, path: str, *, label: Optional[str] = None,
                     append: bool = False) -> int:
        """Write the JSONL dump; returns lines written."""
        self.refresh()
        mode = "a" if append else "w"
        with open(path, mode, encoding="utf-8") as handle:
            return write_dump(self, handle, label=label)

    def prometheus(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        self.refresh()
        return render_prometheus(self.metrics)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data summary (metrics + trace shape + phase breakdown)."""
        self.refresh()
        return {
            "space": self.space_name,
            "clock_s": self.clock.now(),
            "metrics": self.metrics.snapshot(),
            "traces": len(self.tracer.traces()),
            "spans": len(self.tracer.finished),
            "dropped_spans": self.tracer.dropped_spans,
            "phases": self.profiler.breakdown(),
        }

    def format_report(self, *, max_traces: int = 5) -> str:
        """A human-readable report: metric headlines, phase table, and
        the most recent span trees."""
        self.refresh()
        lines = [f"observability report — space {self.space_name!r}, "
                 f"clock {self.clock.now():.3f}s"]
        out_latency = self.metrics.get("swap.out.latency_s")
        in_latency = self.metrics.get("swap.in.latency_s")
        if out_latency is not None and out_latency.count:
            lines.append(
                f"  swap-out: {out_latency.count} ops, "
                f"mean {out_latency.sum / out_latency.count:.4f}s"
            )
        if in_latency is not None and in_latency.count:
            lines.append(
                f"  swap-in:  {in_latency.count} ops, "
                f"mean {in_latency.sum / in_latency.count:.4f}s"
            )
        breakdown = self.profiler.breakdown()
        if breakdown:
            lines.append("")
            lines.append(format_breakdown(breakdown))
        traces = list(self.tracer.traces().items())
        for trace_id, spans in traces[-max_traces:]:
            lines.append("")
            lines.append(f"trace {trace_id} ({len(spans)} span(s)):")
            for span, depth in span_tree(spans):
                tag_text = " ".join(
                    f"{key}={value}" for key, value in span.tags.items()
                )
                error = f" error={span.error!r}" if span.error else ""
                lines.append(
                    f"  {'  ' * depth}{span.name} "
                    f"[{span.duration_s:.4f}s]"
                    f"{' ' + tag_text if tag_text else ''}"
                    f" ({span.status}){error}"
                )
        return "\n".join(lines)

    def span(self, name: str, **tags: Any):
        """Convenience passthrough (``obs.span(...)``)."""
        return self.tracer.span(name, **tags)


__all__ = ["ObsConfig", "Observability", "NULL_SPAN"]
