"""``repro.obs`` — unified observability for the swap pipeline.

Span-based tracing (:mod:`~repro.obs.trace`), a namespaced metrics
registry (:mod:`~repro.obs.metrics`), JSONL/Prometheus exporters
(:mod:`~repro.obs.export`), and a per-phase profiling harness
(:mod:`~repro.obs.profile`), tied to one manager by
:class:`~repro.obs.runtime.Observability`.

Opt in with ``space.manager.enable_observability()``; everything is a
no-op (one ``None`` check per operation) while disabled.  See
``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    check_dump,
    load_dump,
    parse_prometheus,
    registry_from_dump,
    render_prometheus,
    write_dump,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    PAYLOAD_BUCKETS_B,
    RETRY_BUCKETS,
)
from repro.obs.profile import PHASE_OF, PhaseProfiler, PhaseStats, format_breakdown
from repro.obs.runtime import Observability, ObsConfig
from repro.obs.trace import NULL_SPAN, Span, Tracer, span_tree

__all__ = [
    "Observability",
    "ObsConfig",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "span_tree",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "PAYLOAD_BUCKETS_B",
    "RETRY_BUCKETS",
    "PhaseProfiler",
    "PhaseStats",
    "PHASE_OF",
    "format_breakdown",
    "write_dump",
    "load_dump",
    "check_dump",
    "registry_from_dump",
    "render_prometheus",
    "parse_prometheus",
]
