"""``python -m repro obs`` — inspect trace/metric dumps from the shell.

Subcommands::

    python -m repro obs check DUMP [DUMP ...]   # schema-validate (CI gate)
    python -m repro obs report DUMP             # human-readable snapshot
    python -m repro obs report BENCH.json --compare BASELINE.json
                                                # diff two bench reports
    python -m repro obs prom DUMP               # Prometheus text rendering
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.export import (
    check_dump,
    load_dump,
    registry_from_dump,
    render_prometheus,
)
from repro.obs.profile import PHASE_OF, PhaseStats, format_breakdown
from repro.obs.trace import span_tree


class _DumpSpan:
    """A read-back span record quacking like :class:`repro.obs.trace.Span`
    for the tree/report helpers."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "tags",
                 "start_s", "end_s", "wall_s", "status", "error")

    def __init__(self, record: Dict[str, Any]) -> None:
        self.trace_id = record["trace"]
        self.span_id = record["span"]
        self.parent_id = record["parent"]
        self.name = record["name"]
        self.tags = record["tags"]
        self.start_s = record["start_s"]
        self.end_s = record["end_s"]
        self.wall_s = record.get("wall_s", 0.0)
        self.status = record["status"]
        self.error = record.get("error")

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s


def _spans_of(records: List[Dict[str, Any]]) -> List[_DumpSpan]:
    return [
        _DumpSpan(record) for record in records if record.get("kind") == "span"
    ]


def _cmd_check(paths: List[str]) -> int:
    failed = False
    for path in paths:
        try:
            records = load_dump(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: UNREADABLE — {exc}")
            failed = True
            continue
        problems = check_dump(records)
        if problems:
            failed = True
            print(f"{path}: {len(problems)} problem(s)")
            for problem in problems[:20]:
                print(f"  - {problem}")
        else:
            spans = sum(1 for r in records if r.get("kind") == "span")
            metrics = sum(1 for r in records if r.get("kind") == "metric")
            print(
                f"{path}: OK ({len(records)} records: {spans} spans, "
                f"{metrics} metrics)"
            )
    return 1 if failed else 0


def _cmd_report(path: str, max_traces: int) -> int:
    records = load_dump(path)
    problems = check_dump(records)
    if problems:
        print(f"{path}: malformed dump ({problems[0]}); run `obs check`")
        return 1
    metas = [record for record in records if record.get("kind") == "meta"]
    spans = _spans_of(records)
    for meta in metas:
        label = f" [{meta['label']}]" if "label" in meta else ""
        print(
            f"run{label}: space {meta['space']!r}, clock {meta['clock_s']:.3f}s,"
            f" {meta.get('spans', 0)} spans"
            + (
                f" ({meta['dropped_spans']} dropped)"
                if meta.get("dropped_spans")
                else ""
            )
        )

    # phase breakdown re-derived from the dumped spans
    phases: Dict[str, PhaseStats] = {}
    for span in spans:
        phase = PHASE_OF.get(span.name)
        if phase is None:
            continue
        stats = phases.setdefault(phase, PhaseStats())
        stats.count += 1
        if span.status != "ok":
            stats.errors += 1
        stats.sim_s += span.duration_s
        stats.wall_s += span.wall_s
    if phases:
        print()
        print(format_breakdown(
            {phase: stats.to_dict() for phase, stats in phases.items()}
        ))

    # headline metrics
    registry = registry_from_dump(records)
    headlines = [
        ("swap.out.latency_s", "swap-out latency"),
        ("swap.in.latency_s", "swap-in latency"),
        ("swap.payload.bytes", "payload bytes"),
    ]
    printed_header = False
    for name, title in headlines:
        metric = registry.get(name)
        if metric is None or not getattr(metric, "count", 0):
            continue
        if not printed_header:
            print()
            printed_header = True
        print(
            f"{title}: n={metric.count} mean="
            f"{metric.sum / metric.count:.4f} (sum {metric.sum:.4f})"
        )

    grouped: Dict[str, List[_DumpSpan]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    shown = list(grouped.items())[-max_traces:]
    for trace_id, trace_spans in shown:
        print()
        print(f"trace {trace_id} ({len(trace_spans)} span(s)):")
        for span, depth in span_tree(trace_spans):
            tag_text = " ".join(
                f"{key}={value}" for key, value in span.tags.items()
            )
            error = f" error={span.error!r}" if span.error else ""
            print(
                f"  {'  ' * depth}{span.name} [{span.duration_s:.4f}s]"
                f"{' ' + tag_text if tag_text else ''} ({span.status}){error}"
            )
    if len(grouped) > len(shown):
        print()
        print(f"... {len(grouped) - len(shown)} earlier trace(s) not shown "
              f"(--traces N)")
    return 0


def _load_bench(path: str) -> Dict[str, Any]:
    """Load a ``BENCH_*.json`` report (as written by the bench CLIs)."""
    import json

    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "benchmark" not in payload:
        raise ValueError(
            f"{path}: not a bench report (no top-level 'benchmark' key)"
        )
    return payload


def _schema_kind(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, dict):
        return "mapping"
    if isinstance(value, list):
        return "array"
    if isinstance(value, (int, float)):
        return "number"
    if value is None:
        return "null"
    return "string"


def _schema_mismatches(current: Any, baseline: Any) -> List[str]:
    """Structural conflicts that make a field-by-field diff meaningless.

    Two reports disagree on schema when a path holds different *kinds*
    of value (a mapping in one, a number in the other) at any depth, or
    when the top-level keys themselves differ.  Nested keys missing on
    one side are ordinary drift — the diff shows them as ``(new)`` /
    ``(gone)`` — not a schema break.
    """
    problems: List[str] = []

    def walk(cur: Any, base: Any, path: str) -> None:
        kind_cur, kind_base = _schema_kind(cur), _schema_kind(base)
        if kind_cur != kind_base:
            problems.append(
                f"{path or '(top level)'}: baseline has {kind_base}, "
                f"current has {kind_cur}"
            )
            return
        if isinstance(cur, dict) and isinstance(base, dict):
            if not path:  # top level: the key set is part of the schema
                for key in sorted(set(cur) ^ set(base)):
                    side = "current" if key in cur else "baseline"
                    problems.append(f"{key}: only in {side}")
            for key in sorted(set(cur) & set(base)):
                walk(cur[key], base[key], f"{path}.{key}" if path else key)

    walk(current, baseline, "")
    return problems


def _numeric_leaves(value: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts to dotted-path -> numeric leaf."""
    leaves: Dict[str, float] = {}
    if isinstance(value, bool):
        return leaves
    if isinstance(value, (int, float)):
        leaves[prefix] = float(value)
    elif isinstance(value, dict):
        for key in sorted(value):
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(_numeric_leaves(value[key], path))
    return leaves


def _print_diff(current: Dict[str, float], baseline: Dict[str, float],
                indent: str = "  ") -> None:
    from repro.bench.report import is_wall_path, within_wall_jitter

    for path in sorted(set(current) | set(baseline)):
        new = current.get(path)
        old = baseline.get(path)
        if new is None:
            print(f"{indent}{path:<28} {old:>14.4g} -> (gone)")
        elif old is None:
            print(f"{indent}{path:<28} {'(new)':>14} -> {new:.4g}")
        else:
            if old != 0:
                change = f"{(new - old) / abs(old) * 100.0:+.1f}%"
            else:
                change = "+0.0%" if new == old else "(was 0)"
            if new == old:
                marker = ""
            elif is_wall_path(path) and within_wall_jitter(old, new):
                # real-time readings jitter with the host; inside the
                # tolerance the change is noise, not a regression
                marker = "  ~"
            else:
                marker = "  *"
            print(
                f"{indent}{path:<28} {old:>14.4g} -> {new:<14.4g} "
                f"{change}{marker}"
            )


def _cmd_compare(path: str, baseline_path: str) -> int:
    """Diff two bench JSON reports field-by-field.

    Every numeric leaf (scenario counters, phase costs, reductions) is
    shown as ``baseline -> current`` with the relative change; changed
    rows are starred.  Works on any pair of ``BENCH_*.json`` files.
    """
    try:
        current = _load_bench(path)
        baseline = _load_bench(baseline_path)
    except (OSError, ValueError) as exc:
        print(f"compare: {exc}")
        return 1
    name = current.get("benchmark")
    if baseline.get("benchmark") != name:
        print(
            f"compare: different benchmarks — {path} is {name!r}, "
            f"{baseline_path} is {baseline.get('benchmark')!r}"
        )
        return 1
    mismatches = _schema_mismatches(current, baseline)
    if mismatches:
        print(f"compare: schema mismatch between {path} and {baseline_path}:")
        for line in mismatches[:20]:
            print(f"  {line}")
        if len(mismatches) > 20:
            print(f"  ... and {len(mismatches) - 20} more")
        return 1
    print(f"benchmark {name!r}: {baseline_path} -> {path}")

    current_scenarios = current.get("scenarios", {})
    baseline_scenarios = baseline.get("scenarios", {})
    for scenario in sorted(set(current_scenarios) | set(baseline_scenarios)):
        print()
        if scenario not in baseline_scenarios:
            print(f"scenario {scenario!r}: only in {path}")
            continue
        if scenario not in current_scenarios:
            print(f"scenario {scenario!r}: only in {baseline_path}")
            continue
        print(f"scenario {scenario!r}:")
        _print_diff(
            _numeric_leaves(current_scenarios[scenario]),
            _numeric_leaves(baseline_scenarios[scenario]),
        )
    reductions = _numeric_leaves(current.get("reductions", {}))
    baseline_reductions = _numeric_leaves(baseline.get("reductions", {}))
    if reductions or baseline_reductions:
        print()
        print("reductions:")
        _print_diff(reductions, baseline_reductions)
    return 0


def _cmd_prom(path: str) -> int:
    records = load_dump(path)
    print(render_prometheus(registry_from_dump(records)), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro obs", description=__doc__
    )
    commands = parser.add_subparsers(dest="command", required=True)
    check = commands.add_parser("check", help="schema-validate dump files")
    check.add_argument("paths", nargs="+", metavar="DUMP")
    report = commands.add_parser("report", help="human-readable report")
    report.add_argument("path", metavar="DUMP")
    report.add_argument("--traces", type=int, default=5,
                        help="span trees to show (default 5)")
    report.add_argument("--compare", metavar="BASELINE", default=None,
                        help="treat PATH and BASELINE as bench JSON reports "
                        "and diff them field-by-field")
    prom = commands.add_parser("prom", help="Prometheus text rendering")
    prom.add_argument("path", metavar="DUMP")
    arguments = parser.parse_args(argv)

    if arguments.command == "check":
        return _cmd_check(arguments.paths)
    if arguments.command == "report":
        if arguments.compare is not None:
            return _cmd_compare(arguments.path, arguments.compare)
        return _cmd_report(arguments.path, arguments.traces)
    return _cmd_prom(arguments.path)


if __name__ == "__main__":  # pragma: no cover
    import sys

    raise SystemExit(main(sys.argv[1:]))
