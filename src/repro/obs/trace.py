"""Span-based tracing on the simulated clock.

A :class:`Tracer` produces nested :class:`Span`\\ s describing one swap
operation end to end: the root span (``swap.out`` / ``swap.in``) opens
when the manager starts the operation, child spans cover the phases
(encode, store, fetch, verify, journal, link transfers, retry backoffs),
and the whole tree shares one *trace id* — the same id stamped onto
every :class:`~repro.events.Event` emitted while the trace is open, so
bus history correlates to the operation that produced it.

Timestamps come from the space's clock (simulated seconds — zero for
pure CPU work, real radio time for link transfers), so traces are
deterministic and replayable.  Each span *also* records its wall-clock
duration (``wall_s``, via :func:`time.perf_counter`), which is what the
profiling harness uses to attribute CPU cost to phases the simulation
charges nothing for (encoding, verification).

Ids are sequential (``t-000001`` / ``s-000001``), not random: two runs
of the same seeded scenario produce bit-identical trace structure.

Instrumented code paths stay cheap when tracing is off: the manager
hands out :data:`NULL_SPAN` — a stateless no-op context manager — when
no observability state is attached, so the disabled cost is one
attribute test per operation.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple


class Span:
    """One timed, tagged step of an operation."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "tags",
        "start_s",
        "end_s",
        "wall_s",
        "status",
        "error",
        "_tracer",
        "_wall_start",
    )

    def __init__(
        self,
        tracer: "Tracer",
        *,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        tags: Dict[str, Any],
        start_s: float,
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.tags = tags
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.wall_s: float = 0.0
        self.status = "ok"
        self.error: Optional[str] = None
        self._wall_start = time.perf_counter()

    # -- annotation --------------------------------------------------------

    def set_tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def fail(self, error: BaseException | str) -> "Span":
        self.status = "error"
        self.error = str(error)
        return self

    @property
    def duration_s(self) -> float:
        """Simulated seconds the span covered (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    def finish(self, error: Optional[BaseException] = None) -> "Span":
        """Close the span explicitly (for code that cannot use ``with``)."""
        if error is not None and self.status == "ok":
            self.fail(error)
        self._tracer._finish(self)
        return self

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc is not None and self.status == "ok":
            self.fail(exc)
        self._tracer._finish(self)
        return False  # never swallow

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "wall_s": self.wall_s,
            "status": self.status,
            "error": self.error,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r} {self.span_id} trace={self.trace_id} "
            f"status={self.status})"
        )


class _NullSpan:
    """The do-nothing span handed out while observability is disabled."""

    __slots__ = ()

    def set_tag(self, key: str, value: Any) -> "_NullSpan":
        return self

    def fail(self, error: Any) -> "_NullSpan":
        return self

    def finish(self, error: Any = None) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


#: Shared stateless instance; safe to re-enter from anywhere.
NULL_SPAN = _NullSpan()

#: Called with each finished span (profilers, metric bridges).
SpanObserver = Callable[[Span], None]


class Tracer:
    """Produces spans; keeps a bounded buffer of finished ones."""

    def __init__(self, clock: Any, *, max_spans: int = 4096) -> None:
        self._clock = clock
        self._stack: List[Span] = []
        self.finished: Deque[Span] = deque(maxlen=max_spans)
        self.dropped_spans = 0
        self._trace_seq = 0
        self._span_seq = 0
        self._observers: List[SpanObserver] = []

    # -- id plumbing -------------------------------------------------------

    def _next_trace_id(self) -> str:
        self._trace_seq += 1
        return f"t-{self._trace_seq:06d}"

    def _next_span_id(self) -> str:
        self._span_seq += 1
        return f"s-{self._span_seq:06d}"

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **tags: Any) -> Span:
        """Open a span: a child of the current one, or a new trace root."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self,
            trace_id=(
                parent.trace_id if parent is not None else self._next_trace_id()
            ),
            span_id=self._next_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            tags=tags,
            start_s=self._clock.now(),
        )
        self._stack.append(span)
        return span

    def record_span(
        self,
        name: str,
        *,
        start_s: float,
        end_s: float,
        status: str = "ok",
        error: Optional[str] = None,
        **tags: Any,
    ) -> Span:
        """Record an already-completed step (e.g. a link transfer whose
        elapsed time is only known after the fact) as a child of the
        current span without pushing it on the stack."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self,
            trace_id=(
                parent.trace_id if parent is not None else self._next_trace_id()
            ),
            span_id=self._next_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            tags=tags,
            start_s=start_s,
        )
        span.end_s = end_s
        span.status = status
        span.error = error
        span.wall_s = 0.0
        self._retire(span)
        return span

    def _finish(self, span: Span) -> None:
        if span.end_s is not None:
            return  # already finished (double exit)
        span.end_s = self._clock.now()
        span.wall_s = time.perf_counter() - span._wall_start
        if span in self._stack:
            # well-nested in the common case; tolerate skipped frames
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        self._retire(span)

    def _retire(self, span: Span) -> None:
        if (
            self.finished.maxlen is not None
            and len(self.finished) == self.finished.maxlen
        ):
            self.dropped_spans += 1
        self.finished.append(span)
        for observer in self._observers:
            try:
                observer(span)
            except Exception:  # noqa: BLE001 - observers must never break ops
                pass

    # -- introspection -----------------------------------------------------

    def add_observer(self, observer: SpanObserver) -> Callable[[], None]:
        self._observers.append(observer)
        return lambda: self._observers.remove(observer)

    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def current_context(self) -> Optional[Tuple[str, str]]:
        """(trace_id, span_id) of the innermost open span, or ``None``.

        This is the callable handed to
        :meth:`repro.events.EventBus.set_trace_provider`.
        """
        if not self._stack:
            return None
        top = self._stack[-1]
        return (top.trace_id, top.span_id)

    def spans(self) -> List[Span]:
        return list(self.finished)

    def traces(self) -> Dict[str, List[Span]]:
        """Finished spans grouped by trace id, in finish order."""
        grouped: Dict[str, List[Span]] = {}
        for span in self.finished:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def clear(self) -> None:
        self.finished.clear()
        self.dropped_spans = 0


def span_tree(spans: List[Span]) -> List[Tuple[Span, int]]:
    """Flatten one trace's spans to (span, depth) rows, children under
    parents, siblings in start order (ties broken by span id)."""
    by_parent: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    known = {span.span_id for span in spans}
    rows: List[Tuple[Span, int]] = []

    def visit(parent_id: Optional[str], depth: int) -> None:
        children = by_parent.get(parent_id, [])
        children.sort(key=lambda span: (span.start_s, span.span_id))
        for child in children:
            rows.append((child, depth))
            visit(child.span_id, depth + 1)

    visit(None, 0)
    # spans whose parent was evicted from the bounded buffer: show as roots
    for span in spans:
        if span.parent_id is not None and span.parent_id not in known:
            rows.append((span, 0))
            visit(span.span_id, 1)
    return rows
