"""Counters, gauges, and fixed-bucket histograms behind one registry.

Metric names are dot-namespaced (``swap.out.latency_s``,
``fastpath.noop.count``) — the same naming scheme
:data:`repro.stats.COUNTER_NAMES` gives the legacy ``ManagerStats`` /
``SpaceTelemetry`` counters, so one registry can absorb both the live
instrumentation and the pre-existing counters.  Exporters
(:mod:`repro.obs.export`) turn a registry into JSONL or Prometheus text.

Histograms use *fixed* bucket bounds chosen at creation: observation is
a bisect plus two adds, no allocation, so they are safe on the swap hot
path.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Simulated-seconds latency buckets for swap operations (Bluetooth-class
#: payloads land in the 0.1–10 s range; metadata-only no-ops near zero).
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Payload-size buckets (bytes) for shipped cluster XML.
PAYLOAD_BUCKETS_B: Tuple[float, ...] = (
    1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
)

#: Attempt-count buckets for retries per operation.
RETRY_BUCKETS: Tuple[float, ...] = (1, 2, 3, 5, 8, 13)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def set_to(self, value: int) -> None:
        """Absorb an externally maintained cumulative counter (e.g. a
        ``ManagerStats`` field); the absorbed value never goes down."""
        if value > self.value:
            self.value = value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "metric", "type": "counter", "name": self.name,
                "value": self.value}


class Gauge:
    """A value that can go up and down (heap usage, cache bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "metric", "type": "gauge", "name": self.name,
                "value": self.value}


class Histogram:
    """Fixed-bucket histogram (upper-bound buckets, plus +Inf)."""

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        ordered = tuple(sorted(float(bound) for bound in bounds))
        if not ordered:
            raise ValueError("a histogram needs at least one bucket bound")
        self.name = name
        self.bounds = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, +Inf last — the shape
        Prometheus ``_bucket{le=...}`` series want."""
        running = 0
        rows: List[Tuple[float, int]] = []
        for bound, count in zip(self.bounds, self.counts):
            running += count
            rows.append((bound, running))
        rows.append((float("inf"), running + self.counts[-1]))
        return rows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "metric",
            "type": "histogram",
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Create-or-get access to named metrics; one per Observability."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(
            name,
            Histogram,
            lambda: Histogram(
                name, bounds if bounds is not None else LATENCY_BUCKETS_S
            ),
        )

    def _get(self, name: str, kind: type, factory: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def all(self) -> List[Any]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-data view of every metric, keyed by name."""
        return {metric.name: metric.to_dict() for metric in self.all()}
