"""The profiling harness: per-phase cost attribution from spans.

Benchmarks want "where did the swap cycle spend its time" without
hand-threading timers through five modules.  The :class:`PhaseProfiler`
subscribes to a tracer's finished spans and folds the phase-bearing ones
(:data:`PHASE_OF`) into per-phase aggregates:

* ``sim_s`` — simulated seconds (radio time for ``link``; zero for pure
  CPU phases like ``encode``, which the simulation charges nothing for);
* ``wall_s`` — real CPU seconds measured per span, which is what makes
  the encode/verify/journal attribution non-trivial.

``store`` and ``fetch`` phases are *inclusive* of the link transfers
they wait on; the ``link`` phase counts the radio specifically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: span name -> phase label.  Container spans (``swap.out``, ``scrub.pass``)
#: are deliberately absent: aggregating them would double-count children.
PHASE_OF: Dict[str, str] = {
    "swap.out.encode": "encode",
    "swap.out.encode.binary": "encode",
    "swap.out.delta.encode": "encode",
    "swap.out.delta.apply": "encode",
    "swap.out.store": "store",
    "swap.out.delta.store": "store",
    "swap.out.journal": "journal",
    "fastpath.probe": "store",
    "swap.in.fetch": "fetch",
    "swap.in.verify": "verify",
    "swap.in.decode": "decode",
    "swap.in.decode.binary": "decode",
    "link.transfer": "link",
    "retry.backoff": "backoff",
}

#: Stable presentation order for reports and bench JSON.
PHASE_ORDER = (
    "encode", "store", "link", "journal", "fetch", "verify", "decode",
    "backoff",
)


@dataclass
class PhaseStats:
    count: int = 0
    errors: int = 0
    sim_s: float = 0.0
    wall_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "errors": self.errors,
            "sim_s": self.sim_s,
            "wall_s": self.wall_s,
        }


class PhaseProfiler:
    """Aggregates phase-bearing spans; robust to span-buffer eviction
    (aggregation happens at finish time, not at export time)."""

    def __init__(self) -> None:
        self.phases: Dict[str, PhaseStats] = {}

    def record(self, span: Any) -> None:
        """Tracer observer: fold one finished span into its phase."""
        phase = PHASE_OF.get(span.name)
        if phase is None:
            return
        stats = self.phases.get(phase)
        if stats is None:
            stats = self.phases[phase] = PhaseStats()
        stats.count += 1
        if span.status != "ok":
            stats.errors += 1
        stats.sim_s += span.duration_s
        stats.wall_s += span.wall_s

    def breakdown(self) -> Dict[str, Dict[str, Any]]:
        """Phase -> aggregate dict, in :data:`PHASE_ORDER` order."""
        ordered: Dict[str, Dict[str, Any]] = {}
        for phase in PHASE_ORDER:
            if phase in self.phases:
                ordered[phase] = self.phases[phase].to_dict()
        for phase in sorted(self.phases):
            if phase not in ordered:
                ordered[phase] = self.phases[phase].to_dict()
        return ordered

    def clear(self) -> None:
        self.phases.clear()


def format_breakdown(breakdown: Dict[str, Dict[str, Any]]) -> str:
    """A small human-readable per-phase table."""
    header = (
        f"{'phase':<10} {'count':>7} {'errors':>7} {'sim s':>10} {'wall ms':>9}"
    )
    lines = [header, "-" * len(header)]
    for phase, stats in breakdown.items():
        lines.append(
            f"{phase:<10} {stats['count']:>7} {stats['errors']:>7} "
            f"{stats['sim_s']:>10.4f} {stats['wall_s'] * 1000:>9.2f}"
        )
    return "\n".join(lines)
