"""Identifier allocation for objects, clusters and swap-clusters.

OBIWAN keys everything on small ids: every managed object gets an *oid*,
every replication cluster a *cluster id* (cid) and every swap-cluster a
*swap-cluster id* (sid).  Sid ``0`` is reserved for the special
swap-cluster-0 that holds global variables / roots (paper, Section 3).

Ids are plain ``int`` so they serialize trivially into the XML wire format
and hash fast in the manager's tables.
"""

from __future__ import annotations

import itertools
import threading

Oid = int
Cid = int
Sid = int

#: The reserved swap-cluster id for process globals / root variables.
ROOT_SID: Sid = 0


class IdAllocator:
    """Thread-safe monotonic allocator for one id namespace."""

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            return next(self._counter)

    def reserve_above(self, value: int) -> None:
        """Make sure future ids are strictly greater than ``value``.

        Used when re-adopting swapped-in objects that keep their old oids.
        """
        with self._lock:
            current = next(self._counter)
            self._counter = itertools.count(max(current, value + 1))


class IdSpace:
    """The three id namespaces one managed space needs."""

    def __init__(self) -> None:
        self.oids = IdAllocator(start=1)
        self.cids = IdAllocator(start=1)
        # sid 0 is reserved for ROOT_SID
        self.sids = IdAllocator(start=1)


def format_swap_key(space_name: str, sid: Sid, epoch: int) -> str:
    """Build the unique key a swap-cluster is stored under on a device.

    The paper requires "a unique ID (e.g., a number, a file name)" per
    stored set; we include the owning space and a swap epoch so the same
    cluster swapped twice never collides with a stale copy.
    """
    return f"{space_name}/sc-{sid}/e{epoch}"


def parse_swap_key(key: str) -> "tuple[str, Sid, int]":
    """Inverse of :func:`format_swap_key`: ``(space_name, sid, epoch)``.

    Topology rebuild walks surviving stores' raw inventories and needs
    the owning sid back out of each key; raises ``ValueError`` on keys
    that are not swap keys (delta documents reuse the same prefix, so
    chain segments parse too — callers dedupe by sid).
    """
    space_name, _, rest = key.rpartition("/sc-")
    if not space_name or not rest:
        raise ValueError(f"not a swap key: {key!r}")
    sid_text, sep, epoch_text = rest.partition("/e")
    if not sep:
        raise ValueError(f"not a swap key: {key!r}")
    try:
        return space_name, int(sid_text), int(epoch_text)
    except ValueError:
        raise ValueError(f"not a swap key: {key!r}") from None
