"""Exception taxonomy for the OBIWAN object-swapping reproduction.

Every exception raised by the library derives from :class:`ObiError`, so
applications can catch middleware failures with a single handler while the
concrete subclasses keep failure modes distinguishable (swap-store gone,
heap exhausted, codec mismatch, ...).
"""

from __future__ import annotations


class ObiError(Exception):
    """Base class for all errors raised by the repro library."""


class NotManagedError(ObiError):
    """An operation required a managed object/class but got a plain one."""


class AlreadyManagedError(ObiError):
    """An object was adopted into a space twice, or into two spaces."""


class IntegrityError(ObiError):
    """Referential-integrity invariant violated (raw cross-cluster edge,
    stale proxy, inconsistent proxy tables)."""


class CodecError(ObiError):
    """XML (de)serialization failed or the document is malformed."""


class SwapError(ObiError):
    """Base class for swap-out/swap-in failures."""


class ClusterNotResidentError(SwapError):
    """Operation needed a resident swap-cluster but it is swapped out."""


class ClusterNotSwappedError(SwapError):
    """Swap-in requested for a cluster that is already resident."""


class ClusterPinnedError(SwapError):
    """Swap-out requested for a cluster pinned by :meth:`Space.pin`."""


class SwapStoreUnavailableError(SwapError):
    """The device holding a swapped cluster's XML cannot be reached."""


class NoSwapDeviceError(SwapError):
    """No nearby device is available/has room to receive a swap-cluster."""


class RetryExhaustedError(SwapError):
    """A retried swap-store operation failed on every attempt.

    Raised by the resilience layer when a :class:`repro.resilience.
    RetryPolicy` runs out of attempts or overruns its deadline against a
    single device.  The last underlying failure (usually a
    :class:`TransportError`) is chained as ``__cause__``; the pipeline
    treats this as "that device is unreachable" and moves on to failover
    candidates.
    """


class AllStoresUnreachableError(SwapStoreUnavailableError):
    """Every candidate device failed, retries and failover included.

    The terminal availability failure of the resilient swap pipeline:
    retries were exhausted against each holder/candidate in turn and no
    fallback applied (or local degradation was disabled/out of room).
    Subclasses :class:`SwapStoreUnavailableError` so existing handlers
    for single-device unavailability keep working.
    """


class HeapExhaustedError(ObiError):
    """The managed heap cannot satisfy an allocation even after policy ran."""


class StoreFullError(ObiError):
    """An XML store device refused a payload for lack of capacity."""


class UnknownKeyError(ObiError):
    """An XML store device was asked for a key it does not hold."""


class TransportError(ObiError):
    """A simulated link is down or the peer is out of range."""


class CodecNegotiationError(TransportError):
    """A store refused the wire codec the manager negotiated.

    Distinct from a plain :class:`TransportError` so the sender can
    demote the store to canonical XML and re-ship transparently instead
    of burning retries or failing over — the link is fine, only the
    framing dialect is not.
    """


class DeviceNotFoundError(ObiError):
    """Discovery could not resolve the requested device id."""


class ReplicationError(ObiError):
    """Cluster fetch / proxy replacement failed during replication."""


class SyncError(ReplicationError):
    """A replica push/pull could not be performed (unknown objects,
    non-resident cluster, malformed push document)."""


class SyncConflictError(SyncError):
    """Reintegration found concurrent changes: the master moved past the
    replica's base version (push), or the local replica has unpushed
    changes that a pull would overwrite."""


class PolicyError(ObiError):
    """A policy document is malformed or an action/condition failed."""


class ExpressionError(PolicyError):
    """A policy condition uses syntax outside the safe-expression subset."""
