"""Synchronous event bus wiring the OBIWAN modules together.

The paper's architecture is event-driven: the context-management module
raises memory/connectivity events, the replication module announces cluster
materialization, and the :class:`~repro.core.manager.SwappingManager` "by
policy definition, is registered as a listener of all events regarding
replication of clusters of objects" (Section 4).  The policy engine
mediates between events and actions.

Events are frozen dataclasses.  Each event class declares a dotted
``topic`` used by declarative policies (e.g. ``memory.high``); code can
subscribe either by event class (subclass-aware) or by topic string.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Type

Handler = Callable[["Event"], None]

#: Supplies (trace_id, span_id) for events emitted inside an open span
#: (installed by ``repro.obs``; ``None`` while observability is off).
TraceProvider = Callable[[], "Optional[Tuple[str, str]]"]


@dataclass(frozen=True)
class Event:
    """Base class for all bus events.

    ``trace_id`` / ``span_id`` correlate an event to the traced
    operation that emitted it (see :mod:`repro.obs`).  They are stamped
    by the bus at emit time, default to ``None`` while tracing is off,
    and are excluded from equality so stamped and unstamped copies of
    the same event still compare equal.
    """

    topic = "event"

    trace_id: Optional[str] = field(default=None, kw_only=True, compare=False)
    span_id: Optional[str] = field(default=None, kw_only=True, compare=False)

    def describe(self) -> str:
        pairs = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )
        return f"{type(self).__name__}({pairs})"

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; invert with :func:`event_from_dict`."""
        data: Dict[str, Any] = {
            "event": type(self).__name__,
            "topic": type(self).topic,
        }
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            data[f.name] = value
        return data


# ---------------------------------------------------------------------------
# Memory / context events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemoryHighEvent(Event):
    """Heap usage crossed the high watermark (upwards)."""

    topic = "memory.high"
    space: str
    used: int
    capacity: int
    ratio: float
    need_bytes: int = 0


@dataclass(frozen=True)
class MemoryLowEvent(Event):
    """Heap usage fell back below the low watermark."""

    topic = "memory.low"
    space: str
    used: int
    capacity: int
    ratio: float


@dataclass(frozen=True)
class AllocationFailedEvent(Event):
    """An allocation could not be satisfied; policy gets one chance to free."""

    topic = "memory.exhausted"
    space: str
    need_bytes: int
    used: int
    capacity: int


@dataclass(frozen=True)
class DeviceJoinedEvent(Event):
    """A nearby device entered radio range."""

    topic = "context.device_joined"
    device_id: str


@dataclass(frozen=True)
class DeviceLeftEvent(Event):
    """A nearby device left radio range."""

    topic = "context.device_left"
    device_id: str


# ---------------------------------------------------------------------------
# Replication events (the SwappingManager listens to these)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterReplicatedEvent(Event):
    """An object cluster finished materializing on the device."""

    topic = "replication.cluster"
    space: str
    cid: int
    sid: int
    object_count: int


@dataclass(frozen=True)
class ObjectFaultEvent(Event):
    """A replication proxy was invoked and triggered a cluster fetch."""

    topic = "replication.fault"
    space: str
    cid: int


# ---------------------------------------------------------------------------
# Swapping events (emitted by the SwappingManager; §4: "It also triggers
# specific events regarding object-swapping")
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SwapOutEvent(Event):
    topic = "swap.out"
    space: str
    sid: int
    device_id: str
    key: str
    object_count: int
    bytes_freed: int
    xml_bytes: int


@dataclass(frozen=True)
class SwapFastPathEvent(Event):
    """A cluster took the swap fast path instead of a full encode.

    ``tier`` is ``"noop"`` (a retained store copy was verified with a
    key probe; nothing shipped), ``"reship"`` (the cached canonical
    payload was shipped without re-encoding), or ``"delta"`` (only the
    dirty objects travelled, as a ``<swap-delta>`` document applied
    server-side to the retained base payload).
    """

    topic = "swap.fastpath"
    space: str
    sid: int
    tier: str
    key: str


@dataclass(frozen=True)
class SwapInEvent(Event):
    topic = "swap.in"
    space: str
    sid: int
    device_id: str
    key: str
    object_count: int
    bytes_restored: int


@dataclass(frozen=True)
class SwapDroppedEvent(Event):
    """GC found a swapped cluster unreachable; the store was told to drop."""

    topic = "swap.dropped"
    space: str
    sid: int
    device_id: str
    key: str


@dataclass(frozen=True)
class SwapClusterMergedEvent(Event):
    """Two swap-clusters were merged; the boundary between them is gone."""

    topic = "swap.merged"
    space: str
    absorber_sid: int
    absorbed_sid: int
    object_count: int


@dataclass(frozen=True)
class SwapClusterSplitEvent(Event):
    """A swap-cluster was split; a new boundary was mediated."""

    topic = "swap.split"
    space: str
    source_sid: int
    new_sid: int
    object_count: int


@dataclass(frozen=True)
class BoundaryCrossedEvent(Event):
    """A swap-cluster boundary was crossed (sampled; stats live on clusters)."""

    topic = "swap.boundary"
    space: str
    source_sid: int
    target_sid: int


# ---------------------------------------------------------------------------
# Resilience events (retry / failover / circuit breaker / degradation)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SwapRetryEvent(Event):
    """A swap-store operation failed transiently and will be retried."""

    topic = "resilience.retry"
    space: str
    sid: int
    device_id: str
    operation: str
    attempt: int
    delay_s: float
    error: str


@dataclass(frozen=True)
class SwapFailoverEvent(Event):
    """A device was given up on; the operation moved to another one."""

    topic = "resilience.failover"
    space: str
    sid: int
    operation: str
    from_device: str
    to_device: str


@dataclass(frozen=True)
class CircuitOpenEvent(Event):
    """A store's failure streak crossed the threshold; it is evicted
    from device selection until the cool-down elapses."""

    topic = "resilience.circuit_open"
    space: str
    device_id: str
    consecutive_failures: int
    cooldown_s: float


@dataclass(frozen=True)
class CircuitClosedEvent(Event):
    """A previously-evicted store proved healthy and was re-admitted."""

    topic = "resilience.circuit_closed"
    space: str
    device_id: str


@dataclass(frozen=True)
class SwapDegradedEvent(Event):
    """Every nearby store was unreachable; the cluster was hibernated
    into the local compressed pool instead of being lost."""

    topic = "resilience.degraded"
    space: str
    sid: int
    fallback_device_id: str
    reason: str


# ---------------------------------------------------------------------------
# Durability events (replication / placement / scrub)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplicaCorruptEvent(Event):
    """A replica failed its end-to-end digest check and was quarantined.

    ``source`` names who caught it: ``"swap-in"`` (a fetch on the hot
    path) or ``"scrub"`` (a background digest probe)."""

    topic = "resilience.replica_corrupt"
    space: str
    sid: int
    device_id: str
    key: str
    source: str


@dataclass(frozen=True)
class ReplicaRepairedEvent(Event):
    """The scrubber shipped a fresh copy of an under-replicated cluster."""

    topic = "resilience.replica_repaired"
    space: str
    sid: int
    device_id: str
    key: str
    xml_bytes: int


@dataclass(frozen=True)
class ClusterUnderReplicatedEvent(Event):
    """A swapped cluster has fewer live replicas than the target factor."""

    topic = "resilience.under_replicated"
    space: str
    sid: int
    live_replicas: int
    target_replicas: int
    reason: str


@dataclass(frozen=True)
class StoreDetachedEvent(Event):
    """A store left the neighborhood (planned departure or detected death)."""

    topic = "resilience.store_detached"
    space: str
    device_id: str
    dead: bool
    affected_clusters: int


@dataclass(frozen=True)
class StoreRejoinedEvent(Event):
    """A previously-departed store was re-attached to the manager."""

    topic = "resilience.store_rejoined"
    space: str
    device_id: str


@dataclass(frozen=True)
class ScrubCompletedEvent(Event):
    """One background scrub pass finished (see ``ScrubReport``)."""

    topic = "resilience.scrub"
    space: str
    verified: int
    reactivated: int
    repaired_replicas: int
    repaired_bytes: int
    quarantined: int
    orphans_dropped: int
    repromotions: int
    under_replicated: int


@dataclass(frozen=True)
class JournalTruncatedEvent(Event):
    """The bounded journal history overflowed; completed entries were
    discarded and are no longer available to placement recovery."""

    topic = "resilience.journal.truncated"
    space: str
    dropped: int
    history: int


# ---------------------------------------------------------------------------
# Degrade-ladder events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PressureChangedEvent(Event):
    """The pressure signal crossed into a different level (see
    :mod:`repro.policy.pressure`)."""

    topic = "policy.pressure"
    space: str
    level: int
    previous_level: int
    heap_headroom: float
    store_health: float
    link_saturation: float


@dataclass(frozen=True)
class DegradeRungChangedEvent(Event):
    """The degrade ladder moved to a different rung (escalation is
    immediate; de-escalation steps down one rung per hold period)."""

    topic = "policy.ladder.rung"
    space: str
    rung: int
    previous_rung: int
    level: int
    reason: str


@dataclass(frozen=True)
class ClusterOomKilledEvent(Event):
    """The emergency rung reclaimed a resident cluster outright — its
    objects are gone, not swapped; stale proxies raise on access."""

    topic = "policy.ladder.oom_kill"
    space: str
    sid: int
    priority: int
    object_count: int
    bytes_freed: int


# ---------------------------------------------------------------------------
# GC events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GcCompletedEvent(Event):
    topic = "gc.completed"
    space: str
    collected_objects: int
    collected_clusters: int
    bytes_freed: int


@dataclass(frozen=True)
class ClusterCollectedEvent(Event):
    """A whole swap-cluster was reclaimed by the local collector.

    Carries the replication cluster ids it contained so the replication
    layer can release its server-side registrations (DGC-lite).
    """

    topic = "gc.cluster_collected"
    space: str
    sid: int
    cids: tuple


# ---------------------------------------------------------------------------
# Topology events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardReparentedEvent(Event):
    """A shard's primary was re-pointed at the healthiest in-sync replica
    (the old primary died, browned out, or was detached)."""

    topic = "topology.shard.reparented"
    space: str
    shard_id: int
    from_device: str
    to_device: str
    reason: str
    latency_s: float


@dataclass(frozen=True)
class CellDownEvent(Event):
    """Every store in one cell (placement group) became unreachable at
    once; its replication records are dark until it heals."""

    topic = "topology.cell.down"
    space: str
    cell: str
    stores: tuple
    shards_affected: int
    reason: str


@dataclass(frozen=True)
class CellRecoveredEvent(Event):
    """A previously-down cell came back; its replication records are
    readable again and reconciled against the surviving cells."""

    topic = "topology.cell.recovered"
    space: str
    cell: str
    stores: tuple


# ---------------------------------------------------------------------------
# Fleet / tenancy events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantRegisteredEvent(Event):
    """A space/manager was bound to a tenant in the fleet registry."""

    topic = "fleet.tenant.registered"
    space: str
    tenant_id: str
    store_quota_bytes: int
    guaranteed_share: float
    priority_class: int


@dataclass(frozen=True)
class TenantAdmissionDeniedEvent(Event):
    """A tenant's swap-out was refused remote store admission (over its
    byte quota, or over its fair share while the fleet is under global
    store pressure); the manager degrades to its local pool instead."""

    topic = "fleet.tenant.admission_denied"
    space: str
    tenant_id: str
    nbytes: int
    reason: str


@dataclass(frozen=True)
class TenantEvictedEvent(Event):
    """Fair-share reclaim dropped redundant store copies (mirrors or
    retained clean copies) belonging to an over-share tenant to make
    room for an under-share one."""

    topic = "fleet.tenant.evicted"
    space: str
    tenant_id: str
    copies_dropped: int
    bytes_freed: int
    requested_by: str


@dataclass(frozen=True)
class FleetLeaderElectedEvent(Event):
    """A controller replica became leader (initial election or failover
    after the previous leader died); the epoch fences stale requests."""

    topic = "fleet.leader.elected"
    space: str
    replica_id: int
    epoch: int
    reason: str


@dataclass(frozen=True)
class FleetConfigAppliedEvent(Event):
    """One accepted, versioned config change was delivered to (and
    applied by) one registered manager — exactly once per version."""

    topic = "fleet.config.applied"
    space: str
    version: int
    epoch: int
    tenant_id: str
    keys: tuple


@dataclass(frozen=True)
class FleetConfigRejectedEvent(Event):
    """The controller refused a config change request (unknown key,
    out-of-range value, guarantees oversubscribed, or stale epoch)."""

    topic = "fleet.config.rejected"
    space: str
    epoch: int
    reason: str


# ---------------------------------------------------------------------------
# The bus
# ---------------------------------------------------------------------------


class EventBus:
    """Synchronous publish/subscribe hub.

    Handlers run inline in ``emit`` in subscription order.  A handler
    raising does not prevent other handlers from running; errors are
    collected and re-raised wrapped after dispatch completes, so tests see
    failures but the system state stays consistent.
    """

    def __init__(self, history: int = 256) -> None:
        self._by_type: Dict[Type[Event], List[Handler]] = {}
        self._by_topic: Dict[str, List[Handler]] = {}
        self._any: List[Handler] = []
        self._history: Deque[Event] = deque(maxlen=history)
        self._dropped = 0
        self._trace_provider: Optional[TraceProvider] = None

    def set_trace_provider(self, provider: Optional[TraceProvider]) -> None:
        """Install (or clear) the source of trace context.  While set,
        every emitted event that does not already carry a ``trace_id``
        is stamped with the provider's current (trace_id, span_id)."""
        self._trace_provider = provider

    # -- subscription ------------------------------------------------------

    def subscribe(self, event_type: Type[Event], handler: Handler) -> Callable[[], None]:
        """Register ``handler`` for ``event_type`` and its subclasses.

        Returns an unsubscribe callable.
        """
        self._by_type.setdefault(event_type, []).append(handler)
        return lambda: self._by_type.get(event_type, []).remove(handler)

    def subscribe_topic(self, topic: str, handler: Handler) -> Callable[[], None]:
        """Register ``handler`` for events whose ``topic`` matches.

        A trailing ``*`` matches a topic prefix: ``"swap.*"`` receives
        ``swap.out``, ``swap.in`` and ``swap.dropped``.
        """
        self._by_topic.setdefault(topic, []).append(handler)
        return lambda: self._by_topic.get(topic, []).remove(handler)

    def subscribe_all(self, handler: Handler) -> Callable[[], None]:
        self._any.append(handler)
        return lambda: self._any.remove(handler)

    # -- dispatch ----------------------------------------------------------

    def emit(self, event: Event) -> None:
        if self._trace_provider is not None and event.trace_id is None:
            context = self._trace_provider()
            if context is not None:
                event = replace(
                    event, trace_id=context[0], span_id=context[1]
                )
        if (
            self._history.maxlen is not None
            and len(self._history) == self._history.maxlen
        ):
            self._dropped += 1
        self._history.append(event)
        errors: List[Tuple[Handler, BaseException]] = []
        for handler in self._handlers_for(event):
            try:
                handler(event)
            except Exception as exc:  # noqa: BLE001 - isolate handlers
                errors.append((handler, exc))
        if errors:
            handler, exc = errors[0]
            raise RuntimeError(
                f"{len(errors)} event handler(s) failed for {event.describe()}; "
                f"first: {handler!r}"
            ) from exc

    def _handlers_for(self, event: Event) -> List[Handler]:
        handlers: List[Handler] = []
        for event_type, registered in self._by_type.items():
            if isinstance(event, event_type):
                handlers.extend(registered)
        topic = type(event).topic
        for pattern, registered in self._by_topic.items():
            if _topic_matches(pattern, topic):
                handlers.extend(registered)
        handlers.extend(self._any)
        return handlers

    # -- introspection ------------------------------------------------------

    @property
    def history(self) -> List[Event]:
        return list(self._history)

    @property
    def dropped_count(self) -> int:
        """Events silently evicted from the bounded history deque.

        A long chaos run that introspects ``history`` afterwards can
        compare this before/after to detect that what it is reading is
        a suffix, not the whole story."""
        return self._dropped

    def drain(self) -> List[Event]:
        """Consume-and-clear the history: returns the buffered events
        and empties the deque, so high-volume runs can read in batches
        without unbounded growth or silent eviction.  ``dropped_count``
        is cumulative and not reset."""
        drained = list(self._history)
        self._history.clear()
        return drained

    def last(self, event_type: Type[Event]) -> Event | None:
        for event in reversed(self._history):
            if isinstance(event, event_type):
                return event
        return None

    def count(self, event_type: Type[Event]) -> int:
        return sum(1 for event in self._history if isinstance(event, event_type))


def _topic_matches(pattern: str, topic: str) -> bool:
    if pattern.endswith("*"):
        return topic.startswith(pattern[:-1])
    return pattern == topic


def topic_of(event: Event | Type[Event]) -> str:
    """Return the dotted topic of an event instance or class."""
    cls = event if isinstance(event, type) else type(event)
    return cls.topic


def event_types() -> Dict[str, Type[Event]]:
    """Every concrete :class:`Event` subclass, keyed by class name
    (computed live so late-defined subclasses are included)."""
    found: Dict[str, Type[Event]] = {}

    def visit(cls: Type[Event]) -> None:
        for subclass in cls.__subclasses__():
            found[subclass.__name__] = subclass
            visit(subclass)

    visit(Event)
    return found


def event_from_dict(data: Dict[str, Any]) -> Event:
    """Rebuild an event from :meth:`Event.to_dict` output.

    Raises :class:`ValueError` for unknown event classes or a topic
    that does not match the class (corrupt / stale payloads)."""
    try:
        name = data["event"]
    except KeyError:
        raise ValueError("event dict has no 'event' class name") from None
    cls = event_types().get(name)
    if cls is None:
        raise ValueError(f"unknown event class {name!r}")
    if data.get("topic") != cls.topic:
        raise ValueError(
            f"topic {data.get('topic')!r} does not match "
            f"{name}.topic {cls.topic!r}"
        )
    kwargs: Dict[str, Any] = {}
    for f in fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        if isinstance(value, list):
            value = tuple(value)  # frozen events carry tuples, not lists
        kwargs[f.name] = value
    return cls(**kwargs)


__all__ = [
    "Event",
    "EventBus",
    "Handler",
    "TraceProvider",
    "topic_of",
    "event_types",
    "event_from_dict",
    "MemoryHighEvent",
    "MemoryLowEvent",
    "AllocationFailedEvent",
    "DeviceJoinedEvent",
    "DeviceLeftEvent",
    "ClusterReplicatedEvent",
    "ObjectFaultEvent",
    "SwapOutEvent",
    "SwapFastPathEvent",
    "SwapInEvent",
    "SwapDroppedEvent",
    "SwapClusterMergedEvent",
    "SwapClusterSplitEvent",
    "BoundaryCrossedEvent",
    "SwapRetryEvent",
    "SwapFailoverEvent",
    "CircuitOpenEvent",
    "CircuitClosedEvent",
    "SwapDegradedEvent",
    "ReplicaCorruptEvent",
    "ReplicaRepairedEvent",
    "ClusterUnderReplicatedEvent",
    "StoreDetachedEvent",
    "StoreRejoinedEvent",
    "ScrubCompletedEvent",
    "JournalTruncatedEvent",
    "GcCompletedEvent",
    "ClusterCollectedEvent",
    "ShardReparentedEvent",
    "CellDownEvent",
    "CellRecoveredEvent",
]
