"""Telemetry: one-call snapshots of a space's middleware state.

Collects what operators and experiments keep reaching for — heap usage,
per-swap-cluster residency/size/recency, proxy population, manager
counters — into a plain dataclass, with a formatted report for humans.
Everything is read-only and cheap; nothing here touches the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.ids import ROOT_SID

#: The one naming scheme for swap counters: dot-namespaced metric name
#: -> attribute on :class:`~repro.core.manager.ManagerStats` *and*
#: :class:`SpaceTelemetry` (the two carry the same counters under the
#: same attribute names; entries missing on a given source are simply
#: skipped).  ``repro.obs`` absorbs these names into its metrics
#: registry, so greppable counters and exported metrics agree.
COUNTER_NAMES: Dict[str, str] = {
    "swap.out.count": "swap_outs",
    "swap.in.count": "swap_ins",
    "swap.drop.count": "drops",
    "swap.out.bytes": "bytes_shipped",
    "swap.in.bytes": "bytes_restored",
    "swap.mirror.writes": "mirror_writes",
    "swap.mirror.failovers": "mirror_failovers",
    "replication.cluster.count": "replicated_clusters",
    "resilience.retry.count": "retries",
    "resilience.failover.count": "failovers",
    "resilience.circuit.opens": "circuit_opens",
    "resilience.circuit.closes": "circuit_closes",
    "resilience.degraded.count": "degraded_swaps",
    "resilience.journal.recoveries": "journal_recoveries",
    "resilience.journal.truncated": "journal_truncated",
    "durability.replica.repaired": "replicas_repaired",
    "durability.replica.quarantined": "replicas_quarantined",
    "durability.scrub.ticks": "scrub_ticks",
    "durability.scrub.bytes_repaired": "scrub_bytes_repaired",
    "durability.orphans.collected": "orphans_collected",
    "durability.repromotions": "repromotions",
    "durability.placement.recoveries": "placement_recoveries",
    "fastpath.encode.count": "encode_calls",
    "fastpath.noop.count": "fastpath_noops",
    "fastpath.reship.count": "fastpath_reships",
    "fastpath.swapin.cache_hits": "swapin_cache_hits",
    "fastpath.delta.ships": "fastpath_delta_ships",
    "fastpath.delta.fallbacks": "fastpath_delta_fallbacks",
    "fastpath.delta.compactions": "fastpath_delta_compactions",
    "fastpath.delta.bytes_shipped": "delta_bytes_shipped",
    "fastpath.delta.bytes_saved": "delta_bytes_saved",
    "fastpath.codec.binary_ships": "codec_binary_ships",
    "fastpath.codec.binary_fetches": "codec_binary_fetches",
    "fastpath.codec.fallbacks": "codec_fallbacks",
    "policy.ladder.escalations": "ladder_escalations",
    "policy.ladder.deescalations": "ladder_deescalations",
    "policy.ladder.compress_local": "ladder_compress_local",
    "policy.ladder.drop_clean": "ladder_drop_clean",
    "policy.oom.kills": "oom_kills",
    "policy.oom.kills_foreground": "oom_kills_foreground",
    "topology.reparent.count": "shard_reparents",
    "topology.cell.outages": "cell_outages",
    "topology.cell.recoveries": "cell_recoveries",
    "topology.rebuilds": "topology_rebuilds",
    "fleet.admission.denials": "fleet_admission_denials",
    "fleet.reclaim.evictions": "fleet_reclaim_evictions",
    "fleet.reclaim.bytes": "fleet_reclaim_bytes",
    "fleet.config.updates": "fleet_config_updates",
    "tenant.pressure.bumps": "tenant_pressure_bumps",
}

_MISSING = object()

#: A counter source: live stats, a frozen telemetry snapshot, or an
#: already-extracted name->value mapping.
CounterSource = Union["SpaceTelemetry", Any, Mapping[str, int]]


def counter_snapshot(source: CounterSource) -> Dict[str, int]:
    """The source's counters under their unified dot-namespaced names.

    Accepts a ``ManagerStats``, a :class:`SpaceTelemetry`, or a mapping
    produced by an earlier call (returned unchanged, copied)."""
    if isinstance(source, Mapping):
        return dict(source)
    values: Dict[str, int] = {}
    for name, attribute in COUNTER_NAMES.items():
        value = getattr(source, attribute, _MISSING)
        if value is not _MISSING:
            values[name] = value
    return values


def counter_diff(
    before: CounterSource, after: CounterSource
) -> Dict[str, int]:
    """Per-counter deltas between two snapshots (zero deltas omitted).

    Lets tests and benches assert *what an operation did* instead of
    absolute totals: ``counter_diff(a, b) == {"swap.out.count": 1}``."""
    before_values = counter_snapshot(before)
    after_values = counter_snapshot(after)
    deltas: Dict[str, int] = {}
    for name in set(before_values) | set(after_values):
        delta = after_values.get(name, 0) - before_values.get(name, 0)
        if delta:
            deltas[name] = delta
    return deltas


@dataclass(frozen=True)
class ClusterTelemetry:
    sid: int
    state: str
    objects: int
    footprint_bytes: int
    crossings: int
    last_crossing_tick: int
    epoch: int
    pins: int
    swap_outs: int
    swap_ins: int
    device_ids: tuple


@dataclass(frozen=True)
class SpaceTelemetry:
    space: str
    heap_used: int
    heap_capacity: int
    heap_ratio: float
    heap_peak: int
    resident_objects: int
    swapped_objects: int
    live_proxies: int
    roots: int
    tick: int
    swap_outs: int
    swap_ins: int
    drops: int
    bytes_shipped: int
    bytes_restored: int
    mirror_writes: int
    mirror_failovers: int
    clusters: tuple  # of ClusterTelemetry
    # -- resilience counters (zero while resilience is disabled) --
    retries: int = 0
    failovers: int = 0
    circuit_opens: int = 0
    degraded_swaps: int = 0
    journal_recoveries: int = 0
    journal_truncated: int = 0
    # -- durability counters (zero without replication/scrubbing) --
    replicas_repaired: int = 0
    replicas_quarantined: int = 0
    scrub_ticks: int = 0
    scrub_bytes_repaired: int = 0
    orphans_collected: int = 0
    repromotions: int = 0
    placement_recoveries: int = 0
    # -- fast-path counters (zero while the fast path is disabled) --
    encode_calls: int = 0
    fastpath_noops: int = 0
    fastpath_reships: int = 0
    swapin_cache_hits: int = 0
    payload_cache_bytes: int = 0
    # -- delta swap counters (zero while config.delta is off) --
    fastpath_delta_ships: int = 0
    fastpath_delta_fallbacks: int = 0
    fastpath_delta_compactions: int = 0
    delta_bytes_shipped: int = 0
    delta_bytes_saved: int = 0
    # -- wire-codec counters (zero while codec="binary" is off) --
    codec_binary_ships: int = 0
    codec_binary_fetches: int = 0
    codec_fallbacks: int = 0
    # -- degrade-ladder counters (zero while the ladder is disabled) --
    ladder_escalations: int = 0
    ladder_deescalations: int = 0
    ladder_compress_local: int = 0
    ladder_drop_clean: int = 0
    oom_kills: int = 0
    oom_kills_foreground: int = 0
    # -- topology counters (zero while topology is disabled) --
    shard_reparents: int = 0
    cell_outages: int = 0
    cell_recoveries: int = 0
    topology_rebuilds: int = 0
    # -- fleet/tenancy counters (zero while no tenant is bound) --
    fleet_admission_denials: int = 0
    fleet_reclaim_evictions: int = 0
    fleet_reclaim_bytes: int = 0
    fleet_config_updates: int = 0
    tenant_pressure_bumps: int = 0

    def resident_clusters(self) -> List[ClusterTelemetry]:
        return [record for record in self.clusters if record.state == "resident"]

    def swapped_clusters(self) -> List[ClusterTelemetry]:
        return [record for record in self.clusters if record.state == "swapped"]


def snapshot(space: Any) -> SpaceTelemetry:
    """Collect a consistent telemetry snapshot of ``space``."""
    manager = space.manager
    heap = space.heap
    cluster_records: List[ClusterTelemetry] = []
    swapped_objects = 0
    for sid in sorted(space._clusters):
        cluster = space._clusters[sid]
        footprint = sum(
            heap.size_of(oid) for oid in cluster.oids if heap.holds(oid)
        )
        if cluster.is_swapped:
            swapped_objects += len(cluster.oids)
        cluster_records.append(
            ClusterTelemetry(
                sid=sid,
                state=cluster.state.value,
                objects=len(cluster.oids),
                footprint_bytes=footprint,
                crossings=cluster.crossings,
                last_crossing_tick=cluster.last_crossing_tick,
                epoch=cluster.epoch,
                pins=cluster.pins,
                swap_outs=cluster.swap_out_count,
                swap_ins=cluster.swap_in_count,
                device_ids=tuple(
                    holder.device_id for holder in manager.bindings_for(sid)
                ),
            )
        )
    stats = manager.stats
    return SpaceTelemetry(
        space=space.name,
        heap_used=heap.used,
        heap_capacity=heap.capacity,
        heap_ratio=heap.ratio,
        heap_peak=heap.stats().peak_used,
        resident_objects=space.object_count(),
        swapped_objects=swapped_objects,
        live_proxies=space.live_proxy_count(),
        roots=len(space.root_names()),
        tick=space._tick,
        swap_outs=stats.swap_outs,
        swap_ins=stats.swap_ins,
        drops=stats.drops,
        bytes_shipped=stats.bytes_shipped,
        bytes_restored=stats.bytes_restored,
        mirror_writes=stats.mirror_writes,
        mirror_failovers=stats.mirror_failovers,
        clusters=tuple(cluster_records),
        retries=stats.retries,
        failovers=stats.failovers,
        circuit_opens=stats.circuit_opens,
        degraded_swaps=stats.degraded_swaps,
        journal_recoveries=stats.journal_recoveries,
        journal_truncated=stats.journal_truncated,
        replicas_repaired=stats.replicas_repaired,
        replicas_quarantined=stats.replicas_quarantined,
        scrub_ticks=stats.scrub_ticks,
        scrub_bytes_repaired=stats.scrub_bytes_repaired,
        orphans_collected=stats.orphans_collected,
        repromotions=stats.repromotions,
        placement_recoveries=stats.placement_recoveries,
        encode_calls=stats.encode_calls,
        fastpath_noops=stats.fastpath_noops,
        fastpath_reships=stats.fastpath_reships,
        swapin_cache_hits=stats.swapin_cache_hits,
        fastpath_delta_ships=stats.fastpath_delta_ships,
        fastpath_delta_fallbacks=stats.fastpath_delta_fallbacks,
        fastpath_delta_compactions=stats.fastpath_delta_compactions,
        delta_bytes_shipped=stats.delta_bytes_shipped,
        delta_bytes_saved=stats.delta_bytes_saved,
        codec_binary_ships=stats.codec_binary_ships,
        codec_binary_fetches=stats.codec_binary_fetches,
        codec_fallbacks=stats.codec_fallbacks,
        ladder_escalations=stats.ladder_escalations,
        ladder_deescalations=stats.ladder_deescalations,
        ladder_compress_local=stats.ladder_compress_local,
        ladder_drop_clean=stats.ladder_drop_clean,
        oom_kills=stats.oom_kills,
        oom_kills_foreground=stats.oom_kills_foreground,
        shard_reparents=stats.shard_reparents,
        cell_outages=stats.cell_outages,
        cell_recoveries=stats.cell_recoveries,
        topology_rebuilds=stats.topology_rebuilds,
        fleet_admission_denials=stats.fleet_admission_denials,
        fleet_reclaim_evictions=stats.fleet_reclaim_evictions,
        fleet_reclaim_bytes=stats.fleet_reclaim_bytes,
        fleet_config_updates=stats.fleet_config_updates,
        tenant_pressure_bumps=stats.tenant_pressure_bumps,
        payload_cache_bytes=(
            manager.fastpath.cache.used_bytes
            if getattr(manager, "fastpath", None) is not None
            else 0
        ),
    )


def format_report(telemetry: SpaceTelemetry) -> str:
    """A human-readable multi-line report."""
    lines = [
        f"space {telemetry.space!r}: heap {telemetry.heap_used}/"
        f"{telemetry.heap_capacity} ({telemetry.heap_ratio:.0%}, "
        f"peak {telemetry.heap_peak})",
        f"  objects: {telemetry.resident_objects} resident, "
        f"{telemetry.swapped_objects} swapped; proxies: "
        f"{telemetry.live_proxies}; roots: {telemetry.roots}",
        f"  swaps: {telemetry.swap_outs} out / {telemetry.swap_ins} in / "
        f"{telemetry.drops} dropped; shipped {telemetry.bytes_shipped} B, "
        f"restored {telemetry.bytes_restored} B"
        + (
            f"; mirrors: {telemetry.mirror_writes} writes, "
            f"{telemetry.mirror_failovers} failovers"
            if telemetry.mirror_writes or telemetry.mirror_failovers
            else ""
        ),
    ]
    if (
        telemetry.retries
        or telemetry.failovers
        or telemetry.circuit_opens
        or telemetry.degraded_swaps
        or telemetry.journal_recoveries
    ):
        lines.append(
            f"  resilience: {telemetry.retries} retries, "
            f"{telemetry.failovers} failovers, "
            f"{telemetry.circuit_opens} circuit-opens, "
            f"{telemetry.degraded_swaps} degraded, "
            f"{telemetry.journal_recoveries} journal recoveries"
        )
    if (
        telemetry.scrub_ticks
        or telemetry.replicas_repaired
        or telemetry.replicas_quarantined
        or telemetry.repromotions
        or telemetry.orphans_collected
    ):
        lines.append(
            f"  durability: {telemetry.scrub_ticks} scrub ticks, "
            f"{telemetry.replicas_repaired} repaired "
            f"({telemetry.scrub_bytes_repaired} B), "
            f"{telemetry.replicas_quarantined} quarantined, "
            f"{telemetry.repromotions} re-promoted, "
            f"{telemetry.orphans_collected} orphans collected"
        )
    if (
        telemetry.fastpath_noops
        or telemetry.fastpath_reships
        or telemetry.swapin_cache_hits
        or telemetry.payload_cache_bytes
    ):
        lines.append(
            f"  fast path: {telemetry.fastpath_noops} no-ops, "
            f"{telemetry.fastpath_reships} re-ships, "
            f"{telemetry.swapin_cache_hits} cached reloads; "
            f"{telemetry.encode_calls} encodes, "
            f"cache {telemetry.payload_cache_bytes} B"
        )
    if telemetry.fastpath_delta_ships or telemetry.fastpath_delta_compactions:
        lines.append(
            f"  delta: {telemetry.fastpath_delta_ships} ships, "
            f"{telemetry.fastpath_delta_fallbacks} fallbacks, "
            f"{telemetry.fastpath_delta_compactions} compactions; "
            f"shipped {telemetry.delta_bytes_shipped} B, "
            f"saved {telemetry.delta_bytes_saved} B"
        )
    if telemetry.codec_binary_ships or telemetry.codec_fallbacks:
        lines.append(
            f"  codec: {telemetry.codec_binary_ships} binary ships, "
            f"{telemetry.codec_binary_fetches} binary fetches, "
            f"{telemetry.codec_fallbacks} fallbacks to XML"
        )
    if (
        telemetry.ladder_escalations
        or telemetry.ladder_compress_local
        or telemetry.ladder_drop_clean
        or telemetry.oom_kills
    ):
        lines.append(
            f"  ladder: {telemetry.ladder_escalations} escalations / "
            f"{telemetry.ladder_deescalations} de-escalations; "
            f"{telemetry.ladder_compress_local} compress-local, "
            f"{telemetry.ladder_drop_clean} drop-clean, "
            f"{telemetry.oom_kills} OOM kills "
            f"({telemetry.oom_kills_foreground} foreground)"
        )
    for record in telemetry.clusters:
        label = "sc-0 (roots)" if record.sid == ROOT_SID else f"sc-{record.sid}"
        holders = f" @ {','.join(record.device_ids)}" if record.device_ids else ""
        lines.append(
            f"  {label:<14} {record.state:<8} {record.objects:>5} obj "
            f"{record.footprint_bytes:>8} B  {record.crossings:>6} crossings"
            f"  epoch {record.epoch}{holders}"
        )
    return "\n".join(lines)
