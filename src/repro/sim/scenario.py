"""A canned memory-pressure scenario (Figure 2 end to end).

The application keeps building working sets until the heap crosses its
high watermark; the default machine policy swaps least-recently-used
clusters to whichever nearby store has room; the application then revisits
old data (transparent reloads) and discards some of it (GC instructs the
stores to drop the XML).  The report captures what experiments assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.events import SwapDroppedEvent, SwapInEvent, SwapOutEvent
from repro.runtime.obicomp import managed
from repro.sim.world import ScenarioWorld, StoreSpec


@managed
class WorkItem:
    """One element of the application's working set."""

    def __init__(self, key: int, payload: str) -> None:
        self.key = key
        self.payload = payload
        self.next = None

    def get_key(self) -> int:
        return self.key

    def get_next(self):
        return self.next


@dataclass
class ScenarioReport:
    batches_built: int = 0
    swap_outs: int = 0
    swap_ins: int = 0
    drops: int = 0
    revisit_checksum: int = 0
    expected_checksum: int = 0
    peak_heap_ratio: float = 0.0
    sim_seconds: float = 0.0
    stores_used: List[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.revisit_checksum == self.expected_checksum


def run_pressure_scenario(
    *,
    batches: int = 8,
    items_per_batch: int = 40,
    payload_bytes: int = 200,
    heap_capacity: int = 64 * 1024,
    store_specs: List[StoreSpec] | None = None,
    discard_batches: int = 2,
) -> ScenarioReport:
    """Build working sets under pressure, revisit, discard, collect."""
    world = ScenarioWorld(heap_capacity=heap_capacity)
    if store_specs is None:
        store_specs = [
            StoreSpec("desk-pc", capacity=4 << 20),
            StoreSpec("peer-pda", capacity=512 << 10),
        ]
    for spec in store_specs:
        world.add_store(spec)

    space = world.space
    report = ScenarioReport()
    space.bus.subscribe(
        SwapOutEvent, lambda e: report.stores_used.append(e.device_id)
    )

    # phase 1: build batch after batch; the policy engine relieves pressure
    for batch_index in range(batches):
        head = WorkItem(batch_index * items_per_batch, "x" * payload_bytes)
        node = head
        for item_index in range(1, items_per_batch):
            node.next = WorkItem(
                batch_index * items_per_batch + item_index, "x" * payload_bytes
            )
            node = node.next
        space.ingest(
            head,
            cluster_size=items_per_batch,
            root_name=f"batch-{batch_index}",
        )
        report.batches_built += 1
        report.peak_heap_ratio = max(report.peak_heap_ratio, space.heap.ratio)

    # phase 2: revisit every batch (transparent reloads)
    for batch_index in range(batches):
        cursor = space.get_root(f"batch-{batch_index}")
        while cursor is not None:
            report.revisit_checksum += cursor.get_key()
            cursor = cursor.get_next()
    report.expected_checksum = sum(range(batches * items_per_batch))

    # phase 3: discard the oldest batches; GC drops their stored copies
    for batch_index in range(discard_batches):
        space.del_root(f"batch-{batch_index}")
    space.gc()

    report.swap_outs = space.manager.stats.swap_outs
    report.swap_ins = space.manager.stats.swap_ins
    report.drops = space.manager.stats.drops
    report.sim_seconds = world.clock.now()
    space.verify_integrity()
    return report
