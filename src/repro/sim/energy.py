"""Energy accounting for constrained devices.

The paper's recurring argument against compression-style approaches is
energy: "compression is a computational-intensive process" imposing
"additional CPU load and energy cost, paramount in mobile devices"
(Sections 1 and 6).  Swapping spends a different currency — radio time.
This model converts both to joules so experiments can compare them on
one axis.

Power figures are PDA-class constants (orders of magnitude, not vendor
measurements): an iPAQ-era XScale draws a few hundred mW busy, and a
Bluetooth radio tens of mW while transferring.  What matters for the
comparisons is the *ratio* between CPU and radio draw, which is robust
across that hardware class.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Average power draw per activity, in watts."""

    name: str
    cpu_active_w: float
    radio_tx_w: float
    radio_rx_w: float
    idle_w: float

    def cpu_joules(self, seconds: float) -> float:
        return self.cpu_active_w * seconds

    def radio_joules(self, tx_seconds: float, rx_seconds: float = 0.0) -> float:
        return self.radio_tx_w * tx_seconds + self.radio_rx_w * rx_seconds

    def idle_joules(self, seconds: float) -> float:
        return self.idle_w * seconds


#: iPAQ-class Pocket PC: ~400 mW busy CPU, Bluetooth ~100/85 mW tx/rx.
PDA_ENERGY = EnergyModel(
    name="pda",
    cpu_active_w=0.40,
    radio_tx_w=0.100,
    radio_rx_w=0.085,
    idle_w=0.050,
)

#: Wrist-class device: everything an order of magnitude smaller & slower.
WRIST_ENERGY = EnergyModel(
    name="wrist",
    cpu_active_w=0.040,
    radio_tx_w=0.030,
    radio_rx_w=0.025,
    idle_w=0.004,
)


@dataclass
class EnergyLedger:
    """Accumulates a device's spend across an experiment."""

    model: EnergyModel
    cpu_seconds: float = 0.0
    radio_tx_seconds: float = 0.0
    radio_rx_seconds: float = 0.0

    def charge_cpu(self, seconds: float) -> None:
        self.cpu_seconds += seconds

    def charge_radio_tx(self, seconds: float) -> None:
        self.radio_tx_seconds += seconds

    def charge_radio_rx(self, seconds: float) -> None:
        self.radio_rx_seconds += seconds

    @property
    def cpu_joules(self) -> float:
        return self.model.cpu_joules(self.cpu_seconds)

    @property
    def radio_joules(self) -> float:
        return self.model.radio_joules(
            self.radio_tx_seconds, self.radio_rx_seconds
        )

    @property
    def total_joules(self) -> float:
        return self.cpu_joules + self.radio_joules

    def millijoules_per_kb(self, bytes_moved: int) -> float:
        if bytes_moved <= 0:
            return 0.0
        return (self.total_joules * 1000.0) / (bytes_moved / 1024.0)

    def describe(self) -> str:
        return (
            f"cpu {self.cpu_joules * 1000:.1f} mJ "
            f"({self.cpu_seconds * 1000:.1f} ms busy) + radio "
            f"{self.radio_joules * 1000:.1f} mJ "
            f"({(self.radio_tx_seconds + self.radio_rx_seconds):.2f} s) "
            f"= {self.total_joules * 1000:.1f} mJ"
        )


def swap_cycle_energy(
    xml_bytes: int,
    bandwidth_bps: float,
    latency_s: float,
    cpu_seconds: float,
    model: EnergyModel = PDA_ENERGY,
) -> EnergyLedger:
    """Energy of one swap-out + swap-in of ``xml_bytes`` over a link."""
    ledger = EnergyLedger(model=model)
    transfer = latency_s + (xml_bytes * 8) / bandwidth_bps
    ledger.charge_radio_tx(transfer)  # swap-out
    ledger.charge_radio_rx(transfer)  # swap-in
    ledger.charge_cpu(cpu_seconds)
    return ledger
