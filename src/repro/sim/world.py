"""The simulated world: one mobile device among nearby stores.

A :class:`ScenarioWorld` wires a :class:`~repro.devices.pda.MobileDevice`
to a set of :class:`~repro.devices.store.XmlStoreDevice` receivers behind
simulated links sharing one clock, and provides the failure-injection
controls experiments need: devices leaving range (cleanly or while
holding swapped clusters), links dropping, devices returning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.clock import SimulatedClock
from repro.comm.transport import SimulatedLink, BLUETOOTH_BPS
from repro.devices.pda import MobileDevice
from repro.devices.profiles import DeviceProfile, IPAQ_3360
from repro.devices.store import XmlStoreDevice
from repro.runtime.registry import TypeRegistry


@dataclass(frozen=True)
class StoreSpec:
    """Description of one nearby storage device."""

    name: str
    capacity: int = 1 << 20
    bandwidth_bps: int = BLUETOOTH_BPS
    latency_s: float = 0.05
    position: Optional[Tuple[float, float]] = None


class ScenarioWorld:
    """One mobile device plus its (changing) neighborhood."""

    def __init__(
        self,
        device_name: str = "pda",
        profile: DeviceProfile = IPAQ_3360,
        *,
        heap_capacity: Optional[int] = None,
        registry: Optional[TypeRegistry] = None,
        load_default_policies: bool = True,
    ) -> None:
        self.clock = SimulatedClock()
        if heap_capacity is not None:
            profile = DeviceProfile(
                name=profile.name,
                heap_bytes=heap_capacity,
                link_bps=profile.link_bps,
                link_latency_s=profile.link_latency_s,
                cpu_scale=profile.cpu_scale,
                store_bytes=profile.store_bytes,
            )
        self.device = MobileDevice(
            device_name,
            profile,
            clock=self.clock,
            registry=registry,
            load_default_policies=load_default_policies,
        )
        self._stores: Dict[str, XmlStoreDevice] = {}
        self._links: Dict[str, SimulatedLink] = {}

    @property
    def space(self):
        return self.device.space

    # -- store lifecycle ---------------------------------------------------------

    def add_store(self, spec: StoreSpec) -> XmlStoreDevice:
        link = SimulatedLink(
            spec.bandwidth_bps,
            latency_s=spec.latency_s,
            clock=self.clock,
            name=f"{spec.name}-link",
        )
        store = XmlStoreDevice(spec.name, capacity=spec.capacity, link=link)
        self._stores[spec.name] = store
        self._links[spec.name] = link
        self.device.discover_store(store, position=spec.position)
        return store

    def store(self, name: str) -> XmlStoreDevice:
        return self._stores[name]

    def link(self, name: str) -> SimulatedLink:
        return self._links[name]

    def stores_in_range(self) -> List[str]:
        return self.device.neighborhood.in_range_ids()

    # -- failure injection -----------------------------------------------------------

    def depart_cleanly(self, name: str) -> None:
        """The device leaves range; future contact fails."""
        self._links[name].fail()
        self.device.neighborhood.set_in_range(name, False)

    def vanish_with_data(self, name: str) -> None:
        """The device disappears *and* its stored XML is lost."""
        store = self._stores[name]
        for key in store.keys():
            store._drop_direct(key)
        self.depart_cleanly(name)

    def come_back(self, name: str) -> None:
        self._links[name].restore()
        self.device.neighborhood.set_in_range(name, True)

    # -- reporting ---------------------------------------------------------------------

    def describe(self) -> str:
        lines = [self.device.describe(), f"  sim time: {self.clock.now():.3f}s"]
        for name, store in self._stores.items():
            lines.append(
                f"  store {name}: {len(store)} payload(s), "
                f"{store.used}/{store.capacity} bytes, "
                f"link {'up' if self._links[name].is_up else 'down'}"
            )
        return "\n".join(lines)
