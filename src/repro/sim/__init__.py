"""Scenario simulation: the paper's Figure 2 world.

"A PDA is running applications, on behalf of the user, on top of OBIWAN
middleware.  From time to time, the memory occupied by the object graphs
of applications reaches a threshold value ... the middleware decides to
swap-out a set of objects to nearby devices, if there are any" — with
nearby devices (PCs, peer PDAs, future wireless stores) joining and
leaving radio range, and failure injection for devices that disappear
while holding swapped state.
"""

from repro.sim.world import ScenarioWorld, StoreSpec
from repro.sim.scenario import run_pressure_scenario, ScenarioReport
from repro.sim.energy import (
    EnergyLedger,
    EnergyModel,
    PDA_ENERGY,
    WRIST_ENERGY,
    swap_cycle_energy,
)

__all__ = [
    "ScenarioWorld",
    "StoreSpec",
    "run_pressure_scenario",
    "ScenarioReport",
    "EnergyLedger",
    "EnergyModel",
    "PDA_ENERGY",
    "WRIST_ENERGY",
    "swap_cycle_energy",
]
