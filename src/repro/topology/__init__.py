"""Sharded topology service: cells, shards, primaries, reparenting.

The single manager talking to a handful of stores stops scaling the
moment the replication graph itself becomes a single point of loss.
This package partitions the cluster-key (sid) space into hash shards —
each with a *primary* store and replicas spread across *cells*
(``placement_group``s reused as failure domains) — and keeps the
replication records *colocated per cell*, so losing any one cell yields
partial reads, never a lost graph (the Vitess ``ReplicationGraph``
model).  Surviving cells plus raw store inventory can always rebuild
the whole thing (:meth:`TopologyService.rebuild`).

Opt in through :meth:`~repro.core.manager.SwappingManager.
enable_topology`; everything here is O(1) per placement lookup however
many keys exist, because per-key state is *derived* (hash → shard →
shard record), never stored per key.
"""

from repro.topology.shard import ShardRecord, ShardTable, shard_of
from repro.topology.service import (
    CellReplication,
    CellState,
    TopologyConfig,
    TopologyService,
    TopologyStats,
)

__all__ = [
    "shard_of",
    "ShardRecord",
    "ShardTable",
    "CellReplication",
    "CellState",
    "TopologyConfig",
    "TopologyService",
    "TopologyStats",
]
