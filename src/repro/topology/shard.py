"""Hash sharding of the sid space and the per-shard records.

Placement at fleet scale cannot afford per-key state: a million swapped
clusters would mean a million ledger entries just to answer "which
stores take sid 724911?".  Sharding makes the answer *derived*: a
stable integer hash folds every sid onto one of N shards, and all
per-key routing state lives in N :class:`ShardRecord`s — primary store,
replica stores, and a monotonically increasing *parent epoch* bumped on
every reparent so stale routing decisions are detectable.  Lookups are
two array reads whatever the key count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Knuth's multiplicative constant (2^32 / phi).  ``hash()`` is out:
#: Python salts string hashes per process and even int hashing is an
#: implementation detail — shard routing must agree across restarts,
#: managers, and the rebuild path, forever.
_KNUTH_32 = 2654435761
_MASK_32 = 0xFFFFFFFF


def shard_of(sid: int, num_shards: int) -> int:
    """The shard that owns ``sid`` — stable across processes and time.

    Multiplicative hashing scrambles the low bits of sequentially
    allocated sids (1, 2, 3, ...) so consecutive clusters land on
    different shards instead of marching through them in order.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    scrambled = (sid * _KNUTH_32) & _MASK_32
    # fold the high bits in: sequential sids differ most after scrambling
    # in the upper half of the word
    return ((scrambled >> 16) ^ scrambled) % num_shards


@dataclass
class ShardRecord:
    """Routing state for one shard: who leads, who mirrors.

    The *global* record in Vitess terms — small, authoritative, and the
    thing :meth:`~repro.topology.service.TopologyService.reparent`
    atomically re-points.  ``parent_epoch`` increments on every primary
    change; in-flight work stamped with an older epoch is stale.
    """

    shard_id: int
    primary: Optional[str] = None
    #: Replica device_ids (the primary is not repeated here).
    replicas: List[str] = field(default_factory=list)
    parent_epoch: int = 0

    def holders(self) -> List[str]:
        """Primary first, then replicas — the preferred routing order."""
        out: List[str] = []
        if self.primary is not None:
            out.append(self.primary)
        out.extend(
            device_id for device_id in self.replicas
            if device_id != self.primary
        )
        return out

    def remove(self, device_id: str) -> bool:
        """Strike a device from the record (primary or replica).

        Returns True when the shard lost its *primary* and needs a
        reparent; striking a mere replica returns False.
        """
        was_primary = self.primary == device_id
        if was_primary:
            self.primary = None
        if device_id in self.replicas:
            self.replicas.remove(device_id)
        return was_primary

    def add_replica(self, device_id: str) -> None:
        if device_id != self.primary and device_id not in self.replicas:
            self.replicas.append(device_id)

    def set_primary(self, device_id: str) -> None:
        """Re-point the primary (the atomic step of a reparent)."""
        if device_id in self.replicas:
            self.replicas.remove(device_id)
        old = self.primary
        if old is not None and old != device_id and old not in self.replicas:
            # the deposed primary becomes a regular replica until its
            # health says otherwise; reparenting must not shrink rf
            self.replicas.append(old)
        self.primary = device_id
        self.parent_epoch += 1


class ShardTable:
    """The N shard records, indexed O(1) by shard id or by sid."""

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards
        self._records: List[ShardRecord] = [
            ShardRecord(shard_id=index) for index in range(num_shards)
        ]

    def shard_of(self, sid: int) -> int:
        return shard_of(sid, self.num_shards)

    def record(self, shard_id: int) -> ShardRecord:
        return self._records[shard_id]

    def record_for(self, sid: int) -> ShardRecord:
        return self._records[shard_of(sid, self.num_shards)]

    def records(self) -> List[ShardRecord]:
        return list(self._records)

    def shards_led_by(self, device_id: str) -> List[int]:
        return [
            record.shard_id
            for record in self._records
            if record.primary == device_id
        ]

    def shards_holding(self, device_id: str) -> List[int]:
        return [
            record.shard_id
            for record in self._records
            if record.primary == device_id or device_id in record.replicas
        ]

    def describe(self) -> List[Tuple[int, Optional[str], Tuple[str, ...]]]:
        return [
            (record.shard_id, record.primary, tuple(record.replicas))
            for record in self._records
        ]

    def __len__(self) -> int:
        return self.num_shards
