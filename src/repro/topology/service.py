"""The topology service: cells, colocated replication records, reparenting.

Model (after the Vitess topology split):

* The **shard table** (:mod:`repro.topology.shard`) is the small global
  layer — N records saying who leads and who mirrors each shard.
* **Cell replication records** (:class:`CellReplication`) are the big
  discovery layer, *colocated per cell*: each cell keeps its own index
  of which of its stores serve which shard (fed by the
  :class:`~repro.resilience.placement.PlacementMap` observer hooks).
  Records living in a down cell are unreadable until it heals — reads
  come back *partial*, never wrong — and losing one cell therefore
  never loses the graph: the other cells' records plus raw store
  inventory rebuild it (:meth:`TopologyService.rebuild`).
* **Reparenting** (:meth:`TopologyService.reparent`) re-points a
  shard's primary at the healthiest reachable in-sync replica — ranked
  by the shared failure-rate key (:func:`~repro.resilience.placement.
  health_rank`), never net success — bumps the shard's parent epoch,
  invalidates in-flight async ops for the shard's sids, and leaves
  deficit repair to the (now shard-aware) scrubber.  It is a no-op when
  the current primary is alive and reachable, so repeated churn
  converges instead of thrashing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.events import CellDownEvent, CellRecoveredEvent, ShardReparentedEvent
from repro.ids import parse_swap_key
from repro.resilience.placement import (
    health_rank,
    placement_group_of,
    plan_placement,
)
from repro.topology.shard import ShardTable, shard_of


class CellState(enum.Enum):
    UP = "up"
    DOWN = "down"


@dataclass
class CellReplication:
    """One cell's colocated replication records.

    ``shards`` maps shard id -> device id -> how many placed sids that
    device currently serves for the shard (refcounted so forgetting one
    cluster does not unregister a device still serving others).  The
    record lives *with* the cell: while the cell is down it is dark —
    :meth:`TopologyService.cell_records` refuses to read it — which is
    exactly the partial-result regime reparenting and rebuild must
    tolerate.
    """

    cell: str
    state: CellState = CellState.UP
    stores: Set[str] = field(default_factory=set)
    shards: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def register(self, shard_id: int, device_id: str) -> None:
        holders = self.shards.setdefault(shard_id, {})
        holders[device_id] = holders.get(device_id, 0) + 1

    def unregister(self, shard_id: int, device_id: str) -> None:
        holders = self.shards.get(shard_id)
        if holders is None or device_id not in holders:
            return
        holders[device_id] -= 1
        if holders[device_id] <= 0:
            del holders[device_id]
        if not holders:
            del self.shards[shard_id]

    def devices_for(self, shard_id: int) -> List[str]:
        return sorted(self.shards.get(shard_id, ()))


@dataclass
class TopologyConfig:
    """Tuning for one :class:`TopologyService`."""

    #: Number of hash shards the sid space is folded onto.
    shards: int = 16
    #: Stores per shard (primary + replicas).  ``None`` follows the
    #: manager's replication target.
    replicas_per_shard: Optional[int] = None
    #: Force a scrub pass right after a reparent so the deficit the dead
    #: primary left behind is repaired immediately rather than at the
    #: next scheduled tick.
    auto_repair: bool = True


@dataclass
class TopologyStats:
    reparents: int = 0
    reparent_noops: int = 0
    cells_down: int = 0
    cells_recovered: int = 0
    rebuilds: int = 0
    partial_reads: int = 0
    ops_invalidated: int = 0
    last_reparent_latency_s: float = 0.0
    total_reparent_latency_s: float = 0.0
    #: Replicas the scrubber shipped under topology routing (rebalance
    #: cost tracking for the bench).
    repair_replicas: int = 0
    repair_bytes: int = 0


class TopologyService:
    """Shard-aware placement + reparenting for one manager's fleet.

    Created through :meth:`~repro.core.manager.SwappingManager.
    enable_topology`; installs itself as the placement map's observer so
    the per-cell records track every replica-set change.
    """

    def __init__(self, manager: Any, config: TopologyConfig) -> None:
        if manager.resilience is None:
            from repro.errors import SwapError

            raise SwapError(
                "topology needs the resilience pipeline: call "
                "enable_resilience() before enable_topology()"
            )
        self._manager = manager
        self.config = config
        self.stats = TopologyStats()
        self.shard_table = ShardTable(config.shards)
        self._cells: Dict[str, CellReplication] = {}
        self._cell_of_device: Dict[str, str] = {}
        self.refresh_cells()
        self.rebalance()

    # -- plumbing ----------------------------------------------------------

    @property
    def _space(self) -> Any:
        return self._manager._space

    @property
    def _clock(self) -> Any:
        return self._manager._space.clock

    def shard_of(self, sid: int) -> int:
        return shard_of(sid, self.shard_table.num_shards)

    def replicas_per_shard(self) -> int:
        if self.config.replicas_per_shard is not None:
            return max(1, self.config.replicas_per_shard)
        return self._manager.target_replicas()

    # -- cells -------------------------------------------------------------

    def refresh_cells(self) -> None:
        """(Re)index the manager's stores into cells.

        New stores join their cell's record; unknown cells are created
        UP.  Existing cell state (UP/DOWN) is preserved — reachability
        changes flow through :meth:`tick`, not re-indexing.
        """
        for store in self._manager._stores:
            cell_name = placement_group_of(store)
            cell = self._cells.get(cell_name)
            if cell is None:
                cell = CellReplication(cell=cell_name)
                self._cells[cell_name] = cell
            device_id = store.device_id
            cell.stores.add(device_id)
            self._cell_of_device[device_id] = cell_name

    def cells(self) -> Dict[str, CellReplication]:
        return dict(self._cells)

    def cell_of(self, device_id: str) -> Optional[str]:
        return self._cell_of_device.get(device_id)

    def cell_records(self, cell_name: str) -> Optional[CellReplication]:
        """The cell's colocated records — ``None`` while the cell is down.

        Callers must treat ``None`` as a *partial read* (count it, skip
        it), mirroring a topology server whose cell-local storage is
        unreachable.
        """
        cell = self._cells.get(cell_name)
        if cell is None:
            return None
        if cell.state is CellState.DOWN:
            self.stats.partial_reads += 1
            return None
        return cell

    def live_cell_fraction(self) -> float:
        """Fraction of cells currently UP (1.0 for an empty fleet)."""
        if not self._cells:
            return 1.0
        up = sum(
            1 for cell in self._cells.values() if cell.state is CellState.UP
        )
        return up / len(self._cells)

    def _store_reachable(self, store: Any) -> bool:
        if getattr(store, "is_dead", False):
            return False
        if getattr(store, "is_partitioned", False):
            return False
        return True

    def _stores_by_id(self) -> Dict[str, Any]:
        return {store.device_id: store for store in self._manager._stores}

    def _reachable_ids(self) -> Set[str]:
        return {
            store.device_id
            for store in self._manager._stores
            if self._store_reachable(store)
        }

    # -- liveness sweep ----------------------------------------------------

    def tick(self) -> List[int]:
        """Recompute cell liveness from store reachability; returns the
        shards reparented as a consequence.

        A cell is DOWN when *every* store in it is dead, partitioned, or
        detached — one survivor keeps the cell's records readable.
        Transitions emit :class:`~repro.events.CellDownEvent` /
        :class:`~repro.events.CellRecoveredEvent` and a down cell
        triggers reparenting of every shard whose primary it housed.
        Idempotent: a cell already marked DOWN stays quiet.
        """
        stores_by_id = self._stores_by_id()
        reparented: List[int] = []
        for cell in self._cells.values():
            attached = [
                device_id
                for device_id in sorted(cell.stores)
                if device_id in stores_by_id
            ]
            alive = [
                device_id
                for device_id in attached
                if self._store_reachable(stores_by_id[device_id])
            ]
            if not alive and cell.state is CellState.UP:
                reparented.extend(self._mark_cell_down(cell, "no reachable store"))
            elif alive and cell.state is CellState.DOWN:
                self._mark_cell_recovered(cell)
        return reparented

    def _mark_cell_down(self, cell: CellReplication, reason: str) -> List[int]:
        cell.state = CellState.DOWN
        self.stats.cells_down += 1
        self._manager.stats.cell_outages += 1
        affected = [
            record.shard_id
            for record in self.shard_table.records()
            if record.primary is not None
            and self._cell_of_device.get(record.primary) == cell.cell
        ]
        self._space.bus.emit(
            CellDownEvent(
                space=self._space.name,
                cell=cell.cell,
                stores=tuple(sorted(cell.stores)),
                shards_affected=len(affected),
                reason=reason,
            )
        )
        reparented: List[int] = []
        for shard_id in affected:
            if self.reparent(shard_id, reason=f"cell {cell.cell} down"):
                reparented.append(shard_id)
        return reparented

    def _mark_cell_recovered(self, cell: CellReplication) -> None:
        cell.state = CellState.UP
        self.stats.cells_recovered += 1
        self._manager.stats.cell_recoveries += 1
        self._space.bus.emit(
            CellRecoveredEvent(
                space=self._space.name,
                cell=cell.cell,
                stores=tuple(sorted(cell.stores)),
            )
        )

    def cell_down(self, cell_name: str, reason: str = "declared down") -> List[int]:
        """Explicitly declare a cell down (operator action / churn hook)."""
        cell = self._cells.get(cell_name)
        if cell is None or cell.state is CellState.DOWN:
            return []
        return self._mark_cell_down(cell, reason)

    def cell_recovered(self, cell_name: str) -> None:
        """Explicitly declare a cell healed."""
        cell = self._cells.get(cell_name)
        if cell is not None and cell.state is CellState.DOWN:
            self._mark_cell_recovered(cell)

    # -- shard assignment --------------------------------------------------

    def rebalance(self) -> None:
        """(Re)spread shard holders across cells, round-robin.

        Deterministic: cells and stores are walked in sorted order, each
        shard claims ``replicas_per_shard()`` stores in distinct cells
        (wrapping only when there are fewer cells than the target), and
        successive shards start one cell later so load evens out.
        Existing primaries are kept when still reachable — rebalancing
        must not cause reparent storms.
        """
        stores_by_id = self._stores_by_id()
        cell_names = sorted(
            name
            for name, cell in self._cells.items()
            if cell.state is CellState.UP
            and any(
                device_id in stores_by_id
                and self._store_reachable(stores_by_id[device_id])
                for device_id in cell.stores
            )
        )
        if not cell_names:
            return
        stores_per_cell: Dict[str, List[str]] = {
            name: sorted(
                device_id
                for device_id in self._cells[name].stores
                if device_id in stores_by_id
                and self._store_reachable(stores_by_id[device_id])
            )
            for name in cell_names
        }
        rf = self.replicas_per_shard()
        for record in self.shard_table.records():
            keep_primary = (
                record.primary is not None
                and record.primary in stores_by_id
                and self._store_reachable(stores_by_id[record.primary])
            )
            holders: List[str] = [record.primary] if keep_primary else []
            used_cells = {
                self._cell_of_device[holder]
                for holder in holders
                if holder in self._cell_of_device
            }
            offset = record.shard_id
            lap = 0
            while len(holders) < rf and lap < rf:
                progressed = False
                for step in range(len(cell_names)):
                    if len(holders) >= rf:
                        break
                    cell_name = cell_names[(offset + step) % len(cell_names)]
                    if lap == 0 and cell_name in used_cells:
                        continue  # first lap: one holder per cell
                    pool = stores_per_cell[cell_name]
                    if not pool:
                        continue
                    pick = pool[
                        (record.shard_id // len(cell_names) + lap) % len(pool)
                    ]
                    if pick in holders:
                        continue
                    holders.append(pick)
                    used_cells.add(cell_name)
                    progressed = True
                if not progressed:
                    break
                lap += 1
            if not holders:
                continue
            if not keep_primary:
                record.primary = holders[0]
            record.replicas = [
                holder for holder in holders if holder != record.primary
            ]

    # -- routing -----------------------------------------------------------

    def select_for(self, sid: int, nbytes: int, count: int) -> List[Any]:
        """Stores for ``sid``'s shard: primary first, O(1) in key count.

        Holders that are unreachable or full are skipped; if the shard's
        own holders cannot cover ``count`` copies, the gap is filled by
        health-aware anti-affine planning over the remaining fleet (the
        shard record stays authoritative for *routing*; durability never
        waits on it).
        """
        record = self.shard_table.record_for(sid)
        stores_by_id = self._stores_by_id()
        resilience = self._manager.resilience
        chosen: List[Any] = []
        for device_id in record.holders():
            if len(chosen) >= count:
                break
            store = stores_by_id.get(device_id)
            if store is None or not self._store_reachable(store):
                continue
            if resilience is not None and not resilience.admits(device_id):
                continue
            try:
                if not store.has_room(nbytes):
                    continue
            except Exception:
                if resilience is not None:
                    resilience.record_failure(device_id)
                continue
            chosen.append(store)
        if len(chosen) < count:
            taken = {store.device_id for store in chosen}
            extras = plan_placement(
                [
                    store
                    for store in self._manager.available_stores()
                    if store.device_id not in taken
                ],
                nbytes,
                count - len(chosen),
                health=resilience.health if resilience is not None else None,
                on_probe_failure=(
                    (
                        lambda store: resilience.record_failure(
                            store.device_id
                        )
                    )
                    if resilience is not None
                    else None
                ),
            )
            chosen.extend(extras)
        return chosen

    # -- reparenting -------------------------------------------------------

    def reparent(self, shard_id: int, reason: str = "manual") -> bool:
        """Elect the healthiest reachable in-sync replica as primary.

        Returns True when the primary actually changed.  No-ops (False)
        when the incumbent is alive and reachable, or when no candidate
        survives — both keep repeated churn idempotent.  Election ranks
        candidates by the shared failure-rate key with the device id as
        the deterministic tie-break; candidates are drawn from the shard
        record *and* every readable cell's colocated records, so a down
        cell degrades the candidate pool (partial read) without blocking
        the election.
        """
        record = self.shard_table.record(shard_id)
        stores_by_id = self._stores_by_id()
        reachable = self._reachable_ids()
        resilience = self._manager.resilience
        incumbent = record.primary
        if (
            incumbent is not None
            and incumbent in reachable
            and (resilience is None or resilience.admits(incumbent))
        ):
            self.stats.reparent_noops += 1
            return False

        started = self._clock.now()
        candidates: Set[str] = {
            device_id for device_id in record.replicas if device_id in reachable
        }
        # widen through the surviving cells' records: replicas the global
        # record missed (e.g. scrub repairs landed during an outage)
        for cell_name in sorted(self._cells):
            cell = self.cell_records(cell_name)
            if cell is None:
                continue  # down cell: partial read, tolerated
            for device_id in cell.devices_for(shard_id):
                if device_id in reachable:
                    candidates.add(device_id)
        if incumbent is not None and incumbent not in reachable:
            candidates.discard(incumbent)
        if not candidates:
            # nobody in-sync and reachable: strike the dead incumbent so
            # routing falls through to plan_placement, try again later
            if incumbent is not None and incumbent not in reachable:
                record.remove(incumbent)
            return False

        def election_key(device_id: str) -> Tuple:
            if resilience is not None:
                rank = health_rank(resilience.health.of(device_id))
            else:
                rank = (0, 0.0)
            return (*rank, device_id)

        winner = min(candidates, key=election_key)
        if winner == incumbent:
            self.stats.reparent_noops += 1
            return False
        old = incumbent if incumbent is not None else ""
        if incumbent is not None and incumbent not in reachable:
            record.remove(incumbent)
        record.set_primary(winner)
        self._drain_shard_ops(shard_id, reason)
        latency = self._clock.now() - started
        self.stats.reparents += 1
        self.stats.last_reparent_latency_s = latency
        self.stats.total_reparent_latency_s += latency
        self._manager.stats.shard_reparents += 1
        self._space.bus.emit(
            ShardReparentedEvent(
                space=self._space.name,
                shard_id=shard_id,
                from_device=old,
                to_device=winner,
                reason=reason,
                latency_s=latency,
            )
        )
        if self.config.auto_repair and resilience is not None:
            scrubber = getattr(resilience, "scrubber", None)
            if scrubber is not None:
                scrubber.tick(force=True)
        return True

    def _drain_shard_ops(self, shard_id: int, reason: str) -> None:
        """Invalidate in-flight async swap ops routed at the old primary."""
        sched = self._manager.sched
        resilience = self._manager.resilience
        if sched is None or resilience is None:
            return
        in_flight = getattr(sched, "_speculative", {})
        for sid in resilience.placement.records():
            if self.shard_of(sid) == shard_id:
                if sid in in_flight:
                    self.stats.ops_invalidated += 1
                sched.invalidate(sid, reason=f"reparent: {reason}")

    # -- store churn hooks -------------------------------------------------

    def on_store_removed(
        self, device_id: str, *, dead: bool, reason: str
    ) -> List[int]:
        """Manager ``detach_store`` hook; returns shards reparented."""
        cell_name = self._cell_of_device.get(device_id)
        if dead and cell_name is not None:
            cell = self._cells.get(cell_name)
            if cell is not None:
                for shard_id, holders in list(cell.shards.items()):
                    if device_id in holders:
                        del holders[device_id]
                    if not holders:
                        del cell.shards[shard_id]
        led = self.shard_table.shards_led_by(device_id)
        for record in self.shard_table.records():
            if record.shard_id in led:
                continue
            if device_id in record.replicas:
                record.replicas.remove(device_id)
        reparented: List[int] = []
        for shard_id in led:
            if self.reparent(shard_id, reason=reason):
                reparented.append(shard_id)
            else:
                # no candidate yet: strike the leader so routing falls
                # through until rebalance/attach supplies one
                self.shard_table.record(shard_id).remove(device_id)
        self.tick()  # the departure may have darkened its whole cell
        return reparented

    def on_store_attached(self, store: Any) -> None:
        """Manager ``attach_store`` hook: index the store, heal its cell
        if it was dark, and offer the newcomer to under-filled shards."""
        self.refresh_cells()
        cell_name = placement_group_of(store)
        cell = self._cells.get(cell_name)
        if cell is not None and cell.state is CellState.DOWN:
            self._mark_cell_recovered(cell)
        rf = self.replicas_per_shard()
        device_id = store.device_id
        for record in self.shard_table.records():
            if len(record.holders()) >= rf or device_id in record.holders():
                continue
            holder_cells = {
                self._cell_of_device.get(holder)
                for holder in record.holders()
            }
            if cell_name in holder_cells and len(holder_cells) > 1:
                continue  # keep anti-affinity while other cells exist
            if record.primary is None:
                record.set_primary(device_id)
            else:
                record.add_replica(device_id)

    # -- placement map observer hooks --------------------------------------

    def on_record_swap_out(self, record: Any) -> None:
        shard_id = self.shard_of(record.sid)
        for device_id in record.replicas:
            self._register(shard_id, device_id)

    def on_forget(self, record: Any) -> None:
        shard_id = self.shard_of(record.sid)
        for device_id in record.replicas:
            self._unregister(shard_id, device_id)

    def on_replica_added(self, sid: int, device_id: str) -> None:
        self._register(self.shard_of(sid), device_id)

    def on_replica_removed(self, sid: int, device_id: str) -> None:
        self._unregister(self.shard_of(sid), device_id)

    def _register(self, shard_id: int, device_id: str) -> None:
        cell_name = self._cell_of_device.get(device_id)
        if cell_name is None:
            self.refresh_cells()
            cell_name = self._cell_of_device.get(device_id)
        if cell_name is None:
            return  # not a fleet store (e.g. the local fallback pool)
        self._cells[cell_name].register(shard_id, device_id)

    def _unregister(self, shard_id: int, device_id: str) -> None:
        cell_name = self._cell_of_device.get(device_id)
        if cell_name is not None:
            self._cells[cell_name].unregister(shard_id, device_id)

    # -- rebuild -----------------------------------------------------------

    def rebuild(self) -> Dict[str, int]:
        """Reconstruct the whole topology from what survives.

        Sources, in order: the surviving (UP) cells' colocated records,
        then raw store inventory — every reachable store's key list is
        parsed back to sids (:func:`~repro.ids.parse_swap_key`) and
        hashed onto shards.  Down cells contribute nothing (partial
        read) but cost nothing either: the point of colocating records
        per cell is that N-1 cells plus inventory are always enough.
        Primaries lost with a down cell are re-elected with the usual
        health ranking.  Returns counters for tests/benches.
        """
        self.refresh_cells()
        self.tick()
        stores_by_id = self._stores_by_id()
        reachable = self._reachable_ids()
        space_prefix = f"{self._space.name}/"

        # wipe per-cell indexes of UP cells; DOWN cells keep their (dark)
        # records untouched so healing restores them as-is
        surviving: Dict[int, Set[str]] = {}
        partial = 0
        for cell_name in sorted(self._cells):
            cell = self.cell_records(cell_name)
            if cell is None:
                partial += 1
                continue
            for shard_id, holders in cell.shards.items():
                surviving.setdefault(shard_id, set()).update(holders)

        inventoried = 0
        for device_id in sorted(reachable):
            store = stores_by_id[device_id]
            lister = getattr(store, "keys", None)
            if lister is None:
                continue
            try:
                inventory = list(lister())
            except Exception:
                continue
            seen_sids: Set[int] = set()
            for key in inventory:
                if not key.startswith(space_prefix):
                    continue
                try:
                    _, sid, _ = parse_swap_key(key)
                except ValueError:
                    continue
                seen_sids.add(sid)
            for sid in seen_sids:
                shard_id = self.shard_of(sid)
                if device_id not in surviving.get(shard_id, set()):
                    surviving.setdefault(shard_id, set()).add(device_id)
                    self._register(shard_id, device_id)
                    inventoried += 1

        reparented = 0
        for record in self.shard_table.records():
            holders = {
                device_id
                for device_id in surviving.get(record.shard_id, set())
                if device_id in reachable
            }
            stale = [
                device_id
                for device_id in record.holders()
                if device_id not in reachable
            ]
            for device_id in stale:
                record.remove(device_id)
            for device_id in sorted(holders):
                record.add_replica(device_id)
            if record.primary is None and self.reparent(
                record.shard_id, reason="rebuild"
            ):
                reparented += 1
        self.rebalance()
        self.stats.rebuilds += 1
        self._manager.stats.topology_rebuilds += 1
        return {
            "cells_partial": partial,
            "inventory_replicas": inventoried,
            "reparented": reparented,
        }

    # -- introspection -----------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        return {
            "shards": self.shard_table.num_shards,
            "cells": {
                name: {
                    "state": cell.state.value,
                    "stores": sorted(cell.stores),
                    "shards_tracked": len(cell.shards),
                }
                for name, cell in sorted(self._cells.items())
            },
            "live_cell_fraction": self.live_cell_fraction(),
            "table": self.shard_table.describe(),
        }
