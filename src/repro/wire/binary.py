"""Length-prefixed binary wire codec for swap-cluster payloads.

The canonical protocol stays XML (paper fidelity; every digest in the
system is computed over the canonical XML form, see
:mod:`repro.wire.canonical`).  This module adds a negotiated *wire*
format that is structurally bijective with the canonical document: a
``<swap-cluster>`` travels as tag/len/value frames instead of text, and
both ends can transcode between the two forms byte-exactly.

Document layout::

    magic "OBW" | version 0x01 | frame*

    frame     := tag:u8  length:varint  body[length]
    HEADER    := 0x01  varint sid, varint epoch, varint count,
                       varint len + space utf-8
    MEMBER    := 0x02  varint oid, varint len + class utf-8,
                       varint nfields, field*
    DIGEST    := 0x03  32 raw bytes (sha-256 of the canonical XML text)
    BODY      := 0x04  opaque canonical XML utf-8 (delta wrapper)

    field     := varint len + name utf-8, value
    value     := type:u8 type-specific body (varints LEB128, zigzag ints,
                 IEEE-754 little-endian doubles, utf-8 strings)

The integrity rule: **digests are always computed over canonical XML**.
The encoder walks the object graph once, emitting binary frames and the
canonical text chunks side by side, so the digest comes out of the same
pass; the DIGEST frame embeds it.  Decode re-derives the canonical text
structurally from the frames (no ElementTree, no type registry needed)
and re-hashes it — a flipped bit anywhere in the frames either breaks
the structure (:class:`~repro.errors.CodecError`) or changes the
re-derived canonical digest, so corruption can never reach the caller
unnoticed.  Scrub, placement epochs, and delta-chain semantics are
untouched: a store holding binary frames answers ``fetch``/``digest``
probes by transcoding back to the canonical text.
"""

from __future__ import annotations

import base64
import hashlib
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CodecError, IntegrityError
from repro.wire.canonical import _escape_attr, _escape_text
from repro.wire.wrappers import _stable_order, _xml_safe
from repro.wire.xmlcodec import ClusterDocument, make_classifier

#: Document magic + format version.  Decoders reject anything else.
MAGIC = b"OBW"
VERSION = 1

# -- frame tags ---------------------------------------------------------------
FRAME_HEADER = 0x01
FRAME_MEMBER = 0x02
FRAME_DIGEST = 0x03
FRAME_BODY = 0x04

# -- value type tags ----------------------------------------------------------
VAL_NONE = 0x00
VAL_TRUE = 0x01
VAL_FALSE = 0x02
VAL_INT = 0x03  # zigzag varint (arbitrary precision)
VAL_FLOAT = 0x04  # little-endian IEEE-754 double
VAL_STR = 0x05  # varint len + utf-8 (surrogatepass)
VAL_BYTES = 0x06  # varint len + raw
VAL_LIST = 0x07  # varint count + value*
VAL_TUPLE = 0x08
VAL_SET = 0x09  # items in canonical (_stable_order) order
VAL_FSET = 0x0A
VAL_DICT = 0x0B  # varint count + (key value, item value)*
VAL_REF = 0x10  # varint oid
VAL_OUTREF = 0x11  # varint index
VAL_EXTREF = 0x12  # varint nattrs + (len+key, len+val)* sorted by key


def encode_varint(buf: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) as LEB128."""
    if 0 <= value < 0x80:  # single-byte values dominate real payloads
        buf.append(value)
        return
    if value < 0:
        raise CodecError(f"varint cannot carry negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def decode_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Read one LEB128 varint; returns ``(value, next_pos)``."""
    try:
        byte = data[pos]
    except IndexError:
        raise CodecError("truncated varint in binary payload") from None
    if byte < 0x80:  # single-byte values dominate real payloads
        return byte, pos + 1
    result = byte & 0x7F
    shift = 7
    length = len(data)
    pos += 1
    while True:
        if pos >= length:
            raise CodecError("truncated varint in binary payload")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not (byte & 0x80):
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else (((-value) << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


def _put_str(buf: bytearray, text: str) -> None:
    raw = text.encode("utf-8", "surrogatepass")
    encode_varint(buf, len(raw))
    buf += raw


def _get_str(data: bytes, pos: int) -> Tuple[str, int]:
    try:
        length = data[pos]
    except IndexError:
        raise CodecError("truncated varint in binary payload") from None
    if length < 0x80:  # short strings dominate (names, small values)
        pos += 1
    else:
        length, pos = decode_varint(data, pos)
    end = pos + length
    if end > len(data):
        raise CodecError("truncated string in binary payload")
    try:
        return data[pos:end].decode("utf-8", "surrogatepass"), end
    except UnicodeDecodeError as exc:
        raise CodecError(f"undecodable string in binary payload: {exc}") from exc


def _frame(buf: bytearray, tag: int, body: bytes) -> None:
    buf.append(tag)
    encode_varint(buf, len(body))
    buf += body


#: Escaped-markup caches for the *bounded-cardinality* strings (class
#: and field names) that repeat across every member of every cluster —
#: value strings never go through these.  Cleared when they grow past
#: any plausible schema population.
_FIELD_OPEN_CACHE: Dict[str, str] = {}
_CLASS_OPEN_CACHE: Dict[str, str] = {}
_NAME_BYTES_CACHE: Dict[str, bytes] = {}
#: decode-side twin: raw length-free name bytes -> (name, open tag)
_NAME_DECODE_CACHE: Dict[bytes, Tuple[str, str]] = {}


def _field_open(name: str) -> str:
    cached = _FIELD_OPEN_CACHE.get(name)
    if cached is None:
        if len(_FIELD_OPEN_CACHE) > 4096:
            _FIELD_OPEN_CACHE.clear()
        cached = _FIELD_OPEN_CACHE[name] = (
            f'<field name="{_escape_attr(name)}">'
        )
    return cached


def _class_open(name: str) -> str:
    """``<object class="..." oid="`` — the caller appends the oid."""
    cached = _CLASS_OPEN_CACHE.get(name)
    if cached is None:
        if len(_CLASS_OPEN_CACHE) > 4096:
            _CLASS_OPEN_CACHE.clear()
        cached = _CLASS_OPEN_CACHE[name] = (
            f'<object class="{_escape_attr(name)}" oid="'
        )
    return cached


def _name_bytes(name: str) -> bytes:
    """Length-prefixed utf-8 of a field/class name (cached)."""
    cached = _NAME_BYTES_CACHE.get(name)
    if cached is None:
        if len(_NAME_BYTES_CACHE) > 4096:
            _NAME_BYTES_CACHE.clear()
        buf = bytearray()
        _put_str(buf, name)
        cached = _NAME_BYTES_CACHE[name] = bytes(buf)
    return cached


# -- encode -------------------------------------------------------------------

_SCALAR_INT = int
_SCALAR_STR = str
_SCALAR_FLOAT = float
_SCALAR_BOOL = bool


def _encode_value(
    parts: List[str], buf: bytearray, value: Any, classify: Callable
) -> None:
    """Emit one value as canonical-XML chunks *and* binary bytes.

    The chunk stream is byte-identical to what
    :func:`repro.wire.wrappers.encode_value` + canonical serialization
    would produce — the digest canon depends on it.  Exact scalar types
    are dispatched before the classifier runs (a plain int/str/float can
    never be a proxy or managed object), which is most of the win over
    the ElementTree path.
    """
    kind = type(value)
    if kind is _SCALAR_INT:
        parts.append(f"<int>{value}</int>")
        buf.append(VAL_INT)
        encode_varint(buf, _zigzag(value))
        return
    if kind is _SCALAR_STR:
        _emit_str(parts, buf, value)
        return
    if value is None:
        parts.append("<none/>")
        buf.append(VAL_NONE)
        return
    if kind is _SCALAR_BOOL:
        if value:
            parts.append("<true/>")
            buf.append(VAL_TRUE)
        else:
            parts.append("<false/>")
            buf.append(VAL_FALSE)
        return
    if kind is _SCALAR_FLOAT:
        parts.append(f"<float>{value!r}</float>")
        buf.append(VAL_FLOAT)
        buf += struct.pack("<d", value)
        return

    ref = classify(value)
    if ref is not None:
        ref_kind, ident = ref
        if ref_kind == "local":
            parts.append(f'<ref oid="{ident}"/>')
            buf.append(VAL_REF)
            encode_varint(buf, ident)
            return
        if ref_kind == "out":
            parts.append(f'<outref index="{ident}"/>')
            buf.append(VAL_OUTREF)
            encode_varint(buf, ident)
            return
        if ref_kind == "ext":
            attrs = sorted((key, str(val)) for key, val in ident.items())
            parts.append(
                "<extref"
                + "".join(f' {key}="{_escape_attr(val)}"' for key, val in attrs)
                + "/>"
            )
            buf.append(VAL_EXTREF)
            encode_varint(buf, len(attrs))
            for key, val in attrs:
                _put_str(buf, key)
                _put_str(buf, val)
            return
        raise CodecError(f"classifier returned unknown kind {ref_kind!r}")

    # subclass / container fallback, mirroring wrappers.encode_value order
    if isinstance(value, bool):
        _encode_value(parts, buf, bool(value), classify)
        return
    if isinstance(value, int):
        parts.append(f"<int>{value}</int>")
        buf.append(VAL_INT)
        encode_varint(buf, _zigzag(int(value)))
        return
    if isinstance(value, float):
        parts.append(f"<float>{value!r}</float>")
        buf.append(VAL_FLOAT)
        buf += struct.pack("<d", value)
        return
    if isinstance(value, str):
        _emit_str(parts, buf, str(value))
        return
    if isinstance(value, (bytes, bytearray)):
        raw = bytes(value)
        if raw:
            parts.append(
                f"<bytes>{base64.b64encode(raw).decode('ascii')}</bytes>"
            )
        else:
            parts.append("<bytes/>")
        buf.append(VAL_BYTES)
        encode_varint(buf, len(raw))
        buf += raw
        return
    if isinstance(value, list):
        _emit_sequence(parts, buf, "list", VAL_LIST, value, classify)
        return
    if isinstance(value, tuple):
        _emit_sequence(parts, buf, "tuple", VAL_TUPLE, value, classify)
        return
    if isinstance(value, frozenset):
        _emit_sequence(
            parts, buf, "fset", VAL_FSET, _stable_order(value), classify
        )
        return
    if isinstance(value, set):
        _emit_sequence(
            parts, buf, "set", VAL_SET, _stable_order(value), classify
        )
        return
    if isinstance(value, dict):
        if not value:
            parts.append("<dict/>")
        else:
            parts.append("<dict>")
        buf.append(VAL_DICT)
        encode_varint(buf, len(value))
        for key, item in value.items():
            parts.append("<entry><k>")
            _encode_value(parts, buf, key, classify)
            parts.append("</k><v>")
            _encode_value(parts, buf, item, classify)
            parts.append("</v></entry>")
        if value:
            parts.append("</dict>")
        return
    raise CodecError(
        f"cannot encode value of type {type(value).__name__}: not a managed "
        f"reference and not a supported primitive/container"
    )


def _emit_str(parts: List[str], buf: bytearray, value: str) -> None:
    if value and not _xml_safe(value):
        encoded = base64.b64encode(
            value.encode("utf-8", errors="surrogatepass")
        ).decode("ascii")
        parts.append(f'<str enc="b64">{encoded}</str>')
    elif value == "":
        parts.append('<str empty="1"/>')
    else:
        parts.append(f"<str>{_escape_text(value)}</str>")
    buf.append(VAL_STR)
    _put_str(buf, value)


def _emit_sequence(
    parts: List[str],
    buf: bytearray,
    tag: str,
    val_tag: int,
    items: Any,
    classify: Callable,
) -> None:
    items = list(items)
    buf.append(val_tag)
    encode_varint(buf, len(items))
    if not items:
        parts.append(f"<{tag}/>")
        return
    parts.append(f"<{tag}>")
    for item in items:
        _encode_value(parts, buf, item, classify)
    parts.append(f"</{tag}>")


def encode_cluster_binary(
    *,
    sid: int,
    space: str,
    epoch: int,
    objects: Dict[int, Any],
    oid_of: Callable[[Any], int],
    outbound_index_of: Callable[[Any], int],
    foreign_index_of: Callable[[Any], int] | None = None,
) -> Tuple[str, str, bytes]:
    """One-pass encode to ``(canonical_text, digest, binary_payload)``.

    A single graph walk produces the binary frames and the canonical
    text chunks together; the digest is hashed incrementally from the
    chunks exactly as :func:`~repro.wire.xmlcodec.
    encode_cluster_canonical` would, and embedded in the DIGEST frame.
    """
    from repro.runtime.classext import instance_fields

    classify = make_classifier(
        sid=sid,
        member_ids=set(objects),
        oid_of=oid_of,
        outbound_index_of=outbound_index_of,
        foreign_index_of=foreign_index_of,
    )
    text_parts: List[str] = []
    payload = bytearray(MAGIC)
    payload.append(VERSION)

    header = bytearray()
    encode_varint(header, int(sid))
    encode_varint(header, int(epoch))
    encode_varint(header, len(objects))
    _put_str(header, space)
    _frame(payload, FRAME_HEADER, bytes(header))

    attrs = sorted(
        (
            ("count", str(len(objects))),
            ("epoch", str(epoch)),
            ("sid", str(sid)),
            ("space", space),
        )
    )
    open_tag = "<swap-cluster" + "".join(
        f' {name}="{_escape_attr(val)}"' for name, val in attrs
    )
    if not objects:
        text_parts.append(open_tag + "/>")
    else:
        # identity map of the cluster's own members: a field holding a
        # member object is an intra-cluster <ref> by definition, so the
        # hot loop can emit it without consulting the classifier
        local_oids = {id(obj): oid for oid, obj in objects.items()}
        parts_append = text_parts.append
        parts_append(open_tag + ">")
        for oid in sorted(objects):
            obj = objects[oid]
            schema = getattr(type(obj), "_obi_schema", None)
            if schema is None:
                raise CodecError(
                    f"object oid={oid} of type {type(obj).__name__} is "
                    f"not @managed"
                )
            record = bytearray()
            encode_varint(record, oid)
            record += _name_bytes(schema.name)
            fields = instance_fields(obj)
            encode_varint(record, len(fields))
            if fields:
                parts_append(f'{_class_open(schema.name)}{oid}">')
                for name, value in fields.items():
                    parts_append(_field_open(name))
                    record += _name_bytes(name)
                    # exact small ints and None dominate real field
                    # populations — emit them without the dispatch call
                    if type(value) is _SCALAR_INT:
                        parts_append(f"<int>{value}</int>")
                        record.append(VAL_INT)
                        zig = (
                            (value << 1)
                            if value >= 0
                            else (((-value) << 1) - 1)
                        )
                        if zig < 0x80:
                            record.append(zig)
                        else:
                            encode_varint(record, zig)
                    elif value is None:
                        parts_append("<none/>")
                        record.append(VAL_NONE)
                    else:
                        ref_oid = local_oids.get(id(value))
                        if ref_oid is not None:
                            parts_append(f'<ref oid="{ref_oid}"/>')
                            record.append(VAL_REF)
                            if ref_oid < 0x80:
                                record.append(ref_oid)
                            else:
                                encode_varint(record, ref_oid)
                        else:
                            _encode_value(text_parts, record, value, classify)
                    parts_append("</field>")
                parts_append("</object>")
            else:
                parts_append(f'{_class_open(schema.name)}{oid}"/>')
            _frame(payload, FRAME_MEMBER, bytes(record))
        parts_append("</swap-cluster>")

    # hashing the joined text once is equivalent to (and much cheaper
    # than) chunk-incremental updates — the text is built either way
    text = "".join(text_parts)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    _frame(payload, FRAME_DIGEST, bytes.fromhex(digest))
    return text, digest, bytes(payload)


# -- decode / transcode -------------------------------------------------------


def _read_value(
    data: bytes,
    pos: int,
    parts: List[str],
    resolve: Optional[Callable[[str, Any], Any]],
) -> Tuple[Any, int]:
    """Parse one value: rebuild it (when ``resolve`` is given) and emit
    its canonical-XML chunk.  With ``resolve=None`` (pure transcode)
    reference values come back as ``None`` placeholders — only the
    canonical text matters to that caller."""
    if pos >= len(data):
        raise CodecError("truncated value in binary payload")
    tag = data[pos]
    pos += 1
    if tag == VAL_INT:
        raw, pos = decode_varint(data, pos)
        value = _unzigzag(raw)
        parts.append(f"<int>{value}</int>")
        return value, pos
    if tag == VAL_STR:
        value, pos = _get_str(data, pos)
        if value and not _xml_safe(value):
            encoded = base64.b64encode(
                value.encode("utf-8", errors="surrogatepass")
            ).decode("ascii")
            parts.append(f'<str enc="b64">{encoded}</str>')
        elif value == "":
            parts.append('<str empty="1"/>')
        else:
            parts.append(f"<str>{_escape_text(value)}</str>")
        return value, pos
    if tag == VAL_REF:
        oid, pos = decode_varint(data, pos)
        parts.append(f'<ref oid="{oid}"/>')
        return (resolve("local", oid) if resolve is not None else None), pos
    if tag == VAL_OUTREF:
        index, pos = decode_varint(data, pos)
        parts.append(f'<outref index="{index}"/>')
        return (resolve("out", index) if resolve is not None else None), pos
    if tag == VAL_NONE:
        parts.append("<none/>")
        return None, pos
    if tag == VAL_TRUE:
        parts.append("<true/>")
        return True, pos
    if tag == VAL_FALSE:
        parts.append("<false/>")
        return False, pos
    if tag == VAL_FLOAT:
        end = pos + 8
        if end > len(data):
            raise CodecError("truncated float in binary payload")
        value = struct.unpack("<d", data[pos:end])[0]
        parts.append(f"<float>{value!r}</float>")
        return value, end
    if tag == VAL_BYTES:
        length, pos = decode_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated bytes in binary payload")
        raw = data[pos:end]
        if raw:
            parts.append(
                f"<bytes>{base64.b64encode(raw).decode('ascii')}</bytes>"
            )
        else:
            parts.append("<bytes/>")
        return raw, end
    if tag in (VAL_LIST, VAL_TUPLE, VAL_SET, VAL_FSET):
        name = {
            VAL_LIST: "list",
            VAL_TUPLE: "tuple",
            VAL_SET: "set",
            VAL_FSET: "fset",
        }[tag]
        count, pos = decode_varint(data, pos)
        if count == 0:
            parts.append(f"<{name}/>")
            items: List[Any] = []
        else:
            parts.append(f"<{name}>")
            items = []
            for _ in range(count):
                item, pos = _read_value(data, pos, parts, resolve)
                items.append(item)
            parts.append(f"</{name}>")
        if tag == VAL_LIST:
            return items, pos
        if tag == VAL_TUPLE:
            return tuple(items), pos
        if tag == VAL_SET:
            return set(items), pos
        return frozenset(items), pos
    if tag == VAL_DICT:
        count, pos = decode_varint(data, pos)
        if count == 0:
            parts.append("<dict/>")
            return {}, pos
        parts.append("<dict>")
        result: Dict[Any, Any] = {}
        for _ in range(count):
            parts.append("<entry><k>")
            key, pos = _read_value(data, pos, parts, resolve)
            parts.append("</k><v>")
            item, pos = _read_value(data, pos, parts, resolve)
            parts.append("</v></entry>")
            if resolve is not None:
                result[key] = item
        parts.append("</dict>")
        return result, pos
    if tag == VAL_EXTREF:
        count, pos = decode_varint(data, pos)
        attrs: List[Tuple[str, str]] = []
        for _ in range(count):
            key, pos = _get_str(data, pos)
            val, pos = _get_str(data, pos)
            attrs.append((key, val))
        parts.append(
            "<extref"
            + "".join(f' {key}="{_escape_attr(val)}"' for key, val in attrs)
            + "/>"
        )
        return (
            resolve("ext", dict(attrs)) if resolve is not None else None
        ), pos
    raise CodecError(f"unknown binary value tag 0x{tag:02x}")


def _split_frames(data: bytes) -> List[Tuple[int, int, int]]:
    """Validate the envelope; returns ``[(tag, body_start, body_end)]``."""
    if len(data) < len(MAGIC) + 1 or data[: len(MAGIC)] != MAGIC:
        raise CodecError("not a binary swap payload (bad magic)")
    version = data[len(MAGIC)]
    if version != VERSION:
        raise CodecError(
            f"unsupported binary payload version {version} "
            f"(this codec speaks {VERSION})"
        )
    frames: List[Tuple[int, int, int]] = []
    pos = len(MAGIC) + 1
    length = len(data)
    while pos < length:
        tag = data[pos]
        pos += 1
        body_len, pos = decode_varint(data, pos)
        end = pos + body_len
        if end > length:
            raise CodecError("truncated frame in binary payload")
        frames.append((tag, pos, end))
        pos = end
    return frames


def _parse_cluster(
    data: bytes,
    *,
    registry: Any = None,
    resolve_out: Callable[[int], Any] | None = None,
    resolve_extern: Callable[[Dict[str, str]], Any] | None = None,
    build: bool,
) -> Tuple[Optional[ClusterDocument], str, str]:
    """Shared frame walk behind decode and transcode.

    With ``build=True`` instances are allocated (two passes, so circular
    intra-cluster references resolve) and filled; with ``build=False``
    only the canonical text is re-derived.  Either way the embedded
    DIGEST frame is checked against the re-derived canonical digest —
    a corrupt frame cannot produce a "verified" document.
    """
    frames = _split_frames(data)
    if not frames or frames[0][0] != FRAME_HEADER:
        raise CodecError("binary payload does not start with a HEADER frame")
    htag, hstart, hend = frames[0]
    pos = hstart
    sid, pos = decode_varint(data, pos)
    epoch, pos = decode_varint(data, pos)
    count, pos = decode_varint(data, pos)
    space, pos = _get_str(data, pos)
    if pos > hend:
        raise CodecError("overlong HEADER frame in binary payload")

    members = [frame for frame in frames[1:] if frame[0] == FRAME_MEMBER]
    digests = [frame for frame in frames[1:] if frame[0] == FRAME_DIGEST]
    for tag, _start, _end in frames[1:]:
        if tag not in (FRAME_MEMBER, FRAME_DIGEST):
            raise CodecError(
                f"unexpected frame tag 0x{tag:02x} in swap-cluster payload"
            )
    if len(digests) != 1:
        raise CodecError("binary payload must carry exactly one DIGEST frame")
    dstart, dend = digests[0][1], digests[0][2]
    if dend - dstart != 32:
        raise CodecError("malformed DIGEST frame (expected 32 bytes)")
    embedded_digest = data[dstart:dend].hex()
    if count != len(members):
        raise CodecError(
            f"swap-cluster {sid}: header says {count} objects, payload "
            f"holds {len(members)}"
        )

    # single prefix pass: parse each member's oid/class/field-count once
    # (the allocation pass and the text pass both need them), allocating
    # hollow instances as we go so circular intra-cluster refs resolve
    if build and registry is None:
        raise CodecError("decode requires a type registry")
    instances: Dict[int, Any] = {}
    prefixes: List[Tuple[int, str, int, int, int]] = []
    classes: Dict[str, Any] = {}
    try:
        for _tag, start, end in members:
            mpos = start
            oid = data[mpos]
            if oid < 0x80:
                mpos += 1
            else:
                oid, mpos = decode_varint(data, mpos)
            nlen = data[mpos]
            if nlen < 0x80:
                nend = mpos + 1 + nlen
                raw_name = data[mpos + 1 : nend]
                cached = _NAME_DECODE_CACHE.get(raw_name)
                if cached is None:
                    if len(_NAME_DECODE_CACHE) > 4096:
                        _NAME_DECODE_CACHE.clear()
                    class_name, _ignored = _get_str(data, mpos)
                    cached = _NAME_DECODE_CACHE[raw_name] = (
                        class_name,
                        _field_open(class_name),
                    )
                class_name = cached[0]
                mpos = nend
            else:
                class_name, mpos = _get_str(data, mpos)
            nfields = data[mpos]
            if nfields < 0x80:
                mpos += 1
            else:
                nfields, mpos = decode_varint(data, mpos)
            prefixes.append((oid, class_name, nfields, mpos, end))
            if build:
                cls = classes.get(class_name)
                if cls is None:
                    cls = classes[class_name] = registry.resolve(class_name)
                instances[oid] = object.__new__(cls)
    except IndexError:
        raise CodecError("truncated member frame in binary payload") from None

    def resolve(kind: str, ident: Any) -> Any:
        if kind == "local":
            try:
                return instances[ident]
            except KeyError:
                raise CodecError(
                    f"dangling intra-cluster reference oid={ident}"
                ) from None
        if kind == "ext":
            if resolve_extern is None:
                raise CodecError(
                    "document contains <extref> but no extern resolver is "
                    "installed (is a replicator attached to this space?)"
                )
            return resolve_extern(ident)
        assert resolve_out is not None
        return resolve_out(ident)

    resolver = resolve if build else None
    attrs = sorted(
        (
            ("count", str(count)),
            ("epoch", str(epoch)),
            ("sid", str(sid)),
            ("space", space),
        )
    )
    open_tag = "<swap-cluster" + "".join(
        f' {name}="{_escape_attr(val)}"' for name, val in attrs
    )
    text_parts: List[str] = []
    parts_append = text_parts.append
    if not members:
        parts_append(open_tag + "/>")
    else:
        parts_append(open_tag + ">")
        try:
            for oid, class_name, nfields, mpos, end in prefixes:
                if nfields == 0:
                    parts_append(f'{_class_open(class_name)}{oid}"/>')
                else:
                    parts_append(f'{_class_open(class_name)}{oid}">')
                    instance = instances.get(oid) if build else None
                    # plain instance dicts take direct stores; classes
                    # with __slots__ fall back to object.__setattr__
                    idict = getattr(instance, "__dict__", None)
                    for _ in range(nfields):
                        # the per-field work below is _get_str +
                        # _read_value with the dominant cases (short
                        # names; int/ref/none values) inlined — profiled
                        # call overhead was most of decode wall time
                        nlen = data[mpos]
                        if nlen < 0x80:
                            nend = mpos + 1 + nlen
                            raw_name = data[mpos + 1 : nend]
                            cached = _NAME_DECODE_CACHE.get(raw_name)
                            if cached is None:
                                if len(_NAME_DECODE_CACHE) > 4096:
                                    _NAME_DECODE_CACHE.clear()
                                name, _ignored = _get_str(data, mpos)
                                cached = _NAME_DECODE_CACHE[raw_name] = (
                                    name,
                                    _field_open(name),
                                )
                            name, field_tag = cached
                            mpos = nend
                        else:
                            name, mpos = _get_str(data, mpos)
                            field_tag = _field_open(name)
                        parts_append(field_tag)
                        vtag = data[mpos]
                        if vtag == VAL_INT:
                            raw = data[mpos + 1]
                            if raw < 0x80:
                                mpos += 2
                            else:
                                raw, mpos = decode_varint(data, mpos + 1)
                            value = (
                                (raw >> 1)
                                if not (raw & 1)
                                else -((raw + 1) >> 1)
                            )
                            parts_append(f"<int>{value}</int>")
                        elif vtag == VAL_REF:
                            ref = data[mpos + 1]
                            if ref < 0x80:
                                mpos += 2
                            else:
                                ref, mpos = decode_varint(data, mpos + 1)
                            parts_append(f'<ref oid="{ref}"/>')
                            if build:
                                value = instances.get(ref)
                                if value is None:
                                    raise CodecError(
                                        "dangling intra-cluster reference "
                                        f"oid={ref}"
                                    )
                            else:
                                value = None
                        elif vtag == VAL_NONE:
                            mpos += 1
                            parts_append("<none/>")
                            value = None
                        else:
                            value, mpos = _read_value(
                                data, mpos, text_parts, resolver
                            )
                        parts_append("</field>")
                        if idict is not None:
                            idict[name] = value
                        elif instance is not None:
                            object.__setattr__(instance, name, value)
                    parts_append("</object>")
                if mpos != end:
                    raise CodecError(
                        f"malformed MEMBER frame for oid={oid} "
                        f"({end - mpos} trailing bytes)"
                    )
        except IndexError:
            raise CodecError(
                "truncated member frame in binary payload"
            ) from None
        parts_append("</swap-cluster>")

    # single join + single hash: equivalent to chunk-incremental updates
    text = "".join(text_parts)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    if digest != embedded_digest:
        raise CodecError(
            f"binary payload failed the canonical-digest check "
            f"(frames re-derive {digest[:12]}…, embedded "
            f"{embedded_digest[:12]}… — corrupt frames)"
        )
    document = (
        ClusterDocument(sid=sid, space=space, epoch=epoch, objects=instances)
        if build
        else None
    )
    return document, text, digest


def decode_cluster_binary(
    data: bytes,
    *,
    registry: Any,
    resolve_out: Callable[[int], Any],
    resolve_extern: Callable[[Dict[str, str]], Any] | None = None,
) -> Tuple[ClusterDocument, str, str]:
    """Rebuild a swap-cluster from binary frames in one pass.

    Returns ``(document, canonical_text, canonical_digest)``: the digest
    is re-derived from the frames (and checked against the embedded
    DIGEST frame), so the caller can compare it with the trusted
    location digest exactly as on the XML path — integrity semantics are
    identical, only the CPU cost is not.
    """
    document, text, digest = _parse_cluster(
        data,
        registry=registry,
        resolve_out=resolve_out,
        resolve_extern=resolve_extern,
        build=True,
    )
    assert document is not None
    return document, text, digest


def binary_to_canonical(data: bytes) -> Tuple[str, str]:
    """Transcode binary frames back to ``(canonical_text, digest)``.

    Needs no type registry and builds no instances — this is what a
    dumb store uses to answer ``fetch``/``digest`` probes for a payload
    it holds as frames.  Raises :class:`~repro.errors.CodecError` when
    the frames are corrupt (embedded digest mismatch included).
    """
    _document, text, digest = _parse_cluster(data, build=False)
    return text, digest


# -- delta wrapper ------------------------------------------------------------


def encode_delta_binary(delta_text: str) -> bytes:
    """Wrap a canonical ``<swap-delta>`` document in binary framing.

    Deltas are small by design, so they keep their canonical text as the
    BODY frame; the framing adds the same end-to-end integrity (DIGEST
    over the canonical form) the full-payload codec has.
    """
    body = delta_text.encode("utf-8")
    payload = bytearray(MAGIC)
    payload.append(VERSION)
    _frame(payload, FRAME_DIGEST, hashlib.sha256(body).digest())
    _frame(payload, FRAME_BODY, body)
    return bytes(payload)


def decode_delta_binary(data: bytes) -> str:
    """Unwrap :func:`encode_delta_binary`; verifies the digest frame."""
    frames = _split_frames(data)
    tags = [tag for tag, _start, _end in frames]
    if tags != [FRAME_DIGEST, FRAME_BODY]:
        raise CodecError(
            "malformed binary delta payload (expected DIGEST + BODY frames)"
        )
    dstart, dend = frames[0][1], frames[0][2]
    if dend - dstart != 32:
        raise CodecError("malformed DIGEST frame (expected 32 bytes)")
    body = data[frames[1][1] : frames[1][2]]
    if hashlib.sha256(body).digest() != data[dstart:dend]:
        raise CodecError(
            "binary delta payload failed the digest check (corrupt frames)"
        )
    try:
        return body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"undecodable delta body: {exc}") from exc
