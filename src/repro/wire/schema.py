"""Structural validation of swap-cluster documents.

Swapped state lives on *dumb* devices: anything could come back.  The
digest check catches bit-rot; this validator catches well-formed XML
that is nevertheless not a legal swap-cluster document (truncated
conversions, foreign documents returned under our key, hand-edited
archives) with precise diagnostics, before decode attempts object
construction.
"""

from __future__ import annotations

from typing import List, Set
from xml.etree import ElementTree as ET

from repro.errors import CodecError

#: Value tags the wire format defines (see repro.wire.wrappers).
VALUE_TAGS = frozenset(
    {
        "none", "true", "false", "int", "float", "str", "bytes",
        "list", "tuple", "set", "fset", "dict",
        "ref", "outref", "extref",
    }
)

_INT_ATTRS = {
    "swap-cluster": ("sid", "epoch", "count"),
    "object": ("oid",),
    "ref": ("oid",),
    "outref": ("index",),
}


def validate_cluster_text(xml_text: str) -> List[str]:
    """Return a list of problems (empty when the document is valid)."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        return [f"not well-formed XML: {exc}"]
    return validate_cluster_element(root)


def validate_cluster_element(root: ET.Element) -> List[str]:
    problems: List[str] = []
    if root.tag != "swap-cluster":
        return [f"root element is <{root.tag}>, expected <swap-cluster>"]
    _check_int_attrs(root, "swap-cluster", problems)
    if root.get("space") is None:
        problems.append("<swap-cluster> missing space attribute")

    seen_oids: Set[str] = set()
    object_count = 0
    for obj_el in root:
        if obj_el.tag != "object":
            problems.append(
                f"unexpected <{obj_el.tag}> inside <swap-cluster>"
            )
            continue
        object_count += 1
        _check_int_attrs(obj_el, "object", problems)
        oid = obj_el.get("oid")
        if oid in seen_oids:
            problems.append(f"duplicate object oid={oid}")
        elif oid is not None:
            seen_oids.add(oid)
        if not obj_el.get("class"):
            problems.append(f"object oid={oid} missing class attribute")
        seen_fields: Set[str] = set()
        for field_el in obj_el:
            if field_el.tag != "field":
                problems.append(
                    f"object oid={oid}: unexpected <{field_el.tag}>"
                )
                continue
            name = field_el.get("name")
            if not name:
                problems.append(f"object oid={oid}: <field> without name")
            elif name in seen_fields:
                problems.append(f"object oid={oid}: duplicate field {name!r}")
            else:
                seen_fields.add(name)
            if len(field_el) != 1:
                problems.append(
                    f"object oid={oid}.{name}: field must hold exactly one "
                    f"value element, found {len(field_el)}"
                )
                continue
            _check_value(field_el[0], f"oid={oid}.{name}", problems)

    declared = root.get("count")
    if declared is not None and declared.isdigit() and int(declared) != object_count:
        problems.append(
            f"count attribute says {declared}, document holds {object_count}"
        )
    return problems


def ensure_valid_cluster(xml_text: str) -> None:
    """Raise :class:`CodecError` with every problem when invalid."""
    problems = validate_cluster_text(xml_text)
    if problems:
        raise CodecError(
            "invalid swap-cluster document: " + "; ".join(problems)
        )


def _check_int_attrs(element: ET.Element, kind: str, problems: List[str]) -> None:
    for attr in _INT_ATTRS.get(kind, ()):
        value = element.get(attr)
        if value is None:
            problems.append(f"<{kind}> missing {attr} attribute")
        else:
            try:
                int(value)
            except ValueError:
                problems.append(f"<{kind}> {attr}={value!r} is not an integer")


def _check_value(element: ET.Element, where: str, problems: List[str]) -> None:
    tag = element.tag
    if tag not in VALUE_TAGS:
        problems.append(f"{where}: unknown value tag <{tag}>")
        return
    if tag in ("ref", "outref"):
        _check_int_attrs(element, tag, problems)
        return
    if tag == "extref":
        for attr in ("cid", "soid"):
            if element.get(attr) is None:
                problems.append(f"{where}: <extref> missing {attr}")
        return
    if tag in ("int", "float"):
        text = element.text or ""
        try:
            float(text) if tag == "float" else int(text)
        except ValueError:
            problems.append(f"{where}: <{tag}> holds non-numeric {text!r}")
        return
    if tag in ("list", "tuple", "set", "fset"):
        for child in element:
            _check_value(child, where + "[]", problems)
        return
    if tag == "dict":
        for entry in element:
            if entry.tag != "entry" or len(entry) != 2:
                problems.append(f"{where}: malformed <dict> entry")
                continue
            key_holder, value_holder = entry
            if key_holder.tag != "k" or value_holder.tag != "v" or len(
                key_holder
            ) != 1 or len(value_holder) != 1:
                problems.append(f"{where}: malformed <dict> entry structure")
                continue
            _check_value(key_holder[0], where + ".key", problems)
            _check_value(value_holder[0], where + ".value", problems)
