"""Value wrapping: Python values ⇄ XML elements.

OBIWAN's communication services perform "automatic conversion of objects
into wrappers, using XML" (paper, Section 2).  This module is the value
layer: scalars, containers, and the two reference kinds.  References are
delegated to a *classifier* callback supplied by the cluster codec so the
value layer stays independent of the swapping core.

Wire tags::

    <none/> <true/> <false/>
    <int>42</int> <float>1.5</float> <str>text</str> <bytes>b64</bytes>
    <list>…</list> <tuple>…</tuple> <set>…</set> <fset>…</fset>
    <dict><entry><k>…</k><v>…</v></entry>…</dict>
    <ref oid="7"/>           intra-cluster reference
    <outref index="2"/>      outbound reference (replacement-array slot)
    <extref cid=… soid=…/>   external reference (unreplicated frontier)
"""

from __future__ import annotations

import base64
import re
from typing import Any, Callable, Optional
from xml.etree import ElementTree as ET

from repro.errors import CodecError

# XML 1.0 cannot carry most control characters at all, and any compliant
# parser normalizes \r / \r\n to \n in text content — both would corrupt
# a swap cycle.  Strings outside the safe set travel base64-encoded
# (enc="b64"); lone surrogates are preserved via surrogatepass.
_XML_SAFE_TEXT = re.compile(
    "^[\x09\x0a\x20-퟿-�\U00010000-\U0010ffff]*$"
)


def _xml_safe(text: str) -> bool:
    return _XML_SAFE_TEXT.match(text) is not None

# A classifier maps a value to ("local", oid) | ("out", index) | None.
# None means "not a reference, encode as a plain value".
Classifier = Callable[[Any], Optional[tuple]]

# A resolver maps ("local", oid) / ("out", index) back to live objects.
Resolver = Callable[[str, int], Any]


def encode_value(value: Any, classify: Classifier) -> ET.Element:
    """Encode one Python value into an XML element."""
    ref = classify(value)
    if ref is not None:
        kind, ident = ref
        if kind == "local":
            return ET.Element("ref", {"oid": str(ident)})
        if kind == "out":
            return ET.Element("outref", {"index": str(ident)})
        if kind == "ext":
            return ET.Element(
                "extref", {key: str(val) for key, val in ident.items()}
            )
        raise CodecError(f"classifier returned unknown kind {kind!r}")

    if value is None:
        return ET.Element("none")
    if value is True:
        return ET.Element("true")
    if value is False:
        return ET.Element("false")
    if isinstance(value, int):
        element = ET.Element("int")
        element.text = str(value)
        return element
    if isinstance(value, float):
        element = ET.Element("float")
        element.text = repr(value)
        return element
    if isinstance(value, str):
        element = ET.Element("str")
        if value and not _xml_safe(value):
            element.set("enc", "b64")
            element.text = base64.b64encode(
                value.encode("utf-8", errors="surrogatepass")
            ).decode("ascii")
            return element
        element.text = value
        # ElementTree drops the distinction between "" and no text
        if value == "":
            element.set("empty", "1")
        return element
    if isinstance(value, (bytes, bytearray)):
        element = ET.Element("bytes")
        element.text = base64.b64encode(bytes(value)).decode("ascii")
        return element
    if isinstance(value, list):
        return _encode_sequence("list", value, classify)
    if isinstance(value, tuple):
        return _encode_sequence("tuple", value, classify)
    if isinstance(value, set):
        return _encode_sequence("set", _stable_order(value), classify)
    if isinstance(value, frozenset):
        return _encode_sequence("fset", _stable_order(value), classify)
    if isinstance(value, dict):
        element = ET.Element("dict")
        for key, item in value.items():
            entry = ET.SubElement(element, "entry")
            key_el = ET.SubElement(entry, "k")
            key_el.append(encode_value(key, classify))
            value_el = ET.SubElement(entry, "v")
            value_el.append(encode_value(item, classify))
        return element
    raise CodecError(
        f"cannot encode value of type {type(value).__name__}: not a managed "
        f"reference and not a supported primitive/container"
    )


def decode_value(element: ET.Element, resolve: Resolver) -> Any:
    """Decode one XML element back into a Python value."""
    tag = element.tag
    if tag == "ref":
        return resolve("local", int(element.get("oid")))
    if tag == "outref":
        return resolve("out", int(element.get("index")))
    if tag == "extref":
        return resolve("ext", dict(element.attrib))
    if tag == "none":
        return None
    if tag == "true":
        return True
    if tag == "false":
        return False
    if tag == "int":
        return int(element.text or "0")
    if tag == "float":
        return float(element.text or "0")
    if tag == "str":
        if element.get("enc") == "b64":
            return base64.b64decode(element.text or "").decode(
                "utf-8", errors="surrogatepass"
            )
        if element.get("empty") == "1":
            return ""
        return element.text if element.text is not None else ""
    if tag == "bytes":
        return base64.b64decode(element.text or "")
    if tag == "list":
        return [decode_value(child, resolve) for child in element]
    if tag == "tuple":
        return tuple(decode_value(child, resolve) for child in element)
    if tag == "set":
        return {decode_value(child, resolve) for child in element}
    if tag == "fset":
        return frozenset(decode_value(child, resolve) for child in element)
    if tag == "dict":
        result = {}
        for entry in element:
            if entry.tag != "entry" or len(entry) != 2:
                raise CodecError("malformed <dict> entry")
            key = decode_value(entry[0][0], resolve)
            value = decode_value(entry[1][0], resolve)
            result[key] = value
        return result
    raise CodecError(f"unknown wire tag <{tag}>")


def _encode_sequence(tag: str, items: Any, classify: Classifier) -> ET.Element:
    element = ET.Element(tag)
    for item in items:
        element.append(encode_value(item, classify))
    return element


def _stable_order(items: Any) -> list:
    """Deterministic ordering for sets so encodings are reproducible."""
    try:
        return sorted(items, key=repr)
    except TypeError:
        return list(items)
