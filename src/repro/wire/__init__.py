"""XML wire format for swapped object state.

The defining portability property of the paper is that swapped state is
plain XML text: "the receiving device needs no other infrastructure ...
other than being able to receive XML data and store it".  This package
implements the object-graph ⇄ XML codec:

* :mod:`repro.wire.wrappers` — scalar/container value encoding;
* :mod:`repro.wire.xmlcodec` — whole swap-cluster encoding, with
  intra-cluster references by oid and outbound references as indexes into
  the cluster's replacement-object array;
* :mod:`repro.wire.canonical` — canonical text + digests for
  store-and-return integrity checks;
* :mod:`repro.wire.binary` — the negotiated length-prefixed binary
  framing (digests stay over canonical XML; see
  ``docs/PROTOCOL.md`` §1f).
"""

from repro.wire.xmlcodec import (
    ClusterDocument,
    OutRef,
    LocalRef,
    encode_cluster,
    encode_cluster_canonical,
    encode_cluster_stream,
    decode_cluster,
)
from repro.wire.delta import (
    apply_cluster_delta,
    encode_cluster_delta,
    encode_cluster_delta_stream,
)
from repro.wire.wrappers import encode_value, decode_value
from repro.wire.canonical import (
    canonical_text,
    digest_of_canonical,
    element_digest,
    payload_digest,
    verify_payload,
)
from repro.wire.schema import (
    ensure_valid_cluster,
    validate_cluster_text,
    VALUE_TAGS,
)
from repro.wire.binary import (
    binary_to_canonical,
    decode_cluster_binary,
    decode_delta_binary,
    encode_cluster_binary,
    encode_delta_binary,
)

__all__ = [
    "ClusterDocument",
    "OutRef",
    "LocalRef",
    "encode_cluster",
    "encode_cluster_canonical",
    "encode_cluster_stream",
    "decode_cluster",
    "encode_cluster_delta",
    "encode_cluster_delta_stream",
    "apply_cluster_delta",
    "encode_value",
    "decode_value",
    "canonical_text",
    "digest_of_canonical",
    "element_digest",
    "payload_digest",
    "verify_payload",
    "ensure_valid_cluster",
    "validate_cluster_text",
    "VALUE_TAGS",
    "encode_cluster_binary",
    "decode_cluster_binary",
    "binary_to_canonical",
    "encode_delta_binary",
    "decode_delta_binary",
]
