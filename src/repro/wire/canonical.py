"""Canonical XML text and payload digests.

Swapping devices are *dumb stores*: the protocol is store/return/drop of
opaque text.  To detect a store returning corrupted or stale text, the
swap location record kept on the mobile device includes a digest of the
canonical payload; swap-in verifies it before deserializing.
"""

from __future__ import annotations

import hashlib
from xml.etree import ElementTree as ET

from repro.errors import CodecError


def canonical_text(xml_text: str) -> str:
    """Normalize an XML document to a canonical single-line form.

    Strips inter-element whitespace and re-serializes with deterministic
    attribute order (sorted), so semantically equal documents compare
    equal as strings.
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise CodecError(f"cannot canonicalize malformed XML: {exc}") from exc
    _strip_whitespace(root)
    return _serialize(root)


def payload_digest(xml_text: str) -> str:
    """Stable hex digest of the canonical form of ``xml_text``."""
    return hashlib.sha256(canonical_text(xml_text).encode("utf-8")).hexdigest()


def digest_of_canonical(canonical: str) -> str:
    """Digest of text that is *already* canonical (no parse, no re-serialize).

    The streaming encoder (:func:`repro.wire.xmlcodec.encode_cluster_stream`)
    emits canonical text directly, so its digest is a single raw hash —
    this is the fast-path counterpart of :func:`payload_digest`.
    """
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def element_digest(element: ET.Element) -> str:
    """Digest of an element tree without the serialize/parse round trip.

    Strips insignificant whitespace in place (idempotent, semantics-
    preserving), then hashes the canonical serialization.
    """
    _strip_whitespace(element)
    return hashlib.sha256(_serialize(element).encode("utf-8")).hexdigest()


def verify_payload(xml_text: str, expected_digest: str) -> bool:
    """Check ``xml_text`` against ``expected_digest``, cheaply when possible.

    Payloads produced by the one-pass encoder are already canonical, so a
    raw hash usually matches outright; only foreign/pretty-printed text
    pays for the full canonicalization pass.
    """
    if digest_of_canonical(xml_text) == expected_digest:
        return True
    try:
        return payload_digest(xml_text) == expected_digest
    except CodecError:
        return False


def canonical_open_tag(tag: str, attrib: dict) -> str:
    """Open tag with canonical (sorted) attribute order.

    Lets streaming encoders emit a document's root incrementally while
    staying byte-identical to :func:`canonical_text` of the full text.
    """
    attributes = "".join(
        f' {name}="{_escape_attr(value)}"' for name, value in sorted(attrib.items())
    )
    return f"<{tag}{attributes}>"


def serialize_element(element: ET.Element) -> str:
    """Serialize one element in canonical form (sorted attributes).

    Public entry point for encoders that build canonical documents
    incrementally; ``canonical_text(serialize_element(e))`` is the
    identity for whitespace-free trees.
    """
    return _serialize(element)


def _strip_whitespace(element: ET.Element) -> None:
    if element.text is not None and not element.text.strip() and len(element):
        element.text = None
    if element.tail is not None and not element.tail.strip():
        element.tail = None
    for child in element:
        _strip_whitespace(child)


def _serialize(element: ET.Element) -> str:
    attributes = "".join(
        f' {name}="{_escape_attr(value)}"'
        for name, value in sorted(element.attrib.items())
    )
    children = "".join(_serialize(child) for child in element)
    text = _escape_text(element.text) if element.text else ""
    if not children and not text:
        return f"<{element.tag}{attributes}/>"
    return f"<{element.tag}{attributes}>{text}{children}</{element.tag}>"


def _escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")
