"""Canonical XML text and payload digests.

Swapping devices are *dumb stores*: the protocol is store/return/drop of
opaque text.  To detect a store returning corrupted or stale text, the
swap location record kept on the mobile device includes a digest of the
canonical payload; swap-in verifies it before deserializing.
"""

from __future__ import annotations

import hashlib
from xml.etree import ElementTree as ET

from repro.errors import CodecError


def canonical_text(xml_text: str) -> str:
    """Normalize an XML document to a canonical single-line form.

    Strips inter-element whitespace and re-serializes with deterministic
    attribute order (sorted), so semantically equal documents compare
    equal as strings.
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise CodecError(f"cannot canonicalize malformed XML: {exc}") from exc
    _strip_whitespace(root)
    return _serialize(root)


def payload_digest(xml_text: str) -> str:
    """Stable hex digest of the canonical form of ``xml_text``."""
    return hashlib.sha256(canonical_text(xml_text).encode("utf-8")).hexdigest()


def _strip_whitespace(element: ET.Element) -> None:
    if element.text is not None and not element.text.strip() and len(element):
        element.text = None
    if element.tail is not None and not element.tail.strip():
        element.tail = None
    for child in element:
        _strip_whitespace(child)


def _serialize(element: ET.Element) -> str:
    attributes = "".join(
        f' {name}="{_escape_attr(value)}"'
        for name, value in sorted(element.attrib.items())
    )
    children = "".join(_serialize(child) for child in element)
    text = _escape_text(element.text) if element.text else ""
    if not children and not text:
        return f"<{element.tag}{attributes}/>"
    return f"<{element.tag}{attributes}>{text}{children}</{element.tag}>"


def _escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")
