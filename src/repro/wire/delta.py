"""Object-granular delta documents for the swap wire format.

A swap-cluster whose staleness is fully attributed — a known base
payload plus a concrete set of mutated and collected members — can ship
a *delta* instead of re-serializing all of its objects::

    <swap-delta base-epoch="4" count="2" dead="1" epoch="5" sid="3" space="pda">
      <object oid="17" class="ListNode">…</object>
      <object oid="23" class="ListNode">…</object>
      <tombstone oid="9"/>
    </swap-delta>

``base-epoch`` names the payload the delta applies to; ``<object>``
elements replace the member of the same oid in the base, ``<tombstone>``
elements remove collected members.  The document is canonical text (same
conventions as ``<swap-cluster>``: sorted attributes, objects then
tombstones each in oid order), so its digest is a single raw hash and
:func:`repro.wire.canonical.verify_payload` accepts it unchanged.

:func:`apply_cluster_delta` folds a delta into its base and returns the
full canonical ``<swap-cluster>`` document for the new epoch — byte-
identical to what a full encode of the mutated cluster would have
produced, so digests, :func:`~repro.wire.canonical.verify_payload`, and
:func:`~repro.wire.xmlcodec.decode_cluster` all work on the applied
text with no delta-awareness downstream.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, Iterable, Iterator, Set, Tuple
from xml.etree import ElementTree as ET

from repro.errors import CodecError
from repro.wire.canonical import (
    canonical_open_tag,
    serialize_element,
    _strip_whitespace,
)
from repro.wire.xmlcodec import encode_object_element, make_classifier

__all__ = [
    "encode_cluster_delta",
    "encode_cluster_delta_stream",
    "apply_cluster_delta",
]


def encode_cluster_delta_stream(
    *,
    sid: int,
    space: str,
    base_epoch: int,
    epoch: int,
    objects: Dict[int, Any],
    dead_oids: Iterable[int],
    member_oids: Set[int],
    oid_of: Callable[[Any], int],
    outbound_index_of: Callable[[Any], int],
    foreign_index_of: Callable[[Any], int] | None = None,
) -> Iterator[str]:
    """Yield the canonical delta document in chunks.

    ``objects`` maps oid -> mutated member instance; ``dead_oids`` are
    members collected since the base payload (oids also present in
    ``objects`` are dropped — a member cannot be both re-shipped and
    tombstoned).  ``member_oids`` is the cluster's *full* current
    membership, so references from a re-shipped object to an unchanged
    member still serialize as intra-cluster ``<ref>``s.
    """
    classify = make_classifier(
        sid=sid,
        member_ids=set(member_oids),
        oid_of=oid_of,
        outbound_index_of=outbound_index_of,
        foreign_index_of=foreign_index_of,
    )
    tombstones = sorted(set(dead_oids) - set(objects))
    attrib = {
        "sid": str(sid),
        "space": space,
        "base-epoch": str(base_epoch),
        "epoch": str(epoch),
        "count": str(len(objects)),
        "dead": str(len(tombstones)),
    }
    if not objects and not tombstones:
        yield canonical_open_tag("swap-delta", attrib)[:-1] + "/>"
        return
    yield canonical_open_tag("swap-delta", attrib)
    for oid in sorted(objects):
        yield encode_object_element(oid, objects[oid], classify)
    for oid in tombstones:
        yield f'<tombstone oid="{oid}"/>'
    yield "</swap-delta>"


def encode_cluster_delta(
    *,
    sid: int,
    space: str,
    base_epoch: int,
    epoch: int,
    objects: Dict[int, Any],
    dead_oids: Iterable[int],
    member_oids: Set[int],
    oid_of: Callable[[Any], int],
    outbound_index_of: Callable[[Any], int],
    foreign_index_of: Callable[[Any], int] | None = None,
) -> Tuple[str, str]:
    """One-pass delta encode: canonical text plus its incremental digest."""
    hasher = hashlib.sha256()
    parts = []
    for chunk in encode_cluster_delta_stream(
        sid=sid,
        space=space,
        base_epoch=base_epoch,
        epoch=epoch,
        objects=objects,
        dead_oids=dead_oids,
        member_oids=member_oids,
        oid_of=oid_of,
        outbound_index_of=outbound_index_of,
        foreign_index_of=foreign_index_of,
    ):
        hasher.update(chunk.encode("utf-8"))
        parts.append(chunk)
    return "".join(parts), hasher.hexdigest()


def _parse(xml_text: str, expected_tag: str) -> ET.Element:
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise CodecError(f"malformed {expected_tag} XML: {exc}") from exc
    if root.tag != expected_tag:
        raise CodecError(f"expected <{expected_tag}>, got <{root.tag}>")
    _strip_whitespace(root)
    return root


def apply_cluster_delta(base_text: str, delta_text: str) -> str:
    """Fold a delta into its base payload; return the new full document.

    Raises :class:`~repro.errors.CodecError` when the delta does not
    apply — wrong sid/space, a ``base-epoch`` that does not match the
    base document's epoch (a diverged replica must receive a full
    payload instead), or malformed/miscounted content.
    """
    base = _parse(base_text, "swap-cluster")
    delta = _parse(delta_text, "swap-delta")

    if base.get("sid") != delta.get("sid") or base.get("space") != delta.get(
        "space"
    ):
        raise CodecError(
            f"delta for sid={delta.get('sid')} space={delta.get('space')!r} "
            f"does not belong to payload sid={base.get('sid')} "
            f"space={base.get('space')!r}"
        )
    base_epoch = int(base.get("epoch", "0"))
    declared_base = int(delta.get("base-epoch", "-1"))
    if declared_base != base_epoch:
        raise CodecError(
            f"delta applies to base epoch {declared_base} but payload is at "
            f"epoch {base_epoch} (diverged replica; full payload required)"
        )

    members: Dict[int, ET.Element] = {}
    for obj_el in base:
        if obj_el.tag != "object":
            raise CodecError(
                f"unexpected element <{obj_el.tag}> in base swap-cluster"
            )
        members[int(obj_el.get("oid"))] = obj_el

    replaced = 0
    dead = 0
    for el in delta:
        if el.tag == "object":
            members[int(el.get("oid"))] = el
            replaced += 1
        elif el.tag == "tombstone":
            # a tombstone for an oid the base never carried is legal:
            # the member was born and collected between two swap-outs
            members.pop(int(el.get("oid")), None)
            dead += 1
        else:
            raise CodecError(f"unexpected element <{el.tag}> in swap-delta")
    declared_count = delta.get("count")
    if declared_count is not None and int(declared_count) != replaced:
        raise CodecError(
            f"swap-delta count attribute says {declared_count} objects, "
            f"document holds {replaced}"
        )
    declared_dead = delta.get("dead")
    if declared_dead is not None and int(declared_dead) != dead:
        raise CodecError(
            f"swap-delta dead attribute says {declared_dead} tombstones, "
            f"document holds {dead}"
        )

    attrib = {
        "sid": base.get("sid", ""),
        "space": base.get("space", ""),
        "epoch": delta.get("epoch", str(base_epoch + 1)),
        "count": str(len(members)),
    }
    if not members:
        return canonical_open_tag("swap-cluster", attrib)[:-1] + "/>"
    parts = [canonical_open_tag("swap-cluster", attrib)]
    for oid in sorted(members):
        parts.append(serialize_element(members[oid]))
    parts.append("</swap-cluster>")
    return "".join(parts)
