"""Swap-cluster XML codec.

A detached swap-cluster travels as one XML document::

    <swap-cluster sid="3" space="pda" count="120" epoch="2">
      <object oid="17" class="ListNode">
        <field name="payload"><bytes>…</bytes></field>
        <field name="next"><ref oid="18"/></field>
        <field name="peer"><outref index="0"/></field>
      </object>
      …
    </swap-cluster>

Intra-cluster references use oids (objects keep their oids across a swap
cycle, so proxies can be re-patched on reload).  Outbound references — the
values that are swap-cluster-proxies at detach time — are serialized as
indexes into the cluster's replacement-object array, exactly the paper's
"array of references" design: the replacement-object keeps those proxies
alive while the cluster is away, and reload reconnects by index.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Tuple
from xml.etree import ElementTree as ET

from repro.errors import CodecError, IntegrityError
from repro.runtime.classext import instance_fields, is_managed, is_proxy
from repro.runtime.registry import TypeRegistry
from repro.wire.canonical import canonical_open_tag, serialize_element
from repro.wire.wrappers import decode_value, encode_value


@dataclass
class ClusterDocument:
    """Decoded form of a swapped cluster document."""

    sid: int
    space: str
    epoch: int
    objects: Dict[int, Any]  # oid -> rebuilt instance


@dataclass(frozen=True)
class LocalRef:
    oid: int


@dataclass(frozen=True)
class OutRef:
    index: int


def encode_cluster(
    *,
    sid: int,
    space: str,
    epoch: int,
    objects: Dict[int, Any],
    oid_of: Callable[[Any], int],
    outbound_index_of: Callable[[Any], int],
    foreign_index_of: Callable[[Any], int] | None = None,
) -> str:
    """Serialize a swap-cluster to XML text.

    ``objects`` maps oid -> managed instance (all must belong to the
    cluster).  ``oid_of`` returns the oid of a raw managed object;
    ``outbound_index_of`` maps a swap-cluster-proxy to its slot in the
    replacement-object array (registering it if first seen).

    ``foreign_index_of`` (server-side replication use only) maps a *raw*
    managed object outside the cluster to an outbound slot — the master
    graph has no proxies, so its frontier edges are raw.  Without it, a
    raw foreign reference raises :class:`IntegrityError`: on a device
    such an edge should have been a swap-cluster-proxy.

    The returned text is *canonical* (see :mod:`repro.wire.canonical`):
    re-hashing it raw equals its :func:`~repro.wire.canonical.
    payload_digest`, with no parse/re-serialize round trip.
    """
    text, _digest = encode_cluster_canonical(
        sid=sid,
        space=space,
        epoch=epoch,
        objects=objects,
        oid_of=oid_of,
        outbound_index_of=outbound_index_of,
        foreign_index_of=foreign_index_of,
    )
    return text


def encode_cluster_canonical(
    *,
    sid: int,
    space: str,
    epoch: int,
    objects: Dict[int, Any],
    oid_of: Callable[[Any], int],
    outbound_index_of: Callable[[Any], int],
    foreign_index_of: Callable[[Any], int] | None = None,
) -> Tuple[str, str]:
    """One-pass encode: canonical text plus its digest, hashed incrementally.

    Replaces the old encode → parse → canonicalize → re-serialize → hash
    pipeline with a single traversal; the digest is computed over the
    chunks as they are produced.
    """
    hasher = hashlib.sha256()
    parts: List[str] = []
    for chunk in encode_cluster_stream(
        sid=sid,
        space=space,
        epoch=epoch,
        objects=objects,
        oid_of=oid_of,
        outbound_index_of=outbound_index_of,
        foreign_index_of=foreign_index_of,
    ):
        hasher.update(chunk.encode("utf-8"))
        parts.append(chunk)
    return "".join(parts), hasher.hexdigest()


def make_classifier(
    *,
    sid: int,
    member_ids: set,
    oid_of: Callable[[Any], int],
    outbound_index_of: Callable[[Any], int],
    foreign_index_of: Callable[[Any], int] | None = None,
) -> Callable[[Any], tuple | None]:
    """Build the reference classifier the value encoder consults.

    ``member_ids`` is the full set of oids that serialize as intra-
    cluster ``<ref>``s — for a delta document this is the *cluster's*
    membership, not just the objects present in the document, so
    references from a re-shipped object to an unchanged member stay
    local.
    """

    def classify(value: Any) -> tuple | None:
        if is_proxy(value):
            return ("out", outbound_index_of(value))
        extern_attrs = getattr(value, "_obi_extern_attrs", None)
        if extern_attrs is not None:
            # an unreplicated-frontier handle (replication proxy): it
            # survives the swap cycle as an <extref>
            return ("ext", extern_attrs())
        if is_managed(value):
            oid = oid_of(value)
            if oid not in member_ids:
                if foreign_index_of is not None:
                    return ("out", foreign_index_of(value))
                raise IntegrityError(
                    f"raw reference from swap-cluster {sid} to foreign managed "
                    f"object oid={oid} ({type(value).__name__}); cross-cluster "
                    f"edges must be swap-cluster-proxies"
                )
            return ("local", oid)
        return None

    return classify


def encode_object_element(
    oid: int, obj: Any, classify: Callable[[Any], tuple | None]
) -> str:
    """Canonical ``<object>`` element for one managed instance."""
    schema = getattr(type(obj), "_obi_schema", None)
    if schema is None:
        raise CodecError(
            f"object oid={oid} of type {type(obj).__name__} is not @managed"
        )
    obj_el = ET.Element("object", {"oid": str(oid), "class": schema.name})
    for name, value in instance_fields(obj).items():
        field_el = ET.SubElement(obj_el, "field", {"name": name})
        field_el.append(encode_value(value, classify))
    return serialize_element(obj_el)


def encode_cluster_stream(
    *,
    sid: int,
    space: str,
    epoch: int,
    objects: Dict[int, Any],
    oid_of: Callable[[Any], int],
    outbound_index_of: Callable[[Any], int],
    foreign_index_of: Callable[[Any], int] | None = None,
) -> Iterator[str]:
    """Yield the canonical document in chunks: root open tag, one chunk
    per member object, closing tag.

    Chunks concatenate to exactly :func:`encode_cluster`'s output, so a
    transport can frame/ship them without ever materializing the whole
    document alongside a second serialized copy.
    """
    classify = make_classifier(
        sid=sid,
        member_ids=set(objects),
        oid_of=oid_of,
        outbound_index_of=outbound_index_of,
        foreign_index_of=foreign_index_of,
    )

    attrib = {
        "sid": str(sid),
        "space": space,
        "epoch": str(epoch),
        "count": str(len(objects)),
    }
    if not objects:
        # canonical form of an empty element is self-closing
        yield canonical_open_tag("swap-cluster", attrib)[:-1] + "/>"
        return
    yield canonical_open_tag("swap-cluster", attrib)
    for oid in sorted(objects):
        yield encode_object_element(oid, objects[oid], classify)
    yield "</swap-cluster>"


def decode_cluster(
    xml_text: str,
    *,
    registry: TypeRegistry,
    resolve_out: Callable[[int], Any],
    resolve_extern: Callable[[Dict[str, str]], Any] | None = None,
) -> ClusterDocument:
    """Rebuild a swap-cluster from XML text.

    Two passes: first allocate every instance uninitialized (so circular
    intra-cluster references resolve), then fill fields.  ``resolve_out``
    maps a replacement-array index back to the live swap-cluster-proxy;
    ``resolve_extern`` maps ``<extref>`` attributes back to an
    unreplicated-frontier handle (installed by the replicator).
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise CodecError(f"malformed swap-cluster XML: {exc}") from exc
    if root.tag != "swap-cluster":
        raise CodecError(f"expected <swap-cluster>, got <{root.tag}>")

    sid = int(root.get("sid", "-1"))
    space = root.get("space", "")
    epoch = int(root.get("epoch", "0"))

    # pass 1: allocate
    instances: Dict[int, Any] = {}
    field_elements: List[Tuple[int, ET.Element]] = []
    for obj_el in root:
        if obj_el.tag != "object":
            raise CodecError(f"unexpected element <{obj_el.tag}> in swap-cluster")
        oid = int(obj_el.get("oid"))
        class_name = obj_el.get("class", "")
        cls = registry.resolve(class_name)
        instances[oid] = object.__new__(cls)
        field_elements.append((oid, obj_el))

    declared = root.get("count")
    if declared is not None and int(declared) != len(instances):
        raise CodecError(
            f"swap-cluster {sid}: count attribute says {declared} objects, "
            f"document holds {len(instances)}"
        )

    def resolve(kind: str, ident: Any) -> Any:
        if kind == "local":
            try:
                return instances[ident]
            except KeyError:
                raise CodecError(
                    f"dangling intra-cluster reference oid={ident}"
                ) from None
        if kind == "ext":
            if resolve_extern is None:
                raise CodecError(
                    "document contains <extref> but no extern resolver is "
                    "installed (is a replicator attached to this space?)"
                )
            return resolve_extern(ident)
        return resolve_out(ident)

    # pass 2: fill fields
    for oid, obj_el in field_elements:
        instance = instances[oid]
        for field_el in obj_el:
            if field_el.tag != "field" or len(field_el) != 1:
                raise CodecError(f"malformed <field> in object oid={oid}")
            name = field_el.get("name")
            if not name:
                raise CodecError(f"<field> without name in object oid={oid}")
            value = decode_value(field_el[0], resolve)
            object.__setattr__(instance, name, value)

    return ClusterDocument(sid=sid, space=space, epoch=epoch, objects=instances)
