"""The write-ahead swap journal.

The dangerous moment of a swap-out is the hand-off: once the cluster is
detached from the heap, the stored XML is the *only* copy of that data.
The journal makes the ordering auditable and recoverable: an intent
record is written before the first byte is shipped, every store
acknowledgement is recorded, and the entry is committed only after the
cluster is detached with at least one acknowledged copy.  An operation
that dies between those points leaves a ``PENDING`` entry whose acked
writes name exactly the orphaned payloads — :meth:`repro.core.manager.
SwappingManager.recover_journal` drops them and aborts the entry.

The journal is in-process state (the simulation has no real crashes);
what it guarantees is the *ordering* invariant — detach strictly after
acknowledge — and a bounded, inspectable history of every hand-off.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional


class JournalEntryState(enum.Enum):
    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class JournalEntry:
    """One swap-out hand-off, begin-to-commit."""

    sequence: int
    sid: int
    key: str
    epoch: int
    xml_bytes: int
    #: Canonical payload digest — what placement recovery verifies
    #: inventory copies against.  Empty for pre-digest entries.
    digest: str = ""
    #: True when the hand-off shipped a ``<swap-delta>`` document; the
    #: entry's ``digest``/``xml_bytes`` still describe the *applied*
    #: full payload, so recovery and placement verify exactly as for a
    #: full ship (stores resolve the chain server-side).
    delta: bool = False
    #: Epoch of the base payload the delta applies to (delta entries only).
    base_epoch: Optional[int] = None
    state: JournalEntryState = JournalEntryState.PENDING
    #: Device ids that acknowledged the payload, in ack order.
    writes: List[str] = field(default_factory=list)

    @property
    def acknowledged(self) -> bool:
        return bool(self.writes)


@dataclass
class JournalStats:
    begins: int = 0
    commits: int = 0
    aborts: int = 0
    recoveries: int = 0
    #: Completed entries pushed out of the bounded history — once
    #: truncated they can no longer seed placement recovery.
    truncated: int = 0


class SwapJournal:
    """Bounded in-memory write-ahead journal for swap hand-offs."""

    def __init__(
        self,
        history: int = 256,
        on_truncate: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._sequence = 0
        self._history = history
        self._pending: List[JournalEntry] = []
        self._completed: Deque[JournalEntry] = deque(maxlen=history)
        #: Called with the number of entries dropped whenever retiring an
        #: entry pushes older completed entries out of the bounded history.
        self.on_truncate = on_truncate
        self.stats = JournalStats()

    def begin(
        self,
        sid: int,
        key: str,
        epoch: int,
        xml_bytes: int,
        digest: str = "",
        base_epoch: Optional[int] = None,
        delta: bool = False,
    ) -> JournalEntry:
        """Record the intent to ship ``sid``'s payload under ``key``."""
        self._sequence += 1
        entry = JournalEntry(
            sequence=self._sequence,
            sid=sid,
            key=key,
            epoch=epoch,
            xml_bytes=xml_bytes,
            digest=digest,
            delta=delta,
            base_epoch=base_epoch,
        )
        self._pending.append(entry)
        self.stats.begins += 1
        return entry

    def record_write(self, entry: JournalEntry, device_id: str) -> None:
        """A store acknowledged the full payload."""
        if entry.state is not JournalEntryState.PENDING:
            raise ValueError(f"journal entry {entry.sequence} is {entry.state.value}")
        entry.writes.append(device_id)

    def commit(self, entry: JournalEntry) -> None:
        """The cluster is detached; its stored copies are authoritative."""
        if entry.state is not JournalEntryState.PENDING:
            raise ValueError(f"journal entry {entry.sequence} is {entry.state.value}")
        if not entry.writes:
            raise ValueError(
                f"journal entry {entry.sequence} cannot commit without an "
                f"acknowledged write"
            )
        entry.state = JournalEntryState.COMMITTED
        self._retire(entry)
        self.stats.commits += 1

    def abort(self, entry: JournalEntry) -> None:
        """The swap-out failed before detach; copies (if any) are orphans."""
        if entry.state is not JournalEntryState.PENDING:
            return
        entry.state = JournalEntryState.ABORTED
        self._retire(entry)
        self.stats.aborts += 1

    # -- inspection --------------------------------------------------------

    def pending(self) -> List[JournalEntry]:
        """Entries begun but neither committed nor aborted (oldest first)."""
        return list(self._pending)

    def history(self) -> List[JournalEntry]:
        return list(self._completed)

    def last(self) -> Optional[JournalEntry]:
        if self._pending:
            return self._pending[-1]
        return self._completed[-1] if self._completed else None

    def _retire(self, entry: JournalEntry) -> None:
        try:
            self._pending.remove(entry)
        except ValueError:
            pass
        overflowing = len(self._completed) >= self._history
        self._completed.append(entry)
        if overflowing:
            # deque(maxlen=...) silently dropped the oldest entry; the
            # truncation must be loud — recovery can no longer see it
            self.stats.truncated += 1
            if self.on_truncate is not None:
                self.on_truncate(1)
