"""The resilience coordinator: glue between policy objects and the manager.

One :class:`Resilience` instance per :class:`~repro.core.manager.
SwappingManager` owns the retry policy (and its deterministic jitter
PRNG), the per-device :class:`~repro.resilience.health.HealthRegistry`,
the :class:`~repro.resilience.journal.SwapJournal`, and the lazily
created local fallback pool.  The manager stays in charge of the swap
protocol; this class answers "run this store operation robustly" and
"may I talk to this device right now", emitting resilience events and
bumping :class:`~repro.core.manager.ManagerStats` counters as it goes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple, Type

from repro.errors import RetryExhaustedError, TransportError
from repro.events import (
    CircuitClosedEvent,
    CircuitOpenEvent,
    ClusterUnderReplicatedEvent,
    JournalTruncatedEvent,
    SwapRetryEvent,
)
from repro.resilience.health import HealthRegistry
from repro.resilience.journal import SwapJournal
from repro.resilience.placement import PlacementMap, health_rank
from repro.resilience.retry import RetryPolicy, run_with_retry
from repro.resilience.scrub import Scrubber


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs for the resilient swap pipeline."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Consecutive failures that open a store's circuit breaker.
    failure_threshold: int = 3
    #: Simulated seconds an open circuit keeps a store out of selection.
    cooldown_s: float = 30.0
    #: When every store is unreachable, hibernate the cluster into the
    #: local compressed pool instead of raising.
    degrade_to_local: bool = True
    #: Heap share the local fallback pool may occupy.
    fallback_pool_fraction: float = 0.5
    #: Completed journal entries retained for inspection.
    journal_history: int = 256
    #: Seed for the deterministic retry-jitter PRNG.
    seed: int = 0
    #: How many distinct stores should hold each swapped cluster.  The
    #: effective target is ``max(manager.replication_factor, this)``.
    replication_factor: int = 1
    #: Simulated seconds between background scrub passes.
    scrub_interval_s: float = 30.0
    #: Placement records integrity-sampled per scrub pass.
    scrub_sample: int = 4
    #: A record verified this recently is skipped by the sampler; clean
    #: fast-path swap-outs refresh it so unmodified clusters are not
    #: re-fetched by scrub.
    reverify_interval_s: float = 600.0


class Resilience:
    """Retry/health/journal/degrade state for one swapping manager."""

    def __init__(self, config: ResilienceConfig, manager: Any) -> None:
        self.config = config
        self._manager = manager
        self._rng = random.Random(config.seed)
        self.health = HealthRegistry(
            failure_threshold=config.failure_threshold,
            cooldown_s=config.cooldown_s,
        )
        self.journal = SwapJournal(
            history=config.journal_history,
            on_truncate=self._on_journal_truncated,
        )
        self.placement = PlacementMap()
        self.scrubber = Scrubber(manager, self)
        self._fallback: Optional[Any] = None

    # -- plumbing ----------------------------------------------------------

    @property
    def _space(self) -> Any:
        return self._manager._space

    @property
    def clock(self) -> Any:
        return self._space.clock

    # -- circuit breaker ---------------------------------------------------

    def admits(self, device_id: str) -> bool:
        """May device selection consider this store right now?"""
        return self.health.of(device_id).admits(self.clock.now())

    def record_success(self, device_id: str) -> None:
        if self.health.of(device_id).record_success():
            self._manager.stats.circuit_closes += 1
            self._space.bus.emit(
                CircuitClosedEvent(space=self._space.name, device_id=device_id)
            )

    def record_failure(self, device_id: str) -> None:
        record = self.health.of(device_id)
        if record.record_failure(self.clock.now()):
            self._manager.stats.circuit_opens += 1
            self._space.bus.emit(
                CircuitOpenEvent(
                    space=self._space.name,
                    device_id=device_id,
                    consecutive_failures=record.consecutive_failures,
                    cooldown_s=record.cooldown_s,
                )
            )
            # a tripped circuit is store-death-until-proven-otherwise:
            # its replicas stop counting until the scrubber re-verifies
            self.mark_device_suspect(device_id, reason="circuit open")

    # -- placement hooks ---------------------------------------------------

    def mark_device_suspect(self, device_id: str, *, reason: str) -> List[int]:
        affected = self.placement.mark_device_suspect(device_id)
        rf = self._manager.target_replicas()
        for sid in affected:
            record = self.placement.get(sid)
            if record is not None and record.live_count < rf:
                self._space.bus.emit(
                    ClusterUnderReplicatedEvent(
                        space=self._space.name,
                        sid=sid,
                        live_replicas=record.live_count,
                        target_replicas=rf,
                        reason=f"{device_id}: {reason}",
                    )
                )
        return affected

    def rank_replicas(self, holders: List[Any]) -> List[Any]:
        """Order replica holders fastest-admitted-first for swap-in.

        Admitted stores come before circuit-open ones; within each tier
        the healthiest (fewest consecutive failures, best history) and
        lowest-latency link wins.
        """
        now = self.clock.now()

        def rank(holder: Any) -> Tuple:
            device_id = holder.device_id
            record = self.health.of(device_id)
            link = getattr(holder, "link", None)
            latency = getattr(link, "latency_s", 0.0) if link is not None else 0.0
            # health_rank is the shared failure-rate key, matching
            # plan_placement: a net-success score would rank busy stores
            # above quiet healthy ones and scramble the stable holder
            # order the bindings establish
            return (
                0 if record.admits(now) else 1,
                *health_rank(record),
                latency,
            )

        return sorted(holders, key=rank)

    def _on_journal_truncated(self, dropped: int) -> None:
        self._manager.stats.journal_truncated += dropped
        self._space.bus.emit(
            JournalTruncatedEvent(
                space=self._space.name,
                dropped=dropped,
                history=self.config.journal_history,
            )
        )

    # -- retried execution -------------------------------------------------

    def run(
        self,
        operation: Callable[[], Any],
        *,
        sid: int,
        device_id: str,
        op_name: str,
        retry_on: Tuple[Type[BaseException], ...] = (TransportError,),
    ) -> Any:
        """Run one store operation under the retry policy.

        Health bookkeeping: success closes/clears the device's record;
        exhausting retries (reachability failures only) counts one
        failure toward its circuit breaker.
        """
        space = self._space
        attempts = 1

        def on_retry(attempt: int, delay: float, error: BaseException) -> None:
            nonlocal attempts
            attempts = attempt + 1
            self._manager.stats.retries += 1
            obs = getattr(self._manager, "obs", None)
            if obs is not None:
                # run_with_retry advances the clock by exactly ``delay``
                # right after this callback, so the backoff span's window
                # is known now: [now, now + delay]
                now = self.clock.now()
                obs.tracer.record_span(
                    "retry.backoff",
                    start_s=now,
                    end_s=now + delay,
                    attempt=attempt,
                    delay_s=delay,
                    device=device_id,
                    operation=op_name,
                    cause=str(error),
                )
            space.bus.emit(
                SwapRetryEvent(
                    space=space.name,
                    sid=sid,
                    device_id=device_id,
                    operation=op_name,
                    attempt=attempt,
                    delay_s=delay,
                    error=str(error),
                )
            )

        try:
            result = run_with_retry(
                operation,
                policy=self.config.retry,
                clock=self.clock,
                rng=self._rng,
                retry_on=retry_on,
                on_retry=on_retry,
                describe=f"{op_name} on {device_id}",
            )
        except RetryExhaustedError as exc:
            self._observe_attempts(attempts)
            if isinstance(exc.__cause__, TransportError):
                self.record_failure(device_id)
            raise
        self._observe_attempts(attempts)
        self.record_success(device_id)
        return result

    def _observe_attempts(self, attempts: int) -> None:
        obs = getattr(self._manager, "obs", None)
        if obs is not None:
            obs.observe_attempts(attempts)

    # -- graceful degradation ----------------------------------------------

    def fallback_store(self) -> Any:
        """The local compressed pool used when no store is reachable."""
        if self._fallback is None:
            from repro.baselines.compression import CompressedPoolStore

            self._fallback = CompressedPoolStore(
                self._space, pool_fraction=self.config.fallback_pool_fraction
            )
        return self._fallback
