"""Resilience subsystem for the swap pipeline.

The paper swaps live data to *nearby, dumb, unreliable* storage; this
package is what keeps that honest when the neighborhood misbehaves:

* :class:`RetryPolicy` / :func:`run_with_retry` — exponential backoff
  with deterministic jitter and a deadline, all waiting charged to the
  simulated clock;
* :class:`StoreHealth` / :class:`HealthRegistry` — per-device circuit
  breakers that evict failing stores from device selection for a
  cool-down, then probe them half-open;
* :class:`SwapJournal` — the write-ahead hand-off journal: a cluster is
  detached from the heap only after a store acknowledged its payload,
  and interrupted hand-offs name their orphaned copies for recovery;
* :class:`Resilience` / :class:`ResilienceConfig` — the coordinator a
  :class:`~repro.core.manager.SwappingManager` enables via
  ``manager.enable_resilience()``, including degrade-to-local: when
  every store is unreachable the victim is hibernated into a local
  compressed pool (:mod:`repro.baselines.compression`) instead of the
  swap failing;
* :class:`PlacementMap` / :func:`plan_placement` — replicated swap-out:
  ``k`` copies across distinct stores (health-, capacity- and
  anti-affinity-aware), tracked per cluster with digest and epoch;
* :class:`Scrubber` — the background scrub/repair loop: re-verifies
  suspect replicas after store churn, digest-samples records at rest,
  re-replicates under-replicated clusters (including re-promotion of
  degraded-to-local hibernations), and collects orphaned copies.

Disabled (the default), none of this touches the swap hot path.
"""

from repro.resilience.coordinator import Resilience, ResilienceConfig
from repro.resilience.health import CircuitState, HealthRegistry, StoreHealth
from repro.resilience.journal import (
    JournalEntry,
    JournalEntryState,
    SwapJournal,
)
from repro.resilience.placement import (
    PlacementMap,
    PlacementRecord,
    ReplicaState,
    placement_group_of,
    plan_placement,
)
from repro.resilience.retry import RetryPolicy, run_with_retry
from repro.resilience.scrub import ScrubReport, Scrubber

__all__ = [
    "Resilience",
    "ResilienceConfig",
    "RetryPolicy",
    "run_with_retry",
    "CircuitState",
    "StoreHealth",
    "HealthRegistry",
    "SwapJournal",
    "JournalEntry",
    "JournalEntryState",
    "PlacementMap",
    "PlacementRecord",
    "ReplicaState",
    "placement_group_of",
    "plan_placement",
    "Scrubber",
    "ScrubReport",
]
