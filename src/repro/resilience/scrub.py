"""The background scrubber: verify, repair, reclaim.

A replicated swap-out only buys durability if something keeps the
replica sets honest *after* the write: stores depart and rejoin, bits
rot at rest, drops fail and leave orphans behind.  The scrubber is that
something — a clock-driven maintenance pass (:meth:`Scrubber.tick`,
driven by the same simulated clock as the health cool-downs) that each
cycle:

1. **re-verifies suspects** — replicas on stores that departed or
   tripped their circuit are probed (``contains`` + digest probe) once
   the store is admitted again, and reactivated or struck off;
2. **samples digests** — the stalest-verified placement records get an
   end-to-end integrity check against their stores, preferring the
   cheap ``digest`` control probe and falling back to fetch+verify for
   legacy stores; a mismatch quarantines the copy;
3. **repairs** — under-replicated clusters (departures, quarantines,
   degraded-to-local hibernations) are re-replicated from the best
   available source (payload cache, then a verified healthy replica,
   then the local fallback pool) onto fresh anti-affine stores, and
   quarantined copies are dropped;
4. **collects orphans** — keys on reachable stores that no placement
   record, fast-path retention or pending journal entry names are
   dropped (failed ``drop()``s and aborted hand-offs leave these).

Every pass emits one :class:`~repro.events.ScrubCompletedEvent` and is
summarized in a :class:`ScrubReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import (
    HeapExhaustedError,
    RetryExhaustedError,
    StoreFullError,
    TransportError,
    UnknownKeyError,
)
from repro.events import (
    ClusterUnderReplicatedEvent,
    ReplicaCorruptEvent,
    ReplicaRepairedEvent,
    ScrubCompletedEvent,
)
from repro.resilience.placement import (
    PlacementRecord,
    ReplicaState,
    plan_placement,
)
from repro.wire.canonical import verify_payload


@dataclass
class ScrubReport:
    """What one scrub pass did."""

    at_s: float = 0.0
    verified: int = 0
    reactivated: int = 0
    struck_suspects: int = 0
    quarantined: int = 0
    quarantines_dropped: int = 0
    repaired_replicas: int = 0
    repaired_bytes: int = 0
    repromotions: int = 0
    orphans_dropped: int = 0
    under_replicated: int = 0
    unrecoverable: int = 0


class Scrubber:
    """Clock-driven scrub/repair loop for one swapping manager."""

    def __init__(self, manager: Any, resilience: Any) -> None:
        self._manager = manager
        self._resilience = resilience
        self._last_tick: float = float("-inf")
        self.ticks = 0
        self.last_report: Optional[ScrubReport] = None

    # -- plumbing ----------------------------------------------------------

    @property
    def _space(self) -> Any:
        return self._manager._space

    @property
    def _placement(self) -> Any:
        return self._resilience.placement

    @property
    def _config(self) -> Any:
        return self._resilience.config

    def due(self) -> bool:
        now = self._space.clock.now()
        return now - self._last_tick >= self._config.scrub_interval_s

    # -- the pass ----------------------------------------------------------

    def tick(self, force: bool = False) -> Optional[ScrubReport]:
        """Run one scrub pass if the interval elapsed (or ``force``)."""
        if not force and not self.due():
            return None
        now = self._space.clock.now()
        self._last_tick = now
        report = ScrubReport(at_s=now)

        span = self._manager._obs_span("scrub.pass", tick=self.ticks)
        with span:
            stores = self._reachable_stores()
            self._verify_suspects(stores, report)
            self._verify_sampled(stores, report, now)
            self._repair(stores, report)
            self._collect_orphans(stores, report)

            rf = self._manager.target_replicas()
            report.under_replicated = len(self._placement.under_replicated(rf))
            span.set_tag("verified", report.verified)
            span.set_tag("repaired", report.repaired_replicas)
            span.set_tag("quarantined", report.quarantined)
            span.set_tag("orphans", report.orphans_dropped)
            span.set_tag("under_replicated", report.under_replicated)
        self.ticks += 1
        self._manager.stats.scrub_ticks += 1
        self.last_report = report
        self._space.bus.emit(
            ScrubCompletedEvent(
                space=self._space.name,
                verified=report.verified,
                reactivated=report.reactivated,
                repaired_replicas=report.repaired_replicas,
                repaired_bytes=report.repaired_bytes,
                quarantined=report.quarantined,
                orphans_dropped=report.orphans_dropped,
                repromotions=report.repromotions,
                under_replicated=report.under_replicated,
            )
        )
        return report

    def run_until_stable(self, max_ticks: int = 16) -> ScrubReport:
        """Force scrub passes until a pass changes nothing (tests/benches)."""
        report = self.tick(force=True)
        for _ in range(max_ticks - 1):
            previous = report
            report = self.tick(force=True)
            if (
                report.repaired_replicas == 0
                and report.reactivated == 0
                and report.orphans_dropped == 0
                and report.quarantines_dropped == 0
                and previous is not None
                and report.under_replicated == previous.under_replicated
            ):
                break
        return report

    # -- store resolution --------------------------------------------------

    def _reachable_stores(self) -> Dict[str, Any]:
        """device_id -> store for every currently-admitted store."""
        stores: Dict[str, Any] = {}
        for store in self._manager.available_stores():
            stores[store.device_id] = store
        fallback = self._resilience._fallback
        if fallback is not None:
            stores.setdefault(fallback.device_id, fallback)
        return stores

    # -- 1. suspect re-verification ---------------------------------------

    def _verify_suspects(self, stores: Dict[str, Any], report: ScrubReport) -> None:
        for sid, record in self._placement.records().items():
            for device_id in record.suspects():
                store = stores.get(device_id)
                if store is None:
                    continue  # still unreachable: stays suspect
                try:
                    if self._copy_intact(store, record):
                        self._placement.reactivate(sid, device_id)
                        self._sync_binding(sid, device_id, store, present=True)
                        report.reactivated += 1
                    else:
                        self._placement.remove_replica(sid, device_id)
                        self._sync_binding(sid, device_id, store, present=False)
                        report.struck_suspects += 1
                except (TransportError, RetryExhaustedError):
                    continue

    # -- 2. digest sampling ------------------------------------------------

    def _verify_sampled(
        self, stores: Dict[str, Any], report: ScrubReport, now: float
    ) -> None:
        config = self._config
        candidates: List[PlacementRecord] = [
            record
            for record in self._placement.records().values()
            if record.verified_epoch != record.epoch
            or now - record.verified_at >= config.reverify_interval_s
        ]
        candidates.sort(key=lambda record: (record.verified_at, record.sid))
        for record in candidates[: config.scrub_sample]:
            all_good = True
            probed_any = False
            for device_id in record.active():
                store = stores.get(device_id)
                if store is None:
                    all_good = False
                    continue
                try:
                    intact = self._copy_intact(store, record)
                except (TransportError, RetryExhaustedError):
                    all_good = False
                    continue
                probed_any = True
                if not intact:
                    all_good = False
                    self._note_corrupt(record, device_id, report)
            if all_good and probed_any:
                self._placement.record_verified(record.sid, record.epoch, now)
                report.verified += 1

    def _copy_intact(self, store: Any, record: PlacementRecord) -> bool:
        """Does ``store`` hold an uncorrupted copy of ``record``?

        Prefers the digest control probe (64-byte round trip); legacy
        stores without one pay for a full fetch + verify.
        """
        probe = getattr(store, "contains", None)
        if probe is not None and not probe(record.key):
            return False
        digest_probe = getattr(store, "digest", None)
        if digest_probe is not None:
            try:
                return digest_probe(record.key) == record.digest
            except UnknownKeyError:
                return False
        try:
            text = store.fetch(record.key)
        except UnknownKeyError:
            return False
        return verify_payload(text, record.digest)

    def _note_corrupt(
        self, record: PlacementRecord, device_id: str, report: ScrubReport
    ) -> None:
        if self._placement.quarantine(record.sid, device_id):
            report.quarantined += 1
            self._manager.stats.replicas_quarantined += 1
            self._space.bus.emit(
                ReplicaCorruptEvent(
                    space=self._space.name,
                    sid=record.sid,
                    device_id=device_id,
                    key=record.key,
                    source="scrub",
                )
            )

    # -- 3. repair ---------------------------------------------------------

    def _repair(self, stores: Dict[str, Any], report: ScrubReport) -> None:
        manager = self._manager
        rf = manager.target_replicas()
        fallback = self._resilience._fallback
        fallback_id = fallback.device_id if fallback is not None else None

        for record in list(self._placement.records().values()):
            self._drop_quarantined(record, stores, report)
            needs_promotion = (
                fallback_id is not None and fallback_id in record.replicas
            )
            # the fallback pool is heap, not durability: copies there
            # do not count toward the replication target
            real_active = [
                device_id
                for device_id in record.active()
                if device_id != fallback_id
            ]
            deficit = rf - len(real_active)
            if deficit <= 0 and not needs_promotion:
                continue
            text = self._payload_of(record, stores)
            if text is None:
                if record.live_count == 0:
                    report.unrecoverable += 1
                continue
            shipped = self._replicate(record, text, deficit, stores, report)
            if needs_promotion and (shipped > 0 or deficit <= 0):
                self._repromote(record, fallback, report)

    def _drop_quarantined(
        self, record: PlacementRecord, stores: Dict[str, Any], report: ScrubReport
    ) -> None:
        for device_id in record.quarantined():
            store = stores.get(device_id)
            if store is not None:
                try:
                    store.drop(record.key)
                except (TransportError, UnknownKeyError, RetryExhaustedError):
                    continue  # still unreachable: retry next pass
            self._placement.remove_replica(record.sid, device_id)
            if store is not None:
                self._sync_binding(record.sid, device_id, store, present=False)
            report.quarantines_dropped += 1

    def _payload_of(
        self, record: PlacementRecord, stores: Dict[str, Any]
    ) -> Optional[str]:
        """Obtain the verified canonical payload for a record."""
        fastpath = self._manager.fastpath
        if fastpath is not None:
            cached = fastpath.cache.get(record.digest)
            if cached is not None:
                return cached
        for device_id in record.active() + record.suspects():
            store = stores.get(device_id)
            if store is None:
                continue
            try:
                text = store.fetch(record.key)
            except (TransportError, UnknownKeyError, RetryExhaustedError):
                continue
            if verify_payload(text, record.digest):
                return text
            self._note_corrupt(record, device_id, self.last_report or ScrubReport())
        return None

    def _replicate(
        self,
        record: PlacementRecord,
        text: str,
        deficit: int,
        stores: Dict[str, Any],
        report: ScrubReport,
    ) -> int:
        if deficit <= 0:
            return 0
        manager = self._manager
        resilience = self._resilience
        fallback = resilience._fallback
        nbytes = len(text.encode("utf-8"))
        topology = getattr(manager, "topology", None)
        if topology is not None:
            # shard-aware repair: deficits re-replicate onto the record's
            # own shard holders first, so routing and durability converge
            # on the same stores after a reparent
            existing = set(record.replicas)
            targets = [
                store
                for store in topology.select_for(record.sid, nbytes, deficit + len(existing))
                if store.device_id not in existing
                and (fallback is None or store is not fallback)
            ][:deficit]
        else:
            candidates = [
                store
                for store in manager.available_stores()
                if fallback is None or store is not fallback
            ]
            targets = plan_placement(
                candidates,
                nbytes,
                deficit,
                health=resilience.health,
                exclude=set(record.replicas),
                on_probe_failure=lambda store: resilience.record_failure(
                    store.device_id
                ),
            )
        shipped = 0
        for store in targets:
            try:
                manager._store_payload(store, record.key, text, record.sid)
            except (
                StoreFullError,
                TransportError,
                RetryExhaustedError,
                HeapExhaustedError,
            ):
                continue
            self._placement.add_replica(record.sid, store.device_id)
            # the repair shipped the full current payload, so this
            # replica resolves the record's own epoch
            record.applied_epochs[store.device_id] = record.epoch
            self._sync_binding(record.sid, store.device_id, store, present=True)
            shipped += 1
            report.repaired_replicas += 1
            report.repaired_bytes += record.xml_bytes
            manager.stats.replicas_repaired += 1
            manager.stats.scrub_bytes_repaired += record.xml_bytes
            if topology is not None:
                # rebalance-cost accounting for the topology bench
                topology.stats.repair_replicas += 1
                topology.stats.repair_bytes += record.xml_bytes
            self._space.bus.emit(
                ReplicaRepairedEvent(
                    space=self._space.name,
                    sid=record.sid,
                    device_id=store.device_id,
                    key=record.key,
                    xml_bytes=record.xml_bytes,
                )
            )
        still_short = self._manager.target_replicas() - len(
            [
                device_id
                for device_id in record.active()
                if fallback is None or device_id != fallback.device_id
            ]
        )
        if still_short > 0:
            self._space.bus.emit(
                ClusterUnderReplicatedEvent(
                    space=self._space.name,
                    sid=record.sid,
                    live_replicas=record.live_count,
                    target_replicas=self._manager.target_replicas(),
                    reason="scrub repair incomplete",
                )
            )
        return shipped

    def _repromote(
        self, record: PlacementRecord, fallback: Any, report: ScrubReport
    ) -> None:
        """A degraded-to-local cluster made it back onto real stores:
        release the heap bytes its compressed hibernation occupies."""
        try:
            fallback.drop(record.key)
        except (UnknownKeyError, TransportError):
            pass
        self._placement.remove_replica(record.sid, fallback.device_id)
        self._sync_binding(record.sid, fallback.device_id, fallback, present=False)
        report.repromotions += 1
        self._manager.stats.repromotions += 1

    # -- 4. orphan collection ----------------------------------------------

    def _collect_orphans(self, stores: Dict[str, Any], report: ScrubReport) -> None:
        manager = self._manager
        if manager.keep_swapped_copies:
            return  # set-aside copies are deliberate; nothing is an orphan
        prefix = f"{self._space.name}/"
        keep = self._protected_keys()
        for store in stores.values():
            lister = getattr(store, "keys", None)
            if lister is None:
                continue
            try:
                inventory = list(lister())
            except (TransportError, RetryExhaustedError):
                continue
            for key in inventory:
                if not key.startswith(prefix) or key in keep:
                    continue
                try:
                    store.drop(key)
                except (TransportError, UnknownKeyError, RetryExhaustedError):
                    continue
                report.orphans_dropped += 1
                manager.stats.orphans_collected += 1

    def _protected_keys(self) -> set:
        """Every key some live bookkeeping still names."""
        keep = {
            record.key for record in self._placement.records().values()
        }
        fastpath = self._manager.fastpath
        if fastpath is not None:
            keep.update(key for key, _ in fastpath.retained.values())
            # delta-chain bases: collecting one would orphan every delta
            # standing on it
            for chain in fastpath.chains.values():
                keep.update(chain.keys)
        journal = self._resilience.journal
        keep.update(entry.key for entry in journal.pending())
        return keep

    # -- binding sync ------------------------------------------------------

    def _sync_binding(
        self, sid: int, device_id: str, store: Any, present: bool
    ) -> None:
        """Keep the manager's store-object bindings in step with the map."""
        bindings = self._manager._bindings.get(sid)
        if bindings is None:
            return
        held = [holder for holder in bindings if holder.device_id == device_id]
        if present and not held:
            bindings.append(store)
        elif not present:
            for holder in held:
                bindings.remove(holder)
