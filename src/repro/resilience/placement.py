"""Replica placement: where each swapped cluster's copies live.

The paper detaches live state onto "any nearby dumb storage device" —
devices that walk away, die, and rot bits at rest.  One copy on one
store is therefore one departure away from data loss.  This module
turns swap-out into *placement*: ``k`` replicas across distinct
stores, chosen health- and capacity-aware with anti-affinity across
``placement_group``s (two copies on the same rack/owner are one power
cable away from being one copy), and a :class:`PlacementMap` tracking
every swapped cluster's replica set, payload digest and epoch.

The map is the durability ledger the :class:`~repro.resilience.scrub.
Scrubber` works from: replicas move between three states —

* ``ACTIVE`` — believed present and correct;
* ``SUSPECT`` — the store departed or its circuit opened; the copy may
  still exist and is re-verified (not re-shipped) when the store heals;
* ``QUARANTINED`` — a digest check failed against this copy; it no
  longer counts toward replication and the scrubber drops + replaces it.

After a crash the map is rebuilt from the write-ahead journal plus the
stores' own inventory (:meth:`~repro.core.manager.SwappingManager.
recover_placement`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import TransportError


class ReplicaState(enum.Enum):
    ACTIVE = "active"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"


@dataclass
class PlacementRecord:
    """Replica set + integrity metadata for one swapped cluster."""

    sid: int
    key: str
    digest: str
    epoch: int
    xml_bytes: int
    #: device_id -> replica state.
    replicas: Dict[str, ReplicaState] = field(default_factory=dict)
    #: device_id -> epoch whose *content* the replica resolves to.  For
    #: full payloads this equals ``epoch``; for delta chains it is the
    #: epoch of the last document the store acknowledged — the delta
    #: path pre-checks it and ships a full payload to any replica whose
    #: applied epoch diverged from the delta's base.
    applied_epochs: Dict[str, int] = field(default_factory=dict)
    #: Last epoch whose replicas passed an end-to-end verification
    #: (scrub probe, fetch+digest, or a clean fast-path ``contains``).
    verified_epoch: int = -1
    #: Simulated time of that verification (scrub re-verifies stale ones).
    verified_at: float = float("-inf")

    def active(self) -> List[str]:
        return [
            device_id
            for device_id, state in self.replicas.items()
            if state is ReplicaState.ACTIVE
        ]

    def suspects(self) -> List[str]:
        return [
            device_id
            for device_id, state in self.replicas.items()
            if state is ReplicaState.SUSPECT
        ]

    def quarantined(self) -> List[str]:
        return [
            device_id
            for device_id, state in self.replicas.items()
            if state is ReplicaState.QUARANTINED
        ]

    @property
    def live_count(self) -> int:
        return len(self.active())

    def describe(self) -> str:
        states = ", ".join(
            f"{device_id}={state.value}"
            for device_id, state in sorted(self.replicas.items())
        )
        return (
            f"sc-{self.sid} key={self.key} epoch={self.epoch} "
            f"[{states}] verified_epoch={self.verified_epoch}"
        )


@dataclass
class PlacementStats:
    records: int = 0
    quarantines: int = 0
    suspects_marked: int = 0
    reactivations: int = 0
    recoveries: int = 0


class PlacementMap:
    """The per-space ledger of swapped-cluster replica sets.

    An optional *observer* (the sharded topology service, when enabled)
    is notified of every replica-set change so it can keep its per-cell
    replication records in step without the manager having to call two
    ledgers at every site.  Observers must never raise.
    """

    def __init__(self) -> None:
        self._records: Dict[int, PlacementRecord] = {}
        self.stats = PlacementStats()
        #: Optional listener with ``on_record_swap_out(record)``,
        #: ``on_forget(record)``, ``on_replica_added(sid, device_id)``
        #: and ``on_replica_removed(sid, device_id)`` hooks (all
        #: optional; missing hooks are skipped).
        self.observer: Optional[Any] = None

    def _notify(self, hook: str, *args: Any) -> None:
        observer = self.observer
        if observer is None:
            return
        method = getattr(observer, hook, None)
        if method is not None:
            method(*args)

    # -- lifecycle ---------------------------------------------------------

    def record_swap_out(
        self,
        sid: int,
        *,
        key: str,
        digest: str,
        epoch: int,
        xml_bytes: int,
        device_ids: Iterable[str],
    ) -> PlacementRecord:
        record = PlacementRecord(
            sid=sid,
            key=key,
            digest=digest,
            epoch=epoch,
            xml_bytes=xml_bytes,
            replicas={
                device_id: ReplicaState.ACTIVE for device_id in device_ids
            },
        )
        if sid not in self._records:
            self.stats.records += 1
        self._records[sid] = record
        self._notify("on_record_swap_out", record)
        return record

    def forget(self, sid: int) -> Optional[PlacementRecord]:
        """The cluster is resident again (or dropped); its map entry dies."""
        record = self._records.pop(sid, None)
        if record is not None:
            self._notify("on_forget", record)
        return record

    def get(self, sid: int) -> Optional[PlacementRecord]:
        return self._records.get(sid)

    def records(self) -> Dict[int, PlacementRecord]:
        return dict(self._records)

    # -- replica state transitions ----------------------------------------

    def add_replica(self, sid: int, device_id: str) -> None:
        record = self._records.get(sid)
        if record is not None:
            record.replicas[device_id] = ReplicaState.ACTIVE
            self._notify("on_replica_added", sid, device_id)

    def remove_replica(self, sid: int, device_id: str) -> None:
        record = self._records.get(sid)
        if record is not None:
            record.replicas.pop(device_id, None)
            self._notify("on_replica_removed", sid, device_id)

    def quarantine(self, sid: int, device_id: str) -> bool:
        """A copy failed its digest check; it no longer counts."""
        record = self._records.get(sid)
        if record is None or device_id not in record.replicas:
            return False
        if record.replicas[device_id] is ReplicaState.QUARANTINED:
            return False
        record.replicas[device_id] = ReplicaState.QUARANTINED
        self.stats.quarantines += 1
        return True

    def mark_device_suspect(self, device_id: str) -> List[int]:
        """The device departed or its circuit opened; its copies may
        still exist.  Returns the sids whose records were touched."""
        affected: List[int] = []
        for sid, record in self._records.items():
            if record.replicas.get(device_id) is ReplicaState.ACTIVE:
                record.replicas[device_id] = ReplicaState.SUSPECT
                self.stats.suspects_marked += 1
                affected.append(sid)
        return affected

    def mark_device_lost(self, device_id: str) -> List[int]:
        """The device is dead for good; its copies are gone."""
        affected: List[int] = []
        for sid, record in self._records.items():
            if device_id in record.replicas:
                del record.replicas[device_id]
                affected.append(sid)
                self._notify("on_replica_removed", sid, device_id)
        return affected

    def reactivate(self, sid: int, device_id: str) -> None:
        """A suspect copy was re-verified on a healed store."""
        record = self._records.get(sid)
        if record is not None and device_id in record.replicas:
            record.replicas[device_id] = ReplicaState.ACTIVE
            self.stats.reactivations += 1

    def record_verified(self, sid: int, epoch: int, now: float) -> None:
        record = self._records.get(sid)
        if record is not None and record.epoch == epoch:
            record.verified_epoch = epoch
            record.verified_at = now

    # -- queries -----------------------------------------------------------

    def under_replicated(self, factor: int) -> List[PlacementRecord]:
        """Records with fewer than ``factor`` active replicas (worst first)."""
        short = [
            record
            for record in self._records.values()
            if record.live_count < factor
        ]
        short.sort(key=lambda record: (record.live_count, record.sid))
        return short

    def current_keys(self) -> Dict[str, set]:
        """device_id -> the set of keys the map expects it to hold."""
        expected: Dict[str, set] = {}
        for record in self._records.values():
            for device_id in record.replicas:
                expected.setdefault(device_id, set()).add(record.key)
        return expected

    def __len__(self) -> int:
        return len(self._records)


#: Prefix of the implicit per-store placement group (see
#: :func:`placement_group_of`; documented in PROTOCOL.md §1e).
IMPLICIT_GROUP_PREFIX = "cell:"


def placement_group_of(store: Any) -> str:
    """Anti-affinity domain (cell) of a store.

    Stores may expose a ``placement_group`` attribute (e.g. every device
    on one desk, or owned by one person, shares a group); without one,
    each device is its own failure domain under the implicit group
    ``cell:<device_id>``.  The prefix keeps the implicit namespace
    disjoint from explicit group names: a bare device-id default would
    silently merge an ungrouped store named ``s3`` into an explicit
    group that happens to be called ``s3``, collapsing two failure
    domains into one.
    """
    group = getattr(store, "placement_group", None)
    if group:
        return group
    device_id = getattr(store, "device_id", None)
    return IMPLICIT_GROUP_PREFIX + (
        device_id if device_id else repr(store)
    )


def health_rank(record: Any) -> Tuple[int, float]:
    """The one health sort key: consecutive failures, then failure *rate*.

    Shared by :func:`plan_placement`, swap-in replica ranking
    (:meth:`~repro.resilience.coordinator.Resilience.rank_replicas`) and
    shard-primary election (:meth:`~repro.topology.service.
    TopologyService.reparent`) — the three orderings must agree or
    holder order scrambles between write and read.  Rate, not net
    count: a net-success score makes the first stores ever used outrank
    idle ones forever (rich-get-richer), funnelling every replica onto
    the same few radios while the rest of the fleet sits dark.
    """
    observed = record.total_failures + record.total_successes
    return (
        record.consecutive_failures,
        record.total_failures / observed if observed else 0.0,
    )


def plan_placement(
    candidates: Iterable[Any],
    nbytes: int,
    count: int,
    *,
    health: Optional[Any] = None,
    exclude: Iterable[str] = (),
    on_probe_failure: Optional[Callable[[Any], None]] = None,
) -> List[Any]:
    """Choose up to ``count`` stores for ``nbytes``, best placement first.

    Ranking is health-aware (fewer consecutive failures first, then
    better success history) and capacity-aware (more free space first);
    selection is anti-affine: a second copy lands in an already-used
    ``placement_group`` only when no unused group has room.  Stores that
    refuse the admission probe are skipped; unreachable probes are
    reported through ``on_probe_failure`` (circuit-breaker feeding).
    """
    excluded = set(exclude)
    admitted: List[Tuple[Tuple, Any]] = []
    for store in candidates:
        device_id = getattr(store, "device_id", None)
        if device_id in excluded:
            continue
        try:
            if not store.has_room(nbytes):
                continue
        except TransportError:
            if on_probe_failure is not None:
                on_probe_failure(store)
            continue
        if health is not None:
            rank = health_rank(health.of(device_id))
        else:
            rank = (0, 0.0)
        free = getattr(store, "free", None)
        admitted.append(((rank, -(free if free is not None else 1 << 62)), store))
    admitted.sort(key=lambda item: item[0])

    chosen: List[Any] = []
    used_groups: set = set()
    remaining = [store for _, store in admitted]
    while remaining and len(chosen) < count:
        pick = None
        for store in remaining:
            if placement_group_of(store) not in used_groups:
                pick = store
                break
        if pick is None:  # every free group exhausted: co-locate as a last resort
            pick = remaining[0]
        chosen.append(pick)
        used_groups.add(placement_group_of(pick))
        remaining.remove(pick)
    return chosen
