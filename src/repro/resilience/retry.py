"""Retry with exponential backoff, deterministic jitter and a deadline.

All waiting is charged to a :class:`~repro.clock.Clock` — with the
default :class:`~repro.clock.SimulatedClock` a retried swap costs
simulated seconds, not wall time, so chaos experiments stay fast and
replayable.  Jitter comes from a caller-owned seeded PRNG, which keeps
two runs of the same scenario bit-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from repro.clock import Clock
from repro.errors import RetryExhaustedError, TransportError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base * multiplier**(attempt-1)``, capped.

    ``jitter`` spreads each delay uniformly over ``±jitter`` of its
    nominal value; ``deadline_s`` bounds the *total* simulated time a
    single retried operation may consume (attempt time included, since
    transfers charge the same clock).
    """

    max_attempts: int = 4
    base_delay_s: float = 0.1
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    deadline_s: Optional[float] = 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    def delay_for(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        delay = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


#: Called before each backoff sleep: (attempt, delay_s, error).
RetryObserver = Callable[[int, float, BaseException], None]


def run_with_retry(
    operation: Callable[[], Any],
    *,
    policy: RetryPolicy,
    clock: Clock,
    rng: Optional[random.Random] = None,
    retry_on: Tuple[Type[BaseException], ...] = (TransportError,),
    on_retry: Optional[RetryObserver] = None,
    describe: str = "operation",
) -> Any:
    """Run ``operation`` under ``policy``; backoff charged to ``clock``.

    Only exceptions in ``retry_on`` are retried — anything else (e.g. a
    permanent :class:`~repro.errors.StoreFullError`) propagates at once.
    Raises :class:`~repro.errors.RetryExhaustedError` (last failure
    chained) when attempts or the deadline run out.
    """
    started = clock.now()
    attempt = 1
    while True:
        try:
            return operation()
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                raise RetryExhaustedError(
                    f"{describe}: {attempt} attempt(s) exhausted; last: {exc}"
                ) from exc
            delay = policy.delay_for(attempt, rng)
            if (
                policy.deadline_s is not None
                and clock.now() + delay - started > policy.deadline_s
            ):
                raise RetryExhaustedError(
                    f"{describe}: deadline of {policy.deadline_s}s would be "
                    f"exceeded after attempt {attempt}; last: {exc}"
                ) from exc
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            clock.advance(delay)
            attempt += 1
