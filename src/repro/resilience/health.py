"""Per-store health tracking with a circuit breaker.

A store that keeps failing is *evicted* from device selection for a
cool-down period instead of being probed (and retried against) on every
swap — the swap pipeline stops burning simulated seconds on a device
that left the room.  After the cool-down the breaker goes half-open:
the store is re-admitted for one probe; success closes the circuit,
another failure re-opens it for a fresh cool-down.

All timing uses the owning space's clock, so breaker behaviour is as
deterministic as the rest of the simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class StoreHealth:
    """Rolling health record for one device id."""

    device_id: str
    failure_threshold: int = 3
    cooldown_s: float = 30.0
    consecutive_failures: int = 0
    total_failures: int = 0
    total_successes: int = 0
    state: CircuitState = CircuitState.CLOSED
    open_until: float = 0.0
    opens: int = 0

    def admits(self, now: float) -> bool:
        """Should device selection consider this store right now?"""
        if self.state is CircuitState.CLOSED:
            return True
        if self.state is CircuitState.OPEN and now >= self.open_until:
            self.state = CircuitState.HALF_OPEN
        return self.state is CircuitState.HALF_OPEN

    def record_success(self) -> bool:
        """Returns True when this success closed an open circuit."""
        self.total_successes += 1
        self.consecutive_failures = 0
        if self.state is not CircuitState.CLOSED:
            self.state = CircuitState.CLOSED
            self.open_until = 0.0
            return True
        return False

    def record_failure(self, now: float) -> bool:
        """Returns True when this failure opened the circuit."""
        self.total_failures += 1
        self.consecutive_failures += 1
        if self.state is CircuitState.HALF_OPEN or (
            self.state is CircuitState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = CircuitState.OPEN
            self.open_until = now + self.cooldown_s
            self.opens += 1
            return True
        return False


class HealthRegistry:
    """Health records keyed by device id, with shared breaker settings."""

    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 30.0) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._records: Dict[str, StoreHealth] = {}

    def of(self, device_id: str) -> StoreHealth:
        record = self._records.get(device_id)
        if record is None:
            record = StoreHealth(
                device_id,
                failure_threshold=self.failure_threshold,
                cooldown_s=self.cooldown_s,
            )
            self._records[device_id] = record
        return record

    def get(self, device_id: str) -> Optional[StoreHealth]:
        return self._records.get(device_id)

    def records(self) -> Dict[str, StoreHealth]:
        return dict(self._records)
