"""Replacement-objects: what stands in for a swapped-out cluster.

Paper, Section 3: "A replacement-object for a swap-cluster (i.e.,
ReplacementObject-2, which is simply an array of references) is created
and filled with references to every swap-cluster-proxy referenced by
swap-cluster-2.  Then, every swap-cluster referencing objects contained in
swap-cluster-2 will be made to reference ReplacementObject-2 instead."

Two roles follow from that design:

* it keeps the detached cluster's **outbound** swap-cluster-proxies alive
  (the serialized XML refers to them by array index, so they must survive
  until reload);
* it is the reachability anchor for the swapped cluster: while any
  inbound proxy (and hence the replacement) is reachable, the stored XML
  must be preserved; once the replacement dies, the store may be told to
  drop the XML (Section 3, "Integration with GC Mechanisms").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence


@dataclass(frozen=True)
class SwapLocation:
    """Where one swap epoch of a cluster lives, and how to verify it."""

    device_id: str
    key: str
    digest: str
    xml_bytes: int
    epoch: int

    def describe(self) -> str:
        return (
            f"device={self.device_id} key={self.key} "
            f"({self.xml_bytes} bytes, epoch {self.epoch})"
        )


class ReplacementObject:
    """An array of the detached cluster's outbound swap-cluster-proxies.

    Inbound proxies of a swapped cluster are patched to point here; the
    swap-in path resolves outbound wire references (``<outref index=…/>``)
    through :meth:`outbound_at`.
    """

    __slots__ = ("sid", "oid", "_outbound", "location")

    #: Marker used for cheap structural type tests across the library
    #: (mirrors ``_obi_managed`` / ``_obi_is_proxy``).
    _obi_is_replacement = True

    def __init__(
        self,
        sid: int,
        oid: int,
        outbound: Sequence[Any],
        location: SwapLocation,
    ) -> None:
        self.sid = sid
        #: The replacement's own oid (it occupies a little heap itself).
        self.oid = oid
        self._outbound: List[Any] = list(outbound)
        self.location = location

    def outbound_at(self, index: int) -> Any:
        return self._outbound[index]

    @property
    def outbound(self) -> List[Any]:
        return list(self._outbound)

    def outbound_count(self) -> int:
        return len(self._outbound)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReplacementObject sid={self.sid} outbound={len(self._outbound)} "
            f"at {self.location.describe()}>"
        )
