"""The paper's contribution: transparent Object-Swapping.

Central concepts (paper, Sections 1 and 3):

* **swap-cluster** — a macro-object grouping one or more replication
  clusters; the unit of swapping (:mod:`repro.core.swap_cluster`);
* **swap-cluster-proxy** — the permanent proxy mediating every reference
  between objects in different swap-clusters
  (:mod:`repro.core.swap_proxy`);
* **replacement-object** — the array of outbound proxies left standing in
  for a detached cluster (:mod:`repro.core.replacement`);
* **SwappingManager** — listens to replication events, tracks
  clusters/objects/proxies, performs swap-out/swap-in, and cooperates
  with the local collector (:mod:`repro.core.manager`);
* **Space** — the device-side managed object space gluing heap, roots
  (swap-cluster-0), clustering, manager and events together
  (:mod:`repro.core.space`).
"""

from repro.core.fastpath import (
    DeltaChain,
    FastPathConfig,
    FastPathState,
    PayloadCache,
)
from repro.core.interfaces import SwapStore, ISwapClusterProxy
from repro.core.replacement import ReplacementObject, SwapLocation
from repro.core.swap_cluster import SwapCluster, SwapClusterState
from repro.core.swap_proxy import SwapClusterProxyBase
from repro.core.space import Space
from repro.core.manager import SwappingManager
from repro.core.utils import SwapClusterUtils
from repro.core.restructure import merge_swap_clusters, split_swap_cluster
from repro.core.archive import SwapArchive, ArchivedEpoch
from repro.core.hibernate import hibernate, restore

__all__ = [
    "DeltaChain",
    "FastPathConfig",
    "FastPathState",
    "PayloadCache",
    "SwapStore",
    "ISwapClusterProxy",
    "ReplacementObject",
    "SwapLocation",
    "SwapCluster",
    "SwapClusterState",
    "SwapClusterProxyBase",
    "Space",
    "SwappingManager",
    "SwapClusterUtils",
    "merge_swap_clusters",
    "split_swap_cluster",
    "SwapArchive",
    "ArchivedEpoch",
    "hibernate",
    "restore",
]
