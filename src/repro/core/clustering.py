"""Graph walking and cluster partitioning.

Objects are replicated (and therefore swapped) "in groups (clusters) of
adaptable size" (paper, abstract).  This module discovers the raw managed
object graph and partitions it into object clusters; consecutive clusters
are then grouped into swap-clusters ("a number, also adaptable, of chained
clusters as a single macro-object").

Neighbour discovery follows field order and descends into containers.
Swap-cluster-proxies are *not* neighbours: a proxy already marks a
boundary, so walks stop there.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, Iterator, List, Sequence

from repro.runtime.classext import instance_fields


def managed_neighbors(obj: Any) -> Iterator[Any]:
    """Raw managed objects directly referenced from ``obj``'s fields."""
    for value in instance_fields(obj).values():
        yield from _managed_in_value(value)


def _managed_in_value(value: Any) -> Iterator[Any]:
    cls = type(value)
    if getattr(cls, "_obi_managed", False):
        yield value
        return
    if getattr(cls, "_obi_is_proxy", False):
        return
    if cls in (list, tuple, set, frozenset):
        for item in value:
            yield from _managed_in_value(item)
    elif cls is dict:
        for key, item in value.items():
            yield from _managed_in_value(key)
            yield from _managed_in_value(item)


def walk_graph(root: Any, max_objects: int | None = None) -> List[Any]:
    """Breadth-first list of raw managed objects reachable from ``root``.

    The BFS order is what makes consecutive partitions "chained via
    references", matching the incremental replication order clusters
    would arrive in.
    """
    if not getattr(type(root), "_obi_managed", False):
        from repro.errors import NotManagedError

        raise NotManagedError(
            f"walk_graph needs a @managed root, got {type(root).__name__}"
        )
    seen = {id(root)}
    order = [root]
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for neighbor in managed_neighbors(current):
            marker = id(neighbor)
            if marker in seen:
                continue
            seen.add(marker)
            order.append(neighbor)
            if max_objects is not None and len(order) > max_objects:
                raise ValueError(
                    f"object graph exceeds max_objects={max_objects}"
                )
            queue.append(neighbor)
    return order


def partition_sequential(objects: Sequence[Any], cluster_size: int) -> List[List[Any]]:
    """Chunk an ordered object list into clusters of ``cluster_size``."""
    if cluster_size <= 0:
        raise ValueError("cluster_size must be positive")
    return [
        list(objects[start : start + cluster_size])
        for start in range(0, len(objects), cluster_size)
    ]


def partition_bfs(root: Any, cluster_size: int) -> List[List[Any]]:
    """Walk from ``root`` in BFS order and chunk into clusters."""
    return partition_sequential(walk_graph(root), cluster_size)


def group_clusters(
    clusters: Sequence[List[Any]], clusters_per_swap: int
) -> List[List[List[Any]]]:
    """Group consecutive object clusters into swap-cluster bundles."""
    if clusters_per_swap <= 0:
        raise ValueError("clusters_per_swap must be positive")
    return [
        list(clusters[start : start + clusters_per_swap])
        for start in range(0, len(clusters), clusters_per_swap)
    ]


PartitionStrategy = Callable[[Any, int], List[List[Any]]]

STRATEGIES: dict[str, PartitionStrategy] = {
    "bfs": partition_bfs,
}


def resolve_strategy(name_or_fn: str | PartitionStrategy) -> PartitionStrategy:
    if callable(name_or_fn):
        return name_or_fn
    try:
        return STRATEGIES[name_or_fn]
    except KeyError:
        raise ValueError(
            f"unknown partition strategy {name_or_fn!r}; "
            f"available: {sorted(STRATEGIES)}"
        ) from None
