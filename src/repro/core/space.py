"""The device-side managed object space.

A :class:`Space` is one OBIWAN process on a mobile device: it owns the
byte-accounted heap, the object/cluster tables, swap-cluster-0 (the
process globals — "global variables, i.e. static fields, and variables
defined in static methods, are regarded as belonging to a special
swap-cluster, swap-cluster-0", Section 3), the swap-cluster-proxy tables,
and the :class:`~repro.core.manager.SwappingManager`.

Reference translation — the machinery behind the paper's three generated
code rules — is implemented here so proxies stay small:

* rule (i): a raw reference crossing a boundary is wrapped in a
  swap-cluster-proxy for the receiving cluster;
* rule (ii): a proxy handed across a boundary is reused/re-wrapped for
  the receiving cluster (one proxy per (source, target) pair suffices);
* rule (iii): a proxy referring back into the receiving cluster is
  dismantled to the raw replica.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.clock import Clock, SimulatedClock
from repro.core.clustering import group_clusters, resolve_strategy
from repro.core.manager import SwappingManager
from repro.core.swap_cluster import SwapCluster
from repro.errors import (
    AlreadyManagedError,
    ClusterNotResidentError,
    IntegrityError,
    NotManagedError,
)
from repro.events import (
    ClusterCollectedEvent,
    ClusterReplicatedEvent,
    EventBus,
    GcCompletedEvent,
)
from repro.ids import IdSpace, Oid, ROOT_SID, Sid
from repro.memory.heap import Heap
from repro.memory.sizemodel import DEFAULT_SIZE_MODEL, SizeModel
from repro.runtime.barrier import MUTABLE_CONTAINERS
from repro.runtime.classext import instance_fields
from repro.runtime.registry import TypeRegistry, global_registry

_object_setattr = object.__setattr__

#: Types that can never be (or contain) managed references.
_ATOMIC = frozenset(
    {int, float, str, bool, bytes, bytearray, type(None), complex}
)

_DEFAULT_HEAP_CAPACITY = 16 * 1024 * 1024  # a mid-2000s PDA-class heap


class _CollectedTombstone:
    """Target installed on proxies whose cluster was garbage-collected."""

    __slots__ = ("sid",)

    def __init__(self, sid: Sid) -> None:
        self.sid = sid

    def __getattr__(self, name: str) -> Any:
        raise IntegrityError(
            f"swap-cluster {self.sid} was collected as garbage; a stale "
            f"proxy to it was invoked"
        )


class Space:
    """A managed object space with transparent object-swapping."""

    def __init__(
        self,
        name: str,
        *,
        heap_capacity: int = _DEFAULT_HEAP_CAPACITY,
        high_watermark: float = 0.85,
        low_watermark: float = 0.60,
        registry: TypeRegistry | None = None,
        bus: EventBus | None = None,
        clock: Clock | None = None,
        size_model: SizeModel | None = None,
    ) -> None:
        self.name = name
        self._registry = registry if registry is not None else global_registry()
        self.bus = bus if bus is not None else EventBus()
        self.clock: Clock = clock if clock is not None else SimulatedClock()
        self.size_model = size_model if size_model is not None else DEFAULT_SIZE_MODEL
        self.heap = Heap(
            heap_capacity,
            high_watermark=high_watermark,
            low_watermark=low_watermark,
        )
        self._ids = IdSpace()
        self._objects: Dict[Oid, Any] = {}
        self._sid_by_oid: Dict[Oid, Sid] = {}
        self._clusters: Dict[Sid, SwapCluster] = {ROOT_SID: SwapCluster(ROOT_SID)}
        #: Reuse cache: one proxy per (source_sid, target_oid) pair.
        self._proxy_cache: "weakref.WeakValueDictionary[Tuple[Sid, Oid], Any]" = (
            weakref.WeakValueDictionary()
        )
        #: All live proxies per *target* swap-cluster — the patch set for
        #: swap-out/swap-in.  Keyed by ``id(proxy)`` because proxies
        #: overload ``__eq__``/``__hash__`` for object identity, which
        #: would make a set silently coalesce distinct proxies denoting
        #: the same target.  Weak values play the role of the paper's
        #: proxy finalizers: dead proxies drop out automatically.
        self._proxies_by_target_sid: Dict[
            Sid, "weakref.WeakValueDictionary[int, Any]"
        ] = {}
        self._roots: Dict[str, Any] = {}
        #: class-name -> generated proxy class (bypasses the registry
        #: lock on the invocation fast path)
        self._proxy_class_cache: Dict[str, type] = {}
        self._tick = 0
        #: Installed by a Replicator: resolves <extref> wire references
        #: (unreplicated frontier) when a swapped cluster reloads.
        #: Signature: (attrs: dict[str, str], sid: int) -> handle.
        self.extern_resolver: Optional[Any] = None
        self._manager = SwappingManager(self)
        self.heap.on_exhausted(self._manager.on_heap_exhausted)

    # ------------------------------------------------------------------ basics

    @property
    def manager(self) -> SwappingManager:
        return self._manager

    @property
    def tenant(self) -> Optional[Any]:
        """The fleet tenant this space is bound to (None outside a fleet)."""
        return self._manager.tenant

    @property
    def registry(self) -> TypeRegistry:
        return self._registry

    def _cluster(self, sid: Sid) -> SwapCluster:
        try:
            return self._clusters[sid]
        except KeyError:
            raise NotManagedError(f"no swap-cluster {sid} in space {self.name!r}") from None

    def clusters(self) -> Dict[Sid, SwapCluster]:
        return dict(self._clusters)

    def new_swap_cluster(self) -> SwapCluster:
        sid = self._ids.sids.next()
        cluster = SwapCluster(sid, created_tick=self._tick)
        self._clusters[sid] = cluster
        return cluster

    def object_count(self) -> int:
        return len(self._objects)

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def _record_crossing(self, target_sid: Sid, source_sid: Sid) -> None:
        self._tick += 1
        cluster = self._clusters.get(target_sid)
        if cluster is not None:
            cluster.crossings += 1
            cluster.last_crossing_tick = self._tick

    # ------------------------------------------------------------------ adoption

    def adopt(self, obj: Any, sid: Sid = ROOT_SID) -> Oid:
        """Register a managed instance as a member of swap-cluster ``sid``."""
        cls = type(obj)
        schema = getattr(cls, "_obi_schema", None)
        if schema is None or not getattr(cls, "_obi_managed", False):
            raise NotManagedError(
                f"{cls.__name__} is not @managed; decorate it with "
                f"repro.runtime.managed"
            )
        owner = getattr(obj, "_obi_space", None)
        if owner is not None:
            if owner is self and getattr(obj, "_obi_oid", None) in self._objects:
                raise AlreadyManagedError(
                    f"object oid={obj._obi_oid} already adopted into {self.name!r}"
                )
            if owner is not self:
                raise AlreadyManagedError(
                    f"object already belongs to space {owner.name!r}"
                )
        cluster = self._cluster(sid)
        if not cluster.is_resident:
            raise ClusterNotResidentError(
                f"cannot adopt into swapped-out swap-cluster {sid}"
            )
        oid = self._ids.oids.next()
        # allocate FIRST: a failed allocation must leave no trace of the
        # object in any table
        self.heap.allocate(oid, self.size_model.size_of(obj))
        _object_setattr(obj, "_obi_oid", oid)
        _object_setattr(obj, "_obi_sid", sid)
        _object_setattr(obj, "_obi_space", self)
        cluster.add_member(oid, schema.name)
        self._sid_by_oid[oid] = sid
        self._objects[oid] = obj
        return oid

    def _install_replica(self, obj: Any, oid: Oid, sid: Sid) -> None:
        """Re-register a swapped-in replica under its original oid."""
        _object_setattr(obj, "_obi_oid", oid)
        _object_setattr(obj, "_obi_sid", sid)
        _object_setattr(obj, "_obi_space", self)
        self._objects[oid] = obj
        self._sid_by_oid[oid] = sid
        self._ids.oids.reserve_above(oid)

    def _evict_object(self, oid: Oid) -> int:
        """Remove a collected object entirely (LGC sweep path)."""
        obj = self._objects.pop(oid, None)
        sid = self._sid_by_oid.pop(oid, None)
        if sid is not None:
            self._clusters[sid].remove_member(oid, collected=True)
        if obj is not None:
            _object_setattr(obj, "_obi_space", None)
        return self.heap.free_oid(oid) if self.heap.holds(oid) else 0

    # ------------------------------------------------------------------ ingest

    def ingest(
        self,
        root: Any,
        *,
        cluster_size: int,
        clusters_per_swap: int = 1,
        strategy: str = "bfs",
        root_name: str | None = None,
    ) -> Any:
        """Partition a raw managed object graph into swap-clusters.

        Walks the graph from ``root``, chunks it into object clusters of
        ``cluster_size`` (BFS order keeps chunks chained via references),
        groups every ``clusters_per_swap`` consecutive clusters into one
        swap-cluster, adopts all objects, and rewrites every
        cross-swap-cluster edge into a swap-cluster-proxy.

        Returns the application handle for the root: a proxy with source
        swap-cluster-0.  With ``root_name`` the handle is also installed
        as a root.
        """
        partition = resolve_strategy(strategy)
        object_clusters = partition(root, cluster_size)
        bundles = group_clusters(object_clusters, clusters_per_swap)
        created: List[Sid] = []
        adopted: List[Any] = []
        try:
            for bundle in bundles:
                swap_cluster = self.new_swap_cluster()
                created.append(swap_cluster.sid)
                for members in bundle:
                    cid = self._ids.cids.next()
                    swap_cluster.cids.append(cid)
                    for obj in members:
                        self.adopt(obj, swap_cluster.sid)
                        adopted.append(obj)
                    self.bus.emit(
                        ClusterReplicatedEvent(
                            space=self.name,
                            cid=cid,
                            sid=swap_cluster.sid,
                            object_count=len(members),
                        )
                    )
        except Exception:
            # transactional ingest: a mid-way failure (typically heap
            # exhaustion with no swap device) must leave neither partial
            # clusters nor half-registered objects behind
            for obj in adopted:
                self._evict_object(obj._obi_oid)
                _object_setattr(obj, "_obi_oid", None)
                _object_setattr(obj, "_obi_sid", None)
            for sid in created:
                self._clusters.pop(sid, None)
            raise
        for sid in created:
            for oid in list(self._clusters[sid].oids):
                self._rewrite_boundaries(self._objects[oid])
        handle = self._proxy_for(ROOT_SID, root._obi_oid)
        if root_name is not None:
            self._roots[root_name] = handle
        return handle

    def _rewrite_boundaries(self, obj: Any) -> None:
        owner_sid = obj._obi_sid
        for name, value in instance_fields(obj).items():
            new_value = self._rewrite_value(value, owner_sid)
            if new_value is not value:
                _object_setattr(obj, name, new_value)

    def _rewrite_value(self, value: Any, owner_sid: Sid) -> Any:
        cls = type(value)
        if cls in _ATOMIC:
            return value
        if getattr(cls, "_obi_managed", False):
            value_sid = getattr(value, "_obi_sid", None)
            if value_sid is None or getattr(value, "_obi_space", None) is not self:
                self._absorb(value, owner_sid)
                return value
            if value_sid == owner_sid:
                return value
            return self._proxy_for(owner_sid, value._obi_oid)
        if getattr(cls, "_obi_is_proxy", False):
            # target check first: a proxy pointing back into the owner's
            # cluster is dismantled even if its source tag already
            # matches (restructuring can produce that combination)
            if value._obi_target_sid == owner_sid:
                return self._resident_object(value._obi_target_oid)
            if value._obi_source_sid == owner_sid:
                return value
            return self._proxy_for(owner_sid, value._obi_target_oid)
        if cls is list:
            changed = False
            rebuilt = []
            for item in value:
                new_item = self._rewrite_value(item, owner_sid)
                changed = changed or new_item is not item
                rebuilt.append(new_item)
            if changed:
                value[:] = rebuilt
            return value
        if cls is tuple:
            rebuilt_tuple = tuple(self._rewrite_value(item, owner_sid) for item in value)
            return rebuilt_tuple if any(
                new is not old for new, old in zip(rebuilt_tuple, value)
            ) else value
        if cls is dict:
            changed = False
            rebuilt_dict = {}
            for key, item in value.items():
                new_key = self._rewrite_value(key, owner_sid)
                new_item = self._rewrite_value(item, owner_sid)
                changed = changed or new_key is not key or new_item is not item
                rebuilt_dict[new_key] = new_item
            if changed:
                value.clear()
                value.update(rebuilt_dict)
            return value
        if cls in (set, frozenset):
            rebuilt_items = {self._rewrite_value(item, owner_sid) for item in value}
            if cls is set:
                value.clear()
                value.update(rebuilt_items)
                return value
            return frozenset(rebuilt_items)
        return value

    def _absorb(self, obj: Any, sid: Sid) -> None:
        """Adopt a freshly created managed graph into cluster ``sid``.

        Objects created by application code inside a cluster's methods
        belong to that cluster; absorb the whole unadopted subgraph, then
        mediate any edges it has into other clusters.
        """
        from repro.core.clustering import managed_neighbors

        pending = [obj]
        absorbed = []
        seen = {id(obj)}
        while pending:
            current = pending.pop()
            if getattr(current, "_obi_space", None) is self and getattr(
                current, "_obi_oid", None
            ) in self._objects:
                continue
            self.adopt(current, sid)
            absorbed.append(current)
            for neighbor in managed_neighbors(current):
                if id(neighbor) in seen:
                    continue
                seen.add(id(neighbor))
                if getattr(neighbor, "_obi_space", None) is self:
                    continue
                pending.append(neighbor)
        for current in absorbed:
            self._rewrite_boundaries(current)

    # ------------------------------------------------------------------ roots

    def set_root(self, name: str, value: Any) -> Any:
        """Install a global variable (swap-cluster-0 reference).

        Raw managed values from other swap-clusters are wrapped in a
        source-0 proxy; unadopted managed values are adopted into
        swap-cluster-0 itself.  Returns the stored handle.
        """
        handle = self._translate(value, ROOT_SID)
        if (
            getattr(type(handle), "_obi_managed", False)
            and getattr(handle, "_obi_space", None) is not self
        ):
            self._absorb(handle, ROOT_SID)
        self._roots[name] = handle
        return handle

    def get_root(self, name: str) -> Any:
        return self._roots[name]

    def del_root(self, name: str) -> None:
        del self._roots[name]

    def root_names(self) -> List[str]:
        return list(self._roots)

    def roots(self) -> Dict[str, Any]:
        return dict(self._roots)

    # ------------------------------------------------------------------ translation

    def _resident_object(self, oid: Oid) -> Any:
        obj = self._objects.get(oid)
        if obj is None:
            sid = self._sid_by_oid.get(oid)
            raise ClusterNotResidentError(
                f"object oid={oid} (swap-cluster {sid}) is not resident"
            )
        return obj

    def _translate(self, value: Any, to_sid: Sid) -> Any:
        """Mediate ``value`` for code running in swap-cluster ``to_sid``."""
        cls = type(value)
        if cls in _ATOMIC:
            return value
        if getattr(cls, "_obi_managed", False):
            value_sid = getattr(value, "_obi_sid", None)
            if value_sid is None or getattr(value, "_obi_space", None) is not self:
                self._absorb(value, to_sid)
                return value
            if value_sid == to_sid:
                return value
            return self._proxy_for(to_sid, value._obi_oid)
        if getattr(cls, "_obi_is_proxy", False):
            if value._obi_space is not self:
                raise NotManagedError(
                    f"proxy belongs to space {value._obi_space.name!r}, "
                    f"not {self.name!r}; handles cannot cross spaces"
                )
            if value._obi_target_sid == to_sid:
                return self._resident_object(value._obi_target_oid)
            if value._obi_source_sid == to_sid:
                return value
            return self._proxy_for(to_sid, value._obi_target_oid)
        if cls is list:
            rebuilt = [self._translate(item, to_sid) for item in value]
            return rebuilt if any(
                new is not old for new, old in zip(rebuilt, value)
            ) else value
        if cls is tuple:
            rebuilt_tuple = tuple(self._translate(item, to_sid) for item in value)
            return rebuilt_tuple if any(
                new is not old for new, old in zip(rebuilt_tuple, value)
            ) else value
        if cls is dict:
            rebuilt_dict = {
                self._translate(key, to_sid): self._translate(item, to_sid)
                for key, item in value.items()
            }
            return rebuilt_dict
        if cls in (set, frozenset):
            return cls(self._translate(item, to_sid) for item in value)
        return value

    def _translate_return(self, value: Any, proxy: Any) -> Any:
        """Mediate a value returned through ``proxy`` to its source cluster.

        Implements the assign-mode optimisation: instead of minting a new
        proxy, the marked proxy patches itself to the returned reference
        and returns itself (paper, Section 4, "Optimizing Code for
        Iterations").
        """
        cls = type(value)
        if cls in _ATOMIC:
            return value
        if cls in MUTABLE_CONTAINERS:
            # a mutable container escaping its cluster may be mutated by
            # the receiver without any interceptable write: conservatively
            # invalidate the owning cluster's clean payload
            cluster = proxy._obi_cluster
            if not cluster.dirty_all:
                cluster.mark_dirty()
        to_sid = proxy._obi_source_sid
        if getattr(cls, "_obi_managed", False):
            value_sid = getattr(value, "_obi_sid", None)
            if value_sid is None or getattr(value, "_obi_space", None) is not self:
                self._absorb(value, proxy._obi_target_sid)
                value_sid = value._obi_sid
            if value_sid == to_sid:
                return value
            if proxy._obi_assign_mode:
                # inlined self-patch fast path (paper's iteration
                # optimisation): two slot writes per step, bucket move
                # only on an actual swap-cluster boundary crossing
                old_target_sid = proxy._obi_target_sid
                _object_setattr(proxy, "_obi_target_oid", value._obi_oid)
                _object_setattr(proxy, "_obi_target", value)
                if value_sid != old_target_sid:
                    self._move_patch_bucket(proxy, old_target_sid, value_sid)
                return proxy
            return self._proxy_for(to_sid, value._obi_oid)
        if getattr(cls, "_obi_is_proxy", False):
            target_sid = value._obi_target_sid
            if target_sid == to_sid:
                return self._resident_object(value._obi_target_oid)
            if value._obi_source_sid == to_sid:
                return value
            if proxy._obi_assign_mode:
                self._retarget_proxy(
                    proxy, value._obi_target_oid, target_sid, value._obi_target
                )
                return proxy
            return self._proxy_for(to_sid, value._obi_target_oid)
        return self._translate(value, to_sid)

    # ------------------------------------------------------------------ proxies

    def _proxy_for(self, source_sid: Sid, target_oid: Oid) -> Any:
        """Create or reuse the swap-cluster-proxy for one reference pair."""
        key = (source_sid, target_oid)
        proxy = self._proxy_cache.get(key)
        if proxy is not None:
            return proxy
        target_sid = self._sid_by_oid[target_oid]
        cluster = self._clusters[target_sid]
        class_name = cluster.class_name_by_oid[target_oid]
        proxy_class = self._proxy_class_cache.get(class_name)
        if proxy_class is None:
            proxy_class = self._registry.proxy_class_for(
                self._registry.resolve(class_name)
            )
            self._proxy_class_cache[class_name] = proxy_class
        proxy = proxy_class.__new__(proxy_class)
        target = self._objects.get(target_oid)
        if target is None:
            target = cluster.replacement
            if target is None:
                raise IntegrityError(
                    f"object oid={target_oid} neither resident nor swapped"
                )
        proxy._obi_init(self, source_sid, target_sid, target_oid, target, cluster)
        self._proxy_cache[key] = proxy
        patch_set = self._proxies_by_target_sid.get(target_sid)
        if patch_set is None:
            patch_set = weakref.WeakValueDictionary()
            self._proxies_by_target_sid[target_sid] = patch_set
        patch_set[id(proxy)] = proxy
        return proxy

    def _retarget_proxy(
        self, proxy: Any, new_oid: Oid, new_target_sid: Sid, new_target: Any
    ) -> None:
        """Assign-mode self-patching: point ``proxy`` at a new target.

        This is the paper's iteration optimisation, so it must stay
        cheap: two slot writes per step, with patch-table movement only
        when the cursor actually crosses into a different swap-cluster.
        An assign-mode proxy is never (re)inserted into the reuse cache
        — it is the variable's own proxy, not the canonical pair proxy
        (``SwapClusterUtils.assign`` evicted any cached entry once).
        """
        old_target_sid = proxy._obi_target_sid
        _object_setattr(proxy, "_obi_target_oid", new_oid)
        _object_setattr(proxy, "_obi_target", new_target)
        if new_target_sid != old_target_sid:
            self._move_patch_bucket(proxy, old_target_sid, new_target_sid)

    def _move_patch_bucket(
        self, proxy: Any, old_target_sid: Sid, new_target_sid: Sid
    ) -> None:
        """An assign-mode cursor crossed a boundary: move its patch entry."""
        _object_setattr(proxy, "_obi_target_sid", new_target_sid)
        _object_setattr(proxy, "_obi_cluster", self._clusters[new_target_sid])
        old_set = self._proxies_by_target_sid.get(old_target_sid)
        if old_set is not None:
            old_set.pop(id(proxy), None)
        patch_set = self._proxies_by_target_sid.get(new_target_sid)
        if patch_set is None:
            patch_set = weakref.WeakValueDictionary()
            self._proxies_by_target_sid[new_target_sid] = patch_set
        patch_set[id(proxy)] = proxy

    def make_cursor(self, handle: Any) -> Any:
        """A fresh swap-cluster-0 proxy for iteration variables.

        Unlike :meth:`wrap_for_root`, this never returns the cached
        canonical proxy for the pair: assign-mode iteration (paper §4)
        retargets the variable's own proxy step by step, which must not
        disturb proxies other references share.  The cursor is still
        registered for patching, so swap events keep it correct.
        """
        from repro.core.utils import SwapClusterUtils

        target_oid = SwapClusterUtils.oid_of(handle)
        target_sid = self._sid_by_oid[target_oid]
        cluster = self._clusters[target_sid]
        target_class = self._registry.resolve(cluster.class_name_by_oid[target_oid])
        proxy_class = self._registry.proxy_class_for(target_class)
        proxy = proxy_class.__new__(proxy_class)
        target = self._objects.get(target_oid)
        if target is None:
            target = cluster.replacement
            if target is None:
                raise IntegrityError(
                    f"object oid={target_oid} neither resident nor swapped"
                )
        proxy._obi_init(self, ROOT_SID, target_sid, target_oid, target, cluster)
        patch_set = self._proxies_by_target_sid.get(target_sid)
        if patch_set is None:
            patch_set = weakref.WeakValueDictionary()
            self._proxies_by_target_sid[target_sid] = patch_set
        patch_set[id(proxy)] = proxy
        return proxy

    def live_proxy_count(self) -> int:
        return sum(len(s) for s in self._proxies_by_target_sid.values())

    def wrap_for_root(self, value: Any) -> Any:
        """A swap-cluster-0 handle for any managed value."""
        return self._translate(value, ROOT_SID)

    def resolve(self, handle: Any) -> Any:
        """Raw object behind a handle (swapping in if necessary)."""
        from repro.core.utils import SwapClusterUtils

        return SwapClusterUtils.resolve(handle)

    def attach(self, owner: Any, field: str, value: Any) -> None:
        """Integrity-safe cross-cluster field assignment on a raw object."""
        if getattr(type(owner), "_obi_is_proxy", False):
            setattr(owner, field, value)  # proxies already mediate
            return
        if not getattr(type(owner), "_obi_managed", False):
            raise NotManagedError("attach() owner must be managed")
        _object_setattr(owner, field, self._translate(value, owner._obi_sid))
        owner_cluster = self._clusters.get(owner._obi_sid)
        if owner_cluster is not None:
            # the rewired field lives on ``owner`` alone, so the
            # staleness is attributable to that single member
            owner_cluster.mark_dirty(owner._obi_oid)
        self.heap.resize(owner._obi_oid, self.size_model.size_of(owner))

    # ------------------------------------------------------------------ swapping facade

    def swap_out(self, sid: Sid | None = None, store: Any = None) -> Any:
        if sid is None:
            sid = self._manager.victim_selector(self)
            if sid is None:
                raise ClusterNotResidentError("no swappable swap-cluster available")
        return self._manager.swap_out(sid, store=store)

    def swap_in(self, sid: Sid) -> int:
        return self._manager.swap_in(sid)

    def sid_of(self, handle: Any) -> Sid:
        from repro.core.utils import SwapClusterUtils

        return self._sid_by_oid[SwapClusterUtils.oid_of(handle)]

    def set_priority(self, target: Any, priority: int) -> None:
        """Set a swap-cluster's responsiveness priority.

        ``target`` may be a sid, a managed object, or a proxy;
        ``priority`` is an int (``repro.policy.priority.Priority``
        values: 0 idle, 1 background, 2 foreground).  The
        ``responsiveness`` victim strategy evicts lower priorities
        first, and the degrade ladder's emergency rung never OOM-kills
        foreground clusters while any other candidate exists.
        """
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise TypeError(f"priority must be an int, got {priority!r}")
        sid = target if isinstance(target, int) else self.sid_of(target)
        self._cluster(sid).priority = priority

    @contextmanager
    def pin(self, target: Any) -> Iterator[SwapCluster]:
        """Keep a swap-cluster resident for the duration of a block.

        ``target`` may be a sid, a managed object, or a proxy.  The
        cluster is swapped in if needed and protected from swap-out until
        the block exits.
        """
        sid = target if isinstance(target, int) else self.sid_of(target)
        cluster = self._cluster(sid)
        if cluster.is_swapped:
            self._manager.swap_in(sid)
        cluster.pins += 1
        try:
            yield cluster
        finally:
            cluster.pins -= 1

    def merge_swap_clusters(self, absorber_sid: Sid, absorbed_sid: Sid) -> Sid:
        """Fold one resident swap-cluster into another (see
        :mod:`repro.core.restructure`)."""
        from repro.core.restructure import merge_swap_clusters

        return merge_swap_clusters(self, absorber_sid, absorbed_sid)

    def split_swap_cluster(self, sid: Sid, members: Any) -> Sid:
        """Move members into a fresh swap-cluster (see
        :mod:`repro.core.restructure`)."""
        from repro.core.restructure import split_swap_cluster

        return split_swap_cluster(self, sid, members)

    # ------------------------------------------------------------------ GC facade

    def gc(self, extra_roots: Tuple[Any, ...] = ()) -> Any:
        """Run the local collector (see :mod:`repro.memory.lgc`)."""
        from repro.memory.lgc import LocalCollector

        result = LocalCollector(self).collect(extra_roots=extra_roots)
        self.bus.emit(
            GcCompletedEvent(
                space=self.name,
                collected_objects=result.objects_collected,
                collected_clusters=result.clusters_collected,
                bytes_freed=result.bytes_freed,
            )
        )
        return result

    def _drop_cluster_record(self, sid: Sid) -> None:
        """Remove a collected cluster and tombstone any stale proxies."""
        cluster = self._clusters.pop(sid, None)
        if cluster is None:
            return
        tombstone = _CollectedTombstone(sid)
        stale = self._proxies_by_target_sid.pop(sid, None)
        for proxy in (list(stale.values()) if stale is not None else []):
            proxy._obi_detach(tombstone)
        for oid in list(cluster.oids):
            self._sid_by_oid.pop(oid, None)
        self.bus.emit(
            ClusterCollectedEvent(
                space=self.name, sid=sid, cids=tuple(cluster.cids)
            )
        )

    # ------------------------------------------------------------------ integrity

    def verify_integrity(self) -> None:
        """Check the boundary-mediation and table invariants; raise on any
        violation.  Used heavily by tests (including property-based ones).
        """
        problems: List[str] = []
        for oid, obj in self._objects.items():
            owner_sid = getattr(obj, "_obi_sid", None)
            if owner_sid is None or self._sid_by_oid.get(oid) != owner_sid:
                problems.append(f"object oid={oid}: sid bookkeeping mismatch")
                continue
            for name, value in instance_fields(obj).items():
                self._check_value(value, owner_sid, f"oid={oid}.{name}", problems)
            if not self.heap.holds(oid):
                problems.append(f"object oid={oid}: resident but not on heap")
        for name, value in self._roots.items():
            self._check_value(value, ROOT_SID, f"root {name!r}", problems)
        for sid, cluster in self._clusters.items():
            if cluster.is_resident:
                missing = [oid for oid in cluster.oids if oid not in self._objects]
                if missing:
                    problems.append(
                        f"swap-cluster {sid}: resident but objects missing: {missing}"
                    )
            else:
                present = [oid for oid in cluster.oids if oid in self._objects]
                if present:
                    problems.append(
                        f"swap-cluster {sid}: swapped but objects resident: {present}"
                    )
                if cluster.replacement is None or cluster.location is None:
                    problems.append(
                        f"swap-cluster {sid}: swapped without replacement/location"
                    )
        if problems:
            raise IntegrityError("; ".join(problems))

    def _check_value(
        self, value: Any, owner_sid: Sid, where: str, problems: List[str]
    ) -> None:
        cls = type(value)
        if cls in _ATOMIC:
            return
        if getattr(cls, "_obi_managed", False):
            value_sid = getattr(value, "_obi_sid", None)
            if getattr(value, "_obi_space", None) is not self:
                problems.append(f"{where}: raw reference to foreign/unadopted object")
            elif value_sid != owner_sid:
                problems.append(
                    f"{where}: raw cross-cluster reference "
                    f"({owner_sid} -> {value_sid}); must be a proxy"
                )
            return
        if getattr(cls, "_obi_is_proxy", False):
            if value._obi_space is not self:
                problems.append(f"{where}: proxy belongs to another space")
                return
            if value._obi_source_sid != owner_sid:
                problems.append(
                    f"{where}: proxy source {value._obi_source_sid} does not "
                    f"match holder cluster {owner_sid}"
                )
            if value._obi_target_sid == owner_sid:
                problems.append(
                    f"{where}: proxy points back into its own cluster "
                    f"(should have been dismantled)"
                )
            target_sid = self._sid_by_oid.get(value._obi_target_oid)
            if target_sid != value._obi_target_sid:
                problems.append(
                    f"{where}: proxy target oid={value._obi_target_oid} not in "
                    f"cluster {value._obi_target_sid}"
                )
            return
        if cls in (list, tuple, set, frozenset):
            for item in value:
                self._check_value(item, owner_sid, where + "[]", problems)
            return
        if cls is dict:
            for key, item in value.items():
                self._check_value(key, owner_sid, where + ".key", problems)
                self._check_value(item, owner_sid, where + "[]", problems)

    # ------------------------------------------------------------------ misc

    def describe(self) -> str:
        lines = [
            f"Space {self.name!r}: {len(self._objects)} resident objects, "
            f"{len(self._clusters)} swap-clusters, heap "
            f"{self.heap.used}/{self.heap.capacity} bytes "
            f"({self.heap.ratio:.0%})"
        ]
        for sid in sorted(self._clusters):
            cluster = self._clusters[sid]
            lines.append(
                f"  sc-{sid}: {cluster.state.value}, {len(cluster.oids)} objects, "
                f"{cluster.crossings} crossings, epoch {cluster.epoch}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Space {self.name!r} objects={len(self._objects)}>"
