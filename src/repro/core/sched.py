"""Event-driven asynchronous swap scheduling on the simulated clock.

The paper's swap protocol is strictly synchronous: a proxy fault stalls
the application until the cluster's bytes round-trip the link, and a
victim write-back stalls the fault that triggered it.  Now that deltas
and compression shrank payloads ~100x, *latency* — not bytes — dominates
fault cost.  This module hides it:

* every swap I/O becomes a resumable :class:`SwapOp` (FETCH, SHIP,
  DELTA_SHIP, RELOAD_VERIFY) whose transfer time lands on a
  :class:`~repro.comm.pipeline.TransferScheduler` channel instead of the
  global clock, and whose completion is retired from a clock-ordered
  :class:`CompletionQueue` with deterministic ``(time, seq)`` ordering;
* a :class:`Prefetcher` learns likely-next clusters from the proxy
  reference graph (outbound edges of the faulting cluster) and from
  fault-succession history, and issues speculative fetches on idle
  channels *while the demand fetch is still in flight* — by the time the
  application touches the next cluster, its payload is usually already
  local and the residual stall is ~0;
* victim write-back (:meth:`SwappingManager.ensure_room` inside a
  fault) rides the same channel pool, overlapping with in-flight
  fetches; the drain-before-fetch invariant survives *per physical
  link*: the scheduler's per-link busy windows serialize a fetch behind
  any ship still in flight to the same store.

The degrade ladder always wins: at or above the configured pressure
rung, no new speculative fetches are issued and buffered speculative
payloads are shed (:meth:`AsyncSwapScheduler.shed_speculative`).

**Sync equivalence.**  With ``channels=1, prefetch=off``
(:attr:`AsyncSchedConfig.serial`), every op executes inline on the
global clock through exactly the legacy code path — same stats, same
events, same clock, byte-identical results — while the op ledger still
records the lifecycle.  This is the property the equivalence suite and
``repro.bench.async_sched`` pin.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.comm.pipeline import TransferScheduler
from repro.errors import TransportError, UnknownKeyError
from repro.ids import Sid
from repro.wire.canonical import verify_payload


class SwapOpKind(enum.Enum):
    """What a scheduled swap operation moves."""

    FETCH = "fetch"
    SHIP = "ship"
    DELTA_SHIP = "delta-ship"
    RELOAD_VERIFY = "reload-verify"
    #: post-reload stale-copy drop (a 64-byte control message per
    #: replica) — deferred onto a channel so it never stalls the fault
    INVALIDATE = "invalidate"


class SwapOpState(enum.Enum):
    """Lifecycle of a :class:`SwapOp` (PENDING → IN_FLIGHT → DONE)."""

    PENDING = "pending"
    IN_FLIGHT = "in-flight"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class SwapOp:
    """One resumable swap operation on the simulated timeline.

    Ops are issued at ``issued_s`` (global clock), occupy transfer
    channels for ``busy_s`` simulated seconds, and complete at
    ``complete_s`` — possibly *after* the global now, in which case they
    sit IN_FLIGHT on the completion queue until the clock passes them.
    Retry/failover state is per-op (``attempts``/``failovers``), not a
    property of the blocking call stack.
    """

    seq: int
    kind: SwapOpKind
    sid: Sid
    key: str = ""
    speculative: bool = False
    state: SwapOpState = SwapOpState.PENDING
    device_id: str = ""
    issued_s: float = 0.0
    start_s: float = 0.0
    complete_s: float = 0.0
    #: total channel occupancy across every attempt (what a serial
    #: schedule would have stalled for)
    busy_s: float = 0.0
    attempts: int = 0
    failovers: int = 0
    #: speculative fetches buffer their verified payload until consumed
    payload: Optional[str] = None
    error: Optional[str] = None


class CompletionQueue:
    """Clock-ordered op completions with stable ``(time, seq)`` ordering.

    Two ops completing at the same simulated instant retire in issue
    order — the tie-break that keeps seeded runs byte-identical across
    platforms (heap order on bare floats would depend on push order
    *and* comparison quirks; the explicit ``seq`` removes both).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, SwapOp]] = []

    def push(self, op: SwapOp) -> None:
        heapq.heappush(self._heap, (op.complete_s, op.seq, op))

    def pop_due(self, now: float) -> List[SwapOp]:
        """Remove and return every op completing at or before ``now``."""
        due: List[SwapOp] = []
        while self._heap and self._heap[0][0] <= now:
            due.append(heapq.heappop(self._heap)[2])
        return due

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


@dataclass(frozen=True)
class AsyncSchedConfig:
    """Tuning for :class:`AsyncSwapScheduler`."""

    #: transfer channels shared by demand fetches, speculative fetches
    #: and victim write-back
    channels: int = 4
    #: learn touch patterns and issue speculative fetches
    prefetch: bool = True
    #: how many likely-next clusters to keep warm per fault
    prefetch_depth: int = 3
    #: cap on buffered speculative payloads
    max_speculative: int = 8
    #: fault-succession history window (per-edge counts decay by table
    #: eviction, not time)
    history: int = 128
    #: degrade-ladder rung at or above which prefetch stops and buffered
    #: speculative payloads are shed (1 = COMPRESS_LOCAL: the moment the
    #: ladder starts defending memory, speculation yields)
    prefetch_pressure_limit: int = 1
    #: pace fault admission: a fault does not return until at least one
    #: transfer channel is idle again.  Without this the app races ahead
    #: during prefetch-hit streaks while every fault enqueues deferred
    #: ships/drops, and the accumulated link debt lands on whichever
    #: fault finally misses — a fat stall tail (and unbounded payload
    #: buffering).  The pacing wait is real flow control, charged to the
    #: fault that incurred it.
    backpressure: bool = True

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError("async scheduler needs at least one channel")
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be positive")

    @property
    def serial(self) -> bool:
        """True when the scheduler must be bit-identical to the legacy
        synchronous path (one channel, no speculation)."""
        return self.channels == 1 and not self.prefetch


@dataclass
class SchedStats:
    """What asynchronous scheduling did (simulated seconds throughout)."""

    ops_issued: int = 0
    demand_fetches: int = 0
    #: simulated seconds faults actually stalled on demand fetches
    demand_stall_s: float = 0.0
    #: simulated seconds faults stalled waiting for an in-flight
    #: speculative fetch to land (usually ~0)
    hit_stall_s: float = 0.0
    #: stall seconds the overlap removed vs a serial schedule
    stall_saved_s: float = 0.0
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    #: speculative payloads fetched but never consumed (invalidated by a
    #: re-swap-out / drop, or stale-keyed at consume time)
    prefetch_waste: int = 0
    #: speculative payloads shed under pressure (the ladder won)
    prefetch_cancelled: int = 0
    #: in-flight speculative transfers aborted mid-window because a
    #: demand fetch needed the radio (their remaining link time was
    #: given back — demand always preempts speculation)
    prefetch_preempted: int = 0
    #: speculative payloads demoted to make room for fresher predictions
    #: (buffered longest without being touched)
    prefetch_demoted: int = 0
    #: speculative fetch attempts that failed in flight (no retries —
    #: speculation is not worth a backoff loop)
    prefetch_failed: int = 0
    writebacks: int = 0
    #: stale-copy invalidations taken off the fault path and onto
    #: transfer channels (each was a serial control round-trip before)
    stale_drops: int = 0
    #: simulated seconds faults waited for a free channel (flow control:
    #: the price of keeping the deferred-I/O backlog bounded)
    backpressure_stall_s: float = 0.0
    reloads: int = 0
    max_queue_depth: int = 0

    @property
    def waste_ratio(self) -> float:
        """Fraction of issued speculative fetches that bought nothing."""
        if not self.prefetch_issued:
            return 0.0
        return 1.0 - self.prefetch_hits / self.prefetch_issued

    @property
    def hit_ratio(self) -> float:
        if not self.prefetch_issued:
            return 0.0
        return self.prefetch_hits / self.prefetch_issued


class Prefetcher:
    """Predict likely-next swapped clusters from touch patterns.

    Two signals, both deterministic:

    * **reference edges** — the proxy graph the write barrier and
      translation maintain: a cluster's outbound swap-cluster-proxies
      name exactly the clusters a traversal can reach next (ranked by
      crossing recency, most recently crossed first);
    * **succession history** — which cluster actually faulted after
      which (a bounded per-edge counter table), dominant once the
      workload has looped once.

    ``predict`` breadth-first-expands the union of both signals so a
    deep ``prefetch_depth`` keeps a whole pointer-chase pipeline warm.
    """

    def __init__(self, space: Any, history: int = 128) -> None:
        self._space = space
        self._successors: Dict[Sid, Dict[Sid, int]] = {}
        self._recent: deque = deque(maxlen=max(2, history))
        self._last_fault: Optional[Sid] = None

    def record_fault(self, sid: Sid) -> None:
        """Note that ``sid`` faulted (after whatever faulted last)."""
        last = self._last_fault
        if last is not None and last != sid:
            counts = self._successors.setdefault(last, {})
            counts[sid] = counts.get(sid, 0) + 1
        self._last_fault = sid
        self._recent.append(sid)

    def predict(self, sid: Sid, limit: int) -> List[Sid]:
        """Up to ``limit`` swapped clusters likely to fault next."""
        out: List[Sid] = []
        seen = {sid}
        frontier = [sid]
        while frontier and len(out) < limit:
            next_frontier: List[Sid] = []
            for source in frontier:
                for candidate in self._neighbors(source):
                    if candidate in seen:
                        continue
                    seen.add(candidate)
                    out.append(candidate)
                    next_frontier.append(candidate)
                    if len(out) >= limit:
                        return out
            frontier = next_frontier
        return out

    def _neighbors(self, source: Sid) -> List[Sid]:
        """Swapped successors of ``source``: history first (by observed
        count), then unobserved reference-edge targets (by crossing
        recency); ties break on sid for determinism."""
        space = self._space
        clusters = space._clusters

        def swapped(sid: Sid) -> bool:
            cluster = clusters.get(sid)
            return (
                cluster is not None
                and cluster.is_swapped
                and cluster.location is not None
            )

        ranked: List[Sid] = []
        history = self._successors.get(source, {})
        for sid, _count in sorted(
            history.items(), key=lambda item: (-item[1], item[0])
        ):
            if swapped(sid):
                ranked.append(sid)
        edges: List[Tuple[int, Sid]] = []
        for target_sid, bucket in sorted(
            space._proxies_by_target_sid.items()
        ):
            if target_sid == source or target_sid in history:
                continue
            if not swapped(target_sid):
                continue
            if any(
                proxy._obi_source_sid == source
                for proxy in list(bucket.values())
            ):
                cluster = clusters[target_sid]
                edges.append((-cluster.last_crossing_tick, target_sid))
        ranked.extend(sid for _tick, sid in sorted(edges))
        return ranked


class AsyncSwapScheduler:
    """Turn the manager's blocking fault path into scheduled ops.

    Owned by a :class:`~repro.core.manager.SwappingManager`
    (``manager.sched``, via ``enable_async_scheduler()``).  The manager
    routes demand fetches through :meth:`acquire`, victim/mirror ships
    through :meth:`ship_channel`, and reload completion through
    :meth:`note_reload`; everything else (journal, placement,
    resilience retries, degrade routing) runs unchanged around the
    scheduled windows.
    """

    def __init__(self, manager: Any, config: AsyncSchedConfig) -> None:
        self.manager = manager
        self.config = config
        self.stats = SchedStats()
        self.queue = CompletionQueue()
        clock = manager._space.clock
        self.transfers = TransferScheduler(clock, config.channels)
        self.prefetcher = Prefetcher(manager._space, config.history)
        #: sid -> in-flight/buffered speculative FETCH op
        self._speculative: Dict[Sid, SwapOp] = {}
        #: sid -> (link, ChannelSlot) of the speculative booking, kept
        #: until consumed/shed so a demand fetch can preempt its window
        self._spec_slots: Dict[Sid, Tuple[Any, Any]] = {}
        self._seq = 0

    # -- basics ------------------------------------------------------------

    @property
    def serial(self) -> bool:
        return self.config.serial

    @property
    def clock(self) -> Any:
        return self.transfers.clock

    def _new_op(self, kind: SwapOpKind, sid: Sid, **kw: Any) -> SwapOp:
        self._seq += 1
        op = SwapOp(
            seq=self._seq, kind=kind, sid=sid,
            issued_s=self.clock.now(), **kw,
        )
        self.stats.ops_issued += 1
        return op

    def _enqueue(self, op: SwapOp) -> None:
        op.state = SwapOpState.IN_FLIGHT
        self.queue.push(op)
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(self.queue)
        )

    def retire_due(self) -> List[SwapOp]:
        """Retire every op whose completion time the clock has passed."""
        done = self.queue.pop_due(self.clock.now())
        for op in done:
            if op.state is SwapOpState.IN_FLIGHT:
                op.state = SwapOpState.DONE
        return done

    def in_flight_fetches(self) -> int:
        """Speculative fetches issued but not yet consumed or shed."""
        return len(self._speculative)

    def overlap_ratio(self) -> float:
        """How much of the channel-seconds never stalled the app: 0 =
        fully serial, → 1 = fully hidden behind other work."""
        busy = self.transfers.stats.serial_s + self.transfers.stats.failed_s
        if busy <= 0.0:
            return 0.0
        stalled = (
            self.stats.demand_stall_s
            + self.stats.hit_stall_s
            + self.stats.backpressure_stall_s
        )
        return max(0.0, min(1.0, 1.0 - stalled / busy))

    def drain(self) -> float:
        """Barrier: advance the clock past every in-flight op and retire
        the queue.  Benchmarks call this before final accounting."""
        waited = self.transfers.drain()
        self.retire_due()
        return waited

    # -- demand fetch ------------------------------------------------------

    def acquire(
        self,
        sid: Sid,
        location: Any,
        holders: List[Any],
        root_span: Any,
    ) -> Tuple[
        Optional[str], str, int, List[str], Optional[Exception], List[Any]
    ]:
        """Resolve a faulting cluster's payload as scheduled FETCH ops.

        Returns ``(xml_text, source_device_id, attempt_index,
        fetch_errors, corrupt, corrupt_holders)`` with exactly the
        semantics of the legacy holder loop (corrupt copies quarantined,
        transport errors collected for the failure message).  The global
        clock advances only by the *residual* stall: demand transfer
        time not hidden behind already-elapsed time, or ~0 when a
        speculative fetch already landed the payload.
        """
        manager = self.manager
        clock = self.clock
        now = clock.now()
        self.prefetcher.record_fault(sid)

        hit = self._consume_speculative(sid, location)
        if hit is not None:
            if not self.serial:
                self._issue_prefetches(sid, horizon=hit.complete_s)
            stall = max(0.0, hit.complete_s - clock.now())
            if stall > 0.0:
                clock.advance(stall)
            self.stats.prefetch_hits += 1
            self.stats.hit_stall_s += stall
            self.stats.stall_saved_s += max(0.0, hit.busy_s - stall)
            root_span.set_tag("sched", "prefetch-hit")
            self._apply_backpressure()
            self.retire_due()
            return hit.payload, hit.device_id, 0, [], None, []

        op = self._new_op(SwapOpKind.FETCH, sid, key=location.key)
        fetch_errors: List[str] = []
        corrupt: Optional[Exception] = None
        corrupt_holders: List[Any] = []
        not_before = now
        text: Optional[str] = None
        source = ""
        used_index = 0
        complete = now
        if not self.serial and len(holders) > 1:
            # a demand miss should dodge radios clogged by in-flight
            # ships/speculation: try the replica whose link frees first
            # (stable on the original order, so seeded runs stay
            # deterministic and failover accounting keeps meaning)
            holders = [
                holder for _key, _idx, holder in sorted(
                    (
                        self.transfers.link_free_at(
                            getattr(holder, "_link", None)
                        ),
                        index,
                        holder,
                    )
                    for index, holder in enumerate(holders)
                )
            ]
        for attempt_index, holder in enumerate(holders):
            if not self.serial:
                # demand always wins the radio: abort any speculative
                # transfer still occupying this holder's link so the
                # real fetch starts as early as physics allows
                self._preempt_speculation(getattr(holder, "_link", None))
            with self._attempt_channel(holder, not_before) as slot:
                candidate, error, corrupt_exc = manager._fetch_one(
                    holder, location, sid
                )
            op.attempts += 1
            if slot is not None:
                op.busy_s += slot.duration_s
                not_before = max(not_before, slot.end_s)
                complete = slot.end_s
            else:
                complete = clock.now()
            if candidate is None:
                op.failovers += 1
                fetch_errors.append(error)
                if corrupt_exc is not None:
                    corrupt = corrupt_exc
                    corrupt_holders.append(holder)
                continue
            text = candidate
            source = holder.device_id
            used_index = attempt_index
            op.device_id = source
            break
        op.start_s = now
        op.complete_s = complete
        if text is None:
            op.state = SwapOpState.FAILED
            op.error = "; ".join(fetch_errors) or "no holders"
            # the failed attempts really elapsed: simulated reality must
            # reflect them before the caller raises
            stall = max(0.0, complete - clock.now())
            if stall > 0.0:
                clock.advance(stall)
            self.retire_due()
            return None, "", 0, fetch_errors, corrupt, corrupt_holders
        if not self.serial:
            # speculate on the *next* clusters while this fetch is still
            # in flight — issued at fault time, they overlap with the
            # demand transfer on other channels/links
            self._issue_prefetches(sid, horizon=complete)
            root_span.set_tag("sched", "demand")
        stall = max(0.0, complete - clock.now())
        if stall > 0.0:
            clock.advance(stall)
        self.stats.demand_fetches += 1
        self.stats.demand_stall_s += stall
        self.stats.stall_saved_s += max(0.0, op.busy_s - stall)
        self._enqueue(op)
        self._apply_backpressure()
        self.retire_due()
        return text, source, used_index, fetch_errors, corrupt, corrupt_holders

    def _apply_backpressure(self) -> float:
        """Hold the fault until a transfer channel is idle (flow control).

        Bounds how much deferred I/O the app can have outstanding: the
        per-fault wait amortizes link debt that would otherwise pile up
        through prefetch-hit streaks and land, in one lump, on the next
        demand miss.  No-op when a channel is already free, in serial
        mode, or with ``backpressure=False``.
        """
        if self.serial or not self.config.backpressure:
            return 0.0
        pace = self.transfers.next_channel_free() - self.clock.now()
        if pace <= 0.0:
            return 0.0
        self.clock.advance(pace)
        self.stats.backpressure_stall_s += pace
        return pace

    def _attempt_channel(self, holder: Any, not_before: float):
        """A transfer-channel window for one fetch attempt (inline when
        serial — the legacy path, byte for byte)."""
        if self.serial:
            return nullcontext()
        return self.transfers.channel(
            getattr(holder, "_link", None), not_before=not_before
        )

    # -- speculation -------------------------------------------------------

    def _preempt_speculation(self, link: Any) -> None:
        """Cancel in-flight speculative transfers clogging ``link``.

        Completed speculation (payload already landed) is never touched;
        only windows whose tail the scheduler can still reclaim are
        aborted — the payload is lost mid-transfer, the radio frees at
        the cut, and the op retires CANCELLED/"preempted".
        """
        if link is None:
            return
        now = self.clock.now()
        for sid in list(self._spec_slots):
            spec_link, slot = self._spec_slots[sid]
            if slot.end_s <= now:
                continue  # landed: the buffered payload is good
            underlying = self.transfers._underlying
            if underlying(spec_link) is not underlying(link):
                continue
            if self.transfers.cancel_remainder(spec_link, slot, now) <= 0.0:
                continue
            self._spec_slots.pop(sid, None)
            op = self._speculative.pop(sid, None)
            if op is not None:
                op.state = SwapOpState.CANCELLED
                op.error = "preempted"
                op.payload = None
                op.complete_s = now
            self.stats.prefetch_preempted += 1

    def _consume_speculative(
        self, sid: Sid, location: Any
    ) -> Optional[SwapOp]:
        op = self._speculative.pop(sid, None)
        self._spec_slots.pop(sid, None)
        if op is None:
            return None
        if op.payload is None or op.key != location.key:
            # failed in flight, or the cluster re-swapped under a new
            # epoch since the speculation was issued: useless buffer
            op.state = SwapOpState.CANCELLED
            self.stats.prefetch_waste += 1
            return None
        op.state = SwapOpState.DONE
        return op

    def _issue_prefetches(
        self, sid: Sid, horizon: Optional[float] = None
    ) -> None:
        """Speculate on likely-next clusters after a fault on ``sid``.

        ``horizon`` is the demand op's completion time: a channel counts
        as idle if it frees up anywhere inside the stall window the app
        is already paying for (with zero-cost compute, *every* channel
        is briefly booked at the fault instant — gating on the bare
        ``now`` would starve speculation entirely).
        """
        if not self.config.prefetch:
            return
        manager = self.manager
        ladder = manager.ladder
        if (
            ladder is not None
            and int(ladder.rung) >= self.config.prefetch_pressure_limit
        ):
            # the degrade ladder always wins: no new speculation, and
            # whatever is buffered goes back to the allocator
            self.shed_speculative("pressure")
            return
        space = manager._space
        when = self.clock.now() if horizon is None else horizon
        for target in self.prefetcher.predict(
            sid, self.config.prefetch_depth
        ):
            if target in self._speculative or target in manager._loading:
                continue
            if len(self._speculative) >= self.config.max_speculative:
                # the buffer is full of older speculation: demote the
                # stalest entry rather than starve fresh predictions —
                # a pinned-full buffer of far-future targets would stop
                # all prefetching for the likely-next clusters
                oldest = min(
                    self._speculative, key=lambda s: self._speculative[s].seq
                )
                demoted = self._speculative.pop(oldest)
                demoted.state = SwapOpState.CANCELLED
                demoted.error = "demoted"
                demoted.payload = None
                self._cancel_slot(oldest)
                self.stats.prefetch_demoted += 1
            cluster = space._clusters.get(target)
            if (
                cluster is None
                or not cluster.is_swapped
                or cluster.location is None
            ):
                continue
            holders = manager._bindings.get(target) or []
            if not holders:
                continue
            if not self.transfers.idle_channel_at(when):
                break  # speculation only rides idle channels
            self._prefetch_one(cluster, holders, when)

    def _prefetch_one(
        self, cluster: Any, holders: List[Any], when: float
    ) -> None:
        manager = self.manager
        location = cluster.location
        if manager.resilience is not None and len(holders) > 1:
            holders = manager.resilience.rank_replicas(holders)
        # least-loaded link first among the ranked replicas, so the
        # speculative transfer lands on an idle radio when one exists
        holder = min(
            enumerate(holders),
            key=lambda item: (
                self.transfers.link_free_at(getattr(item[1], "_link", None)),
                item[0],
            ),
        )[1]
        free_at = self.transfers.link_free_at(
            getattr(holder, "_link", None)
        )
        if free_at > when:
            # even the least-loaded replica's radio is booked past the
            # stall window: queuing speculation behind that backlog
            # would delay the next demand fetch or ship on the link —
            # the exact tail inflation this scheduler exists to remove
            return
        op = self._new_op(
            SwapOpKind.FETCH,
            cluster.sid,
            key=location.key,
            speculative=True,
            device_id=holder.device_id,
        )
        self.stats.prefetch_issued += 1
        text: Optional[str] = None
        with manager._obs_span(
            "sched.prefetch", sid=cluster.sid, device=holder.device_id
        ):
            # start no earlier than the stall window's end: the window
            # itself belongs to demand traffic, and a speculative
            # transfer pushed past it delays the link by at most one
            # payload before the radio is contended again
            with self.transfers.channel(
                getattr(holder, "_link", None), not_before=when
            ) as slot:
                try:
                    candidate = holder.fetch(location.key)
                except (TransportError, UnknownKeyError) as exc:
                    op.error = str(exc)
                else:
                    if verify_payload(candidate, location.digest):
                        text = candidate
                    else:
                        op.error = "digest mismatch"
        op.attempts = 1
        op.start_s = slot.start_s
        op.complete_s = slot.end_s
        op.busy_s = slot.duration_s
        if text is None:
            # speculation gets no retry loop: a miss costs nothing but
            # the channel window it burned
            op.state = SwapOpState.FAILED
            self.stats.prefetch_failed += 1
            return
        op.payload = text
        self._speculative[cluster.sid] = op
        self._spec_slots[cluster.sid] = (
            getattr(holder, "_link", None), slot
        )
        self._enqueue(op)

    def _cancel_slot(self, sid: Sid) -> None:
        """Give an abandoned speculative booking's remaining link time
        back to the scheduler (no-op when it already completed)."""
        entry = self._spec_slots.pop(sid, None)
        if entry is None:
            return
        link, slot = entry
        if slot.end_s > self.clock.now():
            self.transfers.cancel_remainder(link, slot, self.clock.now())

    def invalidate(self, sid: Sid, reason: str = "invalidated") -> None:
        """Drop a buffered speculative payload (the cluster re-swapped,
        was dropped, or its epoch moved): it can never be consumed."""
        op = self._speculative.pop(sid, None)
        if op is not None:
            op.state = SwapOpState.CANCELLED
            op.error = reason
            self._cancel_slot(sid)
            self.stats.prefetch_waste += 1

    def shed_speculative(self, reason: str = "pressure") -> int:
        """Cancel every buffered speculative payload; returns the count.

        Called when pressure rises — speculative buffers are the first
        thing the degrade ladder reclaims, and any still-transmitting
        window is aborted so the radios free up too.
        """
        shed = len(self._speculative)
        for sid, op in list(self._speculative.items()):
            op.state = SwapOpState.CANCELLED
            op.error = reason
            op.payload = None
            self._cancel_slot(sid)
        self._speculative.clear()
        self.stats.prefetch_cancelled += shed
        return shed

    def on_pressure(self, rung: int) -> None:
        """Ladder hook: at/above the configured rung, speculation yields."""
        if rung >= self.config.prefetch_pressure_limit:
            self.shed_speculative("pressure")

    # -- write-back --------------------------------------------------------

    @contextmanager
    def ship_channel(self, holder: Any, kind: str = "ship") -> Iterator[None]:
        """A scheduled window for one victim/mirror ship.

        In serial mode this is exactly the legacy behavior (the fast
        path's own pipeline channel, or plain inline execution); the op
        ledger still records the lifecycle either way.  A ship that
        raises is marked FAILED and re-raised unchanged — the caller's
        failover logic is none the wiser.
        """
        manager = self.manager
        op_kind = (
            SwapOpKind.DELTA_SHIP if kind == "delta" else SwapOpKind.SHIP
        )
        op = self._new_op(op_kind, -1, device_id=holder.device_id)
        if self.serial:
            fastpath = manager.fastpath
            scheduler = fastpath.scheduler if fastpath is not None else None
            inner = (
                scheduler.channel(getattr(holder, "_link", None))
                if scheduler is not None
                else nullcontext()
            )
            start = self.clock.now()
            try:
                with inner:
                    yield
            except BaseException:
                op.state = SwapOpState.FAILED
                raise
            op.start_s = start
            op.complete_s = self.clock.now()
            self.stats.writebacks += 1
            self._enqueue(op)
            self.retire_due()
            return
        try:
            with self.transfers.channel(
                getattr(holder, "_link", None)
            ) as slot:
                yield
        except BaseException:
            op.state = SwapOpState.FAILED
            op.start_s = slot.start_s
            op.complete_s = slot.end_s
            op.busy_s = slot.duration_s
            raise
        op.start_s = slot.start_s
        op.complete_s = slot.end_s
        op.busy_s = slot.duration_s
        self.stats.writebacks += 1
        self._enqueue(op)
        self.retire_due()

    def defer_drops(
        self, sid: Sid, keys: List[str], holders: List[Any]
    ) -> bool:
        """Schedule post-reload stale-copy drops as INVALIDATE ops.

        After a successful reload the remote copies are dead weight
        (epochs prevent reuse) — but the legacy path pays one serial
        control round-trip per replica *on the fault*, which on slow
        radios dwarfs the fetch itself.  Here each drop rides a transfer
        channel: per-link busy windows still serialize it against any
        in-flight fetch from the same store, the faulting thread never
        waits.  Returns ``False`` in serial mode — the caller must drop
        inline, byte-identical to legacy.
        """
        if self.serial:
            return False
        for key in keys:
            for holder in holders:
                op = self._new_op(
                    SwapOpKind.INVALIDATE,
                    sid,
                    key=key,
                    device_id=holder.device_id,
                )
                op.attempts = 1
                with self.transfers.channel(
                    getattr(holder, "_link", None)
                ) as slot:
                    try:
                        holder.drop(key)
                    except (TransportError, UnknownKeyError) as exc:
                        op.error = str(exc)
                op.start_s = slot.start_s
                op.complete_s = slot.end_s
                op.busy_s = slot.duration_s
                if op.error is not None:
                    # unreachable device: the copy is orphaned, by design
                    op.state = SwapOpState.FAILED
                    continue
                self.stats.stale_drops += 1
                self._enqueue(op)
        self.retire_due()
        return True

    # -- reload ------------------------------------------------------------

    def note_reload(self, sid: Sid) -> None:
        """Record the RELOAD-VERIFY stage (decode + install + proxy
        patch) as a completed op.  Pure CPU: zero simulated cost, so it
        completes at the current instant and retires immediately."""
        op = self._new_op(SwapOpKind.RELOAD_VERIFY, sid)
        op.start_s = op.complete_s = self.clock.now()
        self.stats.reloads += 1
        self._enqueue(op)
        self.retire_due()
