"""``SwapClusterUtils``: the static helper surface of the paper's Section 4.

The paper factors behaviour common to all swap-cluster-proxy types into a
``SwapClusterUtils`` class with static methods; the application-visible
piece is ``assign``, the iteration optimisation: a proxy held by a
swap-cluster-0 variable is marked so that, instead of minting a fresh
proxy for each reference it returns (and discarding itself), it *patches
itself* to the returned object and hands back a reference to itself.
"""

from __future__ import annotations

from typing import Any

from repro.errors import NotManagedError, PolicyError
from repro.ids import ROOT_SID
from repro.runtime.classext import is_managed, is_proxy


class SwapClusterUtils:
    """Static helpers shared by all swap-cluster-proxy types."""

    @staticmethod
    def assign(proxy: Any) -> Any:
        """Enable the iteration optimisation on ``proxy`` (paper §4).

        Only proxies whose source is swap-cluster-0 (i.e. held by global
        variables / roots) may be marked: self-patching a proxy stored in
        another object's field would silently retarget that field.
        Returns the proxy for fluent use.
        """
        if not is_proxy(proxy):
            raise NotManagedError(
                f"assign() needs a swap-cluster-proxy, got {type(proxy).__name__}"
            )
        if proxy._obi_source_sid != ROOT_SID:
            raise PolicyError(
                "assign() may only be invoked with swap-cluster-proxies "
                f"with source in swap-cluster-0 (got source "
                f"{proxy._obi_source_sid})"
            )
        # From now on this proxy is the variable's own self-patching
        # cursor, not the canonical proxy for its (source, target) pair:
        # evict it from the reuse cache once so per-step retargeting
        # never has to touch the cache again.
        space = proxy._obi_space
        key = (proxy._obi_source_sid, proxy._obi_target_oid)
        if space._proxy_cache.get(key) is proxy:
            del space._proxy_cache[key]
        proxy._obi_assign_mode = True
        return proxy

    @staticmethod
    def unassign(proxy: Any) -> Any:
        """Disable the iteration optimisation again."""
        if not is_proxy(proxy):
            raise NotManagedError(
                f"unassign() needs a swap-cluster-proxy, got {type(proxy).__name__}"
            )
        proxy._obi_assign_mode = False
        return proxy

    @staticmethod
    def equals(left: Any, right: Any) -> bool:
        """Identity-aware equality across any mix of proxies and objects."""
        if left is right:
            return True
        result = left == right
        return result is True

    @staticmethod
    def oid_of(handle: Any) -> int:
        """The oid denoted by a proxy or an adopted managed object."""
        if is_proxy(handle):
            return handle._obi_target_oid
        if is_managed(handle):
            oid = getattr(handle, "_obi_oid", None)
            if oid is None:
                raise NotManagedError("object has not been adopted into a space")
            return oid
        raise NotManagedError(f"not a managed handle: {type(handle).__name__}")

    @staticmethod
    def is_swap_proxy(value: Any) -> bool:
        return is_proxy(value)

    @staticmethod
    def resolve(handle: Any) -> Any:
        """The raw target behind ``handle`` (swapping it in if needed).

        Bypasses mediation — the returned raw reference is only safe to
        use while the target's swap-cluster stays resident (pin it, or
        prefer keeping the proxy).
        """
        if not is_proxy(handle):
            return handle
        target = handle._obi_target
        if getattr(type(target), "_obi_is_replacement", False):
            handle._obi_space._manager.swap_in(handle._obi_target_sid)
            target = handle._obi_target
        return target

    @staticmethod
    def source_sid(proxy: Any) -> int:
        return proxy._obi_source_sid

    @staticmethod
    def target_sid(proxy: Any) -> int:
        return proxy._obi_target_sid
