"""Swap-cluster bookkeeping.

A swap-cluster is the unit of swapping: "a number (also adaptable) of
chained (via references) object clusters as a single macro-object"
(paper, Section 1).  This module holds the per-cluster record the
SwappingManager maintains: membership, residency state, the usage
statistics fed by boundary crossings ("basic data w.r.t. recency and
frequency, as these boundaries are transversed"), and the swap location
while detached.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set

from repro.core.replacement import ReplacementObject, SwapLocation
from repro.errors import ClusterNotResidentError, ClusterPinnedError
from repro.ids import Cid, Oid, ROOT_SID, Sid


class SwapClusterState(enum.Enum):
    RESIDENT = "resident"
    SWAPPED = "swapped"


class SwapCluster:
    """Record for one swap-cluster within a space."""

    __slots__ = (
        "sid",
        "cids",
        "oids",
        "class_name_by_oid",
        "state",
        "epoch",
        "location",
        "replacement",
        "pins",
        "crossings",
        "last_crossing_tick",
        "swap_out_count",
        "swap_in_count",
        "created_tick",
        "priority",
        "dirty",
        "dirty_all",
        "dirty_oids",
        "dead_oids",
        "clean_digest",
        "clean_key",
        "clean_epoch",
        "clean_xml_bytes",
        "clean_outbound",
        "base_digest",
        "base_key",
        "base_epoch",
        "base_xml_bytes",
        "base_outbound",
    )

    def __init__(self, sid: Sid, created_tick: int = 0) -> None:
        self.sid = sid
        #: Replication clusters folded into this swap-cluster.
        self.cids: List[Cid] = []
        #: Oids of member objects (stable across swap cycles).
        self.oids: Set[Oid] = set()
        #: Class names per member, kept while swapped so new inbound
        #: proxies can still be typed correctly.
        self.class_name_by_oid: Dict[Oid, str] = {}
        self.state = SwapClusterState.RESIDENT
        #: Incremented on every swap-out; part of the store key, so a
        #: re-swapped cluster never collides with a stale copy.
        self.epoch = 0
        self.location: Optional[SwapLocation] = None
        self.replacement: Optional[ReplacementObject] = None
        self.pins = 0
        self.crossings = 0
        self.last_crossing_tick = created_tick
        self.swap_out_count = 0
        self.swap_in_count = 0
        self.created_tick = created_tick
        #: Responsiveness priority (``repro.policy.priority.Priority``
        #: values, stored as a plain int so core stays policy-free):
        #: 0 idle, 1 background (the default), 2 foreground.  Read by
        #: the ``responsiveness`` victim strategy and the degrade
        #: ladder's emergency-evict rung.
        self.priority = 1
        #: Dirty-tracking for the swap fast path: a cluster is *clean*
        #: when its members are byte-identical to the last serialized
        #: payload (``clean_digest``).  New clusters are dirty; the
        #: write barrier and the proxy layer flip the bit on mutation.
        self.dirty = True
        #: True when the whole payload must be considered stale — set by
        #: the conservative rules (container crossings, membership
        #: rewires, non-readonly proxy invocations) that cannot name a
        #: single culprit object.  New clusters start here.
        self.dirty_all = True
        #: Oids whose fields mutated since the last payload (the write
        #: barrier names the culprit).  Meaningful only while
        #: ``dirty_all`` is False.
        self.dirty_oids: Set[Oid] = set()
        #: Members collected (LGC) since the last payload — become
        #: tombstones in a delta.  Meaningful only while ``dirty_all``
        #: is False.
        self.dead_oids: Set[Oid] = set()
        self.clean_digest: Optional[str] = None
        self.clean_key: Optional[str] = None
        self.clean_epoch: Optional[int] = None
        self.clean_xml_bytes: int = 0
        #: Outbound proxies in serialization order, retained while clean
        #: so a clean swap-out can rebuild its replacement-object array
        #: without re-encoding.  Only populated when the fast path is on.
        self.clean_outbound: Optional[List] = None
        #: The last payload this cluster was serialized to, surviving
        #: subsequent mutation (unlike ``clean_*``) so the delta path can
        #: encode against it.  Set by :meth:`mark_clean`.
        self.base_digest: Optional[str] = None
        self.base_key: Optional[str] = None
        self.base_epoch: Optional[int] = None
        self.base_xml_bytes: int = 0
        self.base_outbound: Optional[List] = None

    # -- state predicates ----------------------------------------------------

    @property
    def is_resident(self) -> bool:
        return self.state is SwapClusterState.RESIDENT

    @property
    def is_swapped(self) -> bool:
        return self.state is SwapClusterState.SWAPPED

    @property
    def is_root_cluster(self) -> bool:
        return self.sid == ROOT_SID

    def swappable(self) -> bool:
        return self.is_resident and not self.is_root_cluster and self.pins == 0

    def ensure_swappable(self) -> None:
        if self.is_root_cluster:
            raise ClusterNotResidentError("swap-cluster-0 (roots) cannot be swapped")
        if not self.is_resident:
            raise ClusterNotResidentError(f"swap-cluster {self.sid} is already swapped")
        if self.pins > 0:
            raise ClusterPinnedError(
                f"swap-cluster {self.sid} is pinned ({self.pins} holders)"
            )

    # -- dirty tracking ---------------------------------------------------------

    def mark_dirty(self, oid: Optional[Oid] = None) -> None:
        """The serialized payload (if any) no longer matches the members.

        With an ``oid`` the staleness is attributed to that one member
        (field write caught by the barrier); without one the whole
        payload is conservatively invalidated (``dirty_all``).
        """
        if oid is None:
            self.dirty_all = True
        else:
            self.dirty_oids.add(oid)
        self._trip_dirty()

    def _trip_dirty(self) -> None:
        if self.dirty:
            return
        self.dirty = True
        self.clean_digest = None
        self.clean_key = None
        self.clean_epoch = None
        self.clean_xml_bytes = 0
        self.clean_outbound = None

    def mark_clean(
        self,
        *,
        digest: str,
        key: str,
        epoch: int,
        xml_bytes: int,
        outbound: List,
    ) -> None:
        """Record that the members match the payload identified by ``digest``."""
        self.dirty = False
        self.dirty_all = False
        self.dirty_oids.clear()
        self.dead_oids.clear()
        self.clean_digest = digest
        self.clean_key = key
        self.clean_epoch = epoch
        self.clean_xml_bytes = xml_bytes
        self.clean_outbound = outbound
        self.base_digest = digest
        self.base_key = key
        self.base_epoch = epoch
        self.base_xml_bytes = xml_bytes
        self.base_outbound = outbound

    def delta_eligible(self) -> bool:
        """True when the mutation since the last payload is fully named.

        The delta swap path applies only while every staleness source is
        attributed — a known base payload plus a concrete set of dirty
        and collected oids, with no conservative whole-cluster
        invalidation in between.
        """
        return (
            self.dirty
            and not self.dirty_all
            and self.base_digest is not None
            and bool(self.dirty_oids or self.dead_oids)
        )

    # -- membership ------------------------------------------------------------

    def add_member(self, oid: Oid, class_name: str) -> None:
        self.mark_dirty()
        self.oids.add(oid)
        self.class_name_by_oid[oid] = class_name

    def remove_member(self, oid: Oid, *, collected: bool = False) -> None:
        """Drop a member.

        ``collected`` marks the local-GC path: the object became
        unreachable and vanished without any other member being rewired,
        so the removal stays delta-eligible as a tombstone instead of
        invalidating the whole payload.
        """
        if collected:
            self.dead_oids.add(oid)
            self.dirty_oids.discard(oid)
            self._trip_dirty()
        else:
            self.mark_dirty()
        self.oids.discard(oid)
        self.class_name_by_oid.pop(oid, None)

    def __len__(self) -> int:
        return len(self.oids)

    # -- usage statistics -------------------------------------------------------

    def record_crossing(self, tick: int) -> None:
        self.crossings += 1
        self.last_crossing_tick = tick

    def idle_ticks(self, now_tick: int) -> int:
        return now_tick - self.last_crossing_tick

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SwapCluster sid={self.sid} {self.state.value} "
            f"objects={len(self.oids)} crossings={self.crossings} "
            f"epoch={self.epoch}>"
        )
