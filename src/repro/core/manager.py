"""The ``SwappingManager``: swap-out, swap-in, GC cooperation.

Paper, Section 4: "The SwappingManager class, by policy definition, is
registered as a listener of all events regarding replication of clusters
of objects ... It manages swapping by maintaining information regarding
all swap-clusters (loaded or swapped), and all objects belonging to each
one, stored in hash-tables.  It also contains entries for all
swap-cluster-proxies w.r.t. references to/from each swap-cluster (using
weak-references)."

Membership/object tables live on the :class:`~repro.core.space.Space`
(they are also used by translation); this class owns the *swapping
protocol*:

* **swap-out** (Section 3): serialize the cluster to XML, ship it to a
  nearby store, build the replacement-object from the cluster's outbound
  proxies, patch every inbound proxy to the replacement, release the
  members' heap bytes;
* **swap-in**: fetch + verify the XML, rebuild replicas under their old
  oids, patch inbound proxies back to the replicas, reclaim the
  replacement;
* **ensure_room**: the victim loop driven by memory pressure;
* **drop_swapped**: the GC-cooperation half — when the local collector
  finds a replacement-object unreachable, the store is instructed to
  drop the XML.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.comm.transport import compress_body, compress_payload
from repro.core.fastpath import DeltaChain, FastPathConfig, FastPathState
from repro.core.interfaces import SwapStore
from repro.core.replacement import ReplacementObject, SwapLocation
from repro.core.swap_cluster import SwapCluster, SwapClusterState
from repro.errors import (
    AllStoresUnreachableError,
    ClusterNotSwappedError,
    CodecError,
    CodecNegotiationError,
    HeapExhaustedError,
    NoSwapDeviceError,
    ObiError,
    RetryExhaustedError,
    StoreFullError,
    SwapError,
    SwapStoreUnavailableError,
    TransportError,
    UnknownKeyError,
)
from repro.events import (
    ClusterCollectedEvent,
    ClusterOomKilledEvent,
    ClusterReplicatedEvent,
    ClusterUnderReplicatedEvent,
    ReplicaCorruptEvent,
    StoreDetachedEvent,
    StoreRejoinedEvent,
    SwapDegradedEvent,
    SwapDroppedEvent,
    SwapFailoverEvent,
    SwapFastPathEvent,
    SwapInEvent,
    SwapOutEvent,
    TenantAdmissionDeniedEvent,
)
from repro.ids import Sid, format_swap_key
from repro.obs.trace import NULL_SPAN
from repro.wire.binary import (
    decode_cluster_binary,
    encode_cluster_binary,
    encode_delta_binary,
)
from repro.wire.canonical import digest_of_canonical, verify_payload
from repro.wire.delta import apply_cluster_delta, encode_cluster_delta
from repro.wire.xmlcodec import decode_cluster, encode_cluster_canonical

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import ObsConfig, Observability
    from repro.resilience import Resilience, ResilienceConfig

#: The dedicated subclass lets the retry machinery distinguish "this
#: copy arrived but is damaged" (worth re-fetching) from structural
#: codec failures that no retry will fix.
class CorruptPayloadError(CodecError):
    """A fetched payload failed the digest check (transient or bitrot)."""

#: Picks a swap victim; returns a sid or None when nothing is swappable.
VictimSelector = Callable[["Any"], Optional[Sid]]

#: ``SwapCluster.priority`` value the emergency rung must not kill
#: (``repro.policy.priority.Priority.FOREGROUND`` as a plain int — core
#: deliberately does not import the policy package at module level).
FOREGROUND_PRIORITY = 2


def lru_victim(space: Any) -> Optional[Sid]:
    """Default victim policy: least-recently-crossed swappable cluster."""
    best_sid: Optional[Sid] = None
    best_tick = None
    for sid, cluster in space._clusters.items():
        if not cluster.swappable() or not cluster.oids:
            continue
        if best_tick is None or cluster.last_crossing_tick < best_tick:
            best_tick = cluster.last_crossing_tick
            best_sid = sid
    return best_sid


@dataclass
class ManagerStats:
    swap_outs: int = 0
    swap_ins: int = 0
    drops: int = 0
    bytes_shipped: int = 0
    bytes_restored: int = 0
    replicated_clusters: int = 0
    mirror_writes: int = 0
    mirror_failovers: int = 0
    # -- resilience counters (all zero while resilience is disabled) --
    retries: int = 0
    failovers: int = 0
    circuit_opens: int = 0
    circuit_closes: int = 0
    degraded_swaps: int = 0
    journal_recoveries: int = 0
    # -- durability counters (placement / scrub; zero while disabled) --
    replicas_repaired: int = 0
    replicas_quarantined: int = 0
    scrub_ticks: int = 0
    scrub_bytes_repaired: int = 0
    orphans_collected: int = 0
    repromotions: int = 0
    journal_truncated: int = 0
    placement_recoveries: int = 0
    # -- fast-path counters (all zero while the fast path is disabled) --
    encode_calls: int = 0
    fastpath_noops: int = 0
    fastpath_reships: int = 0
    swapin_cache_hits: int = 0
    # -- wire-codec counters (zero unless ``codec="binary"`` is on) --
    codec_binary_ships: int = 0
    codec_binary_fetches: int = 0
    codec_fallbacks: int = 0
    # -- delta swap counters (all zero while ``config.delta`` is off) --
    fastpath_delta_ships: int = 0
    fastpath_delta_fallbacks: int = 0
    fastpath_delta_compactions: int = 0
    delta_bytes_shipped: int = 0
    delta_bytes_saved: int = 0
    # -- degrade-ladder counters (all zero while the ladder is off) --
    ladder_escalations: int = 0
    ladder_deescalations: int = 0
    ladder_compress_local: int = 0
    ladder_drop_clean: int = 0
    oom_kills: int = 0
    oom_kills_foreground: int = 0
    # -- topology counters (all zero while topology is disabled) --
    shard_reparents: int = 0
    cell_outages: int = 0
    cell_recoveries: int = 0
    topology_rebuilds: int = 0
    # -- fleet/tenancy counters (all zero while no tenant is bound) --
    fleet_admission_denials: int = 0
    fleet_reclaim_evictions: int = 0
    fleet_reclaim_bytes: int = 0
    fleet_config_updates: int = 0
    tenant_pressure_bumps: int = 0


class SwappingManager:
    """Per-space swapping engine."""

    def __init__(self, space: Any) -> None:
        self._space = space
        self._stores: List[SwapStore] = []
        self._store_provider: Optional[Callable[[], Iterable[SwapStore]]] = None
        #: Stores holding each swapped cluster's XML (primary first,
        #: then mirrors when ``replication_factor`` > 1).
        self._bindings: Dict[Sid, List[SwapStore]] = {}
        self._loading: set[Sid] = set()
        #: sid -> (digest, document) decoded straight from binary wire
        #: frames during the fetch+verify pass; ``swap_in`` consumes the
        #: entry instead of re-decoding the canonical text.
        self._bin_decoded: Dict[Sid, Tuple[str, Any]] = {}
        #: Keep the stored XML after a successful swap-in (versioning /
        #: reconciliation use, paper Section 3 "set-aside").
        self.keep_swapped_copies = False
        #: How many nearby devices should hold each swapped cluster.
        #: The paper envisions "a myriad of small memory-enabled devices
        #: ... scattered all-over"; mirrors make a departing device a
        #: non-event.  Best-effort: fewer devices in range means fewer
        #: copies, never a failed swap.
        self.replication_factor = 1
        #: Victim policy used by :meth:`ensure_room`.
        self.victim_selector: VictimSelector = lru_victim
        #: When True, heap exhaustion automatically runs the victim loop.
        self.auto_swap = True
        #: When True, reloaded documents are structurally validated
        #: (repro.wire.schema) after the digest check, for precise
        #: diagnostics on archives or hand-provisioned stores.
        self.validate_documents = False
        self.stats = ManagerStats()
        #: Optional resilience coordinator (retry/circuit/journal/degrade).
        #: ``None`` keeps the pipeline exactly as fast as before.
        self.resilience: Optional["Resilience"] = None
        #: Optional swap fast path (dirty tracking + payload cache +
        #: metadata-only clean swap-outs).  ``None`` = classic pipeline.
        self.fastpath: Optional[FastPathState] = None
        #: Optional observability runtime (tracing + metrics + profiling).
        #: ``None`` = every span site costs one attribute test.
        self.obs: Optional["Observability"] = None
        #: Optional degrade ladder (see :mod:`repro.core.degrade`).
        #: ``None`` = no pressure assessment anywhere on the hot path.
        self.ladder: Optional[Any] = None
        #: Optional event-driven swap scheduler (see
        #: :mod:`repro.core.sched`).  ``None`` = the classic blocking
        #: fault path.
        self.sched: Optional[Any] = None
        #: Optional sharded topology service (see :mod:`repro.topology`).
        #: ``None`` = placement stays per-key via ``plan_placement``.
        self.topology: Optional[Any] = None
        #: Optional tenant binding (see :mod:`repro.fleet`): store-byte
        #: quota admission, fair-share reclaim, per-tenant pressure.
        #: ``None`` = the single-tenant path, bit-identical to before.
        self.tenant: Optional[Any] = None
        #: Temporary replication-target override (the COMPRESS_LOCAL
        #: rung hibernates exactly one copy into the pool).
        self._replicas_override: Optional[int] = None
        space.bus.subscribe(ClusterReplicatedEvent, self._on_cluster_replicated)
        space.bus.subscribe(ClusterCollectedEvent, self._on_cluster_collected)

    # -- resilience --------------------------------------------------------------

    def enable_resilience(
        self, config: Optional["ResilienceConfig"] = None
    ) -> "Resilience":
        """Turn on the resilient swap pipeline (retry, circuit breaker,
        write-ahead journal, failover, degrade-to-local).

        Idempotent in effect: calling again replaces the coordinator
        (fresh health/journal state) with the new ``config``.
        """
        from repro.resilience import Resilience, ResilienceConfig

        self.resilience = Resilience(
            config if config is not None else ResilienceConfig(), self
        )
        return self.resilience

    def disable_resilience(self) -> None:
        self.resilience = None

    # -- fast path ---------------------------------------------------------------

    def enable_fastpath(
        self,
        config: Optional[FastPathConfig] = None,
        *,
        delta: Optional[bool] = None,
        pipeline_channels: Optional[int] = None,
    ) -> FastPathState:
        """Turn on the swap fast path (see :mod:`repro.core.fastpath`).

        Calling again replaces the state (fresh cache and retention
        tables) with the new ``config``.  The keyword shortcuts overlay
        the config: ``enable_fastpath(delta=True)`` turns on
        object-granular delta swap-out, ``pipeline_channels=n`` attaches
        a :class:`~repro.comm.pipeline.TransferScheduler` so replica
        fan-out and encode/transfer overlap on ``n`` link channels.
        """
        config = config if config is not None else FastPathConfig()
        overrides: Dict[str, Any] = {}
        if delta is not None:
            overrides["delta"] = delta
        if pipeline_channels is not None:
            overrides["pipeline_channels"] = pipeline_channels
        if overrides:
            config = replace(config, **overrides)
        self.fastpath = FastPathState(config)
        if config.pipeline_channels > 0:
            from repro.comm.pipeline import TransferScheduler

            self.fastpath.scheduler = TransferScheduler(
                self._space.clock, config.pipeline_channels
            )
        return self.fastpath

    def disable_fastpath(self) -> None:
        """Back to the classic always-encode pipeline.

        Clean bits left on clusters are ignored while ``fastpath`` is
        ``None``, so this is safe at any point.
        """
        self.fastpath = None

    # -- degrade ladder ----------------------------------------------------------

    def enable_degrade_ladder(self, config: Optional[Any] = None) -> Any:
        """Turn on the pressure-tiered degrade ladder (see
        :mod:`repro.core.degrade`).

        Unless ``config.install_selector`` is off, this also installs
        the ``responsiveness`` victim strategy so eviction order and
        the emergency rung agree about priorities.  Calling again
        replaces the ladder (fresh pressure/SLO state) with the new
        config.
        """
        from repro.core.degrade import DegradeLadder, DegradeLadderConfig

        config = config if config is not None else DegradeLadderConfig()
        self.ladder = DegradeLadder(self, config)
        if self.tenant is not None:
            # rungs escalate per tenant: the fleet folds this tenant's
            # share usage into every assessed signal
            self.tenant.bind_ladder(self.ladder)
        if config.install_selector:
            from repro.policy.victims import make_selector

            self.victim_selector = make_selector(config.victim_strategy)
        return self.ladder

    def disable_degrade_ladder(self) -> None:
        """Drop the ladder; swap-outs route exactly as before it existed.

        The victim selector falls back to the default LRU policy when
        the ladder had installed its own.
        """
        if self.ladder is not None and self.ladder.config.install_selector:
            self.victim_selector = lru_victim
        self.ladder = None

    # -- async scheduler ---------------------------------------------------------

    def enable_async_scheduler(
        self,
        config: Optional[Any] = None,
        *,
        channels: Optional[int] = None,
        prefetch: Optional[bool] = None,
        prefetch_depth: Optional[int] = None,
    ) -> Any:
        """Turn on event-driven asynchronous swap scheduling (see
        :mod:`repro.core.sched`): demand fetches, speculative prefetches
        and victim write-back become scheduled ops on transfer channels,
        and the fault path stalls only for time not hidden behind other
        in-flight work.

        The keyword shortcuts overlay the config:
        ``enable_async_scheduler(channels=1, prefetch=False)`` is the
        serial mode that is bit-identical to the legacy blocking path.
        Calling again replaces the scheduler (fresh op ledger and
        prefetch history) with the new config.
        """
        from repro.core.sched import AsyncSchedConfig, AsyncSwapScheduler

        config = config if config is not None else AsyncSchedConfig()
        overrides: Dict[str, Any] = {}
        if channels is not None:
            overrides["channels"] = channels
        if prefetch is not None:
            overrides["prefetch"] = prefetch
        if prefetch_depth is not None:
            overrides["prefetch_depth"] = prefetch_depth
        if overrides:
            config = replace(config, **overrides)
        self.sched = AsyncSwapScheduler(self, config)
        return self.sched

    def disable_async_scheduler(self) -> None:
        """Back to the blocking fault path.

        In-flight op windows are drained first, so simulated reality
        owes nothing when the scheduler goes away.
        """
        if self.sched is not None:
            self.sched.drain()
            self.sched = None

    # -- topology ----------------------------------------------------------------

    def enable_topology(
        self,
        config: Optional[Any] = None,
        *,
        shards: Optional[int] = None,
        replicas: Optional[int] = None,
    ) -> Any:
        """Turn on the sharded topology service (see :mod:`repro.topology`):
        the sid space is folded onto hash shards, each with a primary
        store and replicas spread across cells (``placement_group``s),
        per-cell replication records track every replica-set change, and
        a dead/browned-out/detached primary is *reparented* to the
        healthiest in-sync replica.

        Requires the resilience pipeline (the topology elects by health
        history and repairs through the scrubber); raises
        :class:`~repro.errors.SwapError` otherwise.  The keyword
        shortcuts overlay the config: ``enable_topology(shards=64)``.
        Calling again replaces the service (fresh shard table and cell
        records) with the new config.
        """
        from repro.topology import TopologyConfig, TopologyService

        config = config if config is not None else TopologyConfig()
        overrides: Dict[str, Any] = {}
        if shards is not None:
            overrides["shards"] = shards
        if replicas is not None:
            overrides["replicas_per_shard"] = replicas
        if overrides:
            config = replace(config, **overrides)
        self.topology = TopologyService(self, config)
        if self.resilience is not None:
            self.resilience.placement.observer = self.topology
        return self.topology

    def disable_topology(self) -> None:
        """Back to per-key health/anti-affinity planning."""
        if self.topology is not None and self.resilience is not None:
            if self.resilience.placement.observer is self.topology:
                self.resilience.placement.observer = None
        self.topology = None

    def rebuild_topology(self) -> Dict[str, int]:
        """Recover placement *and* topology after a crash or cell loss.

        Extends :meth:`recover_placement`: first the per-key placement
        ledger is rebuilt from the journal plus store inventory, then
        the topology service reconstructs shard records and per-cell
        replication records from the surviving cells and the same
        inventory (see :meth:`repro.topology.TopologyService.rebuild`).
        """
        if self.topology is None:
            raise SwapError("topology is not enabled; call enable_topology()")
        recovered = self.recover_placement()
        result = self.topology.rebuild()
        result["placement_records"] = recovered
        return result

    # -- observability -----------------------------------------------------------

    def enable_observability(
        self, config: Optional["ObsConfig"] = None
    ) -> "Observability":
        """Turn on unified observability (see :mod:`repro.obs`): span
        tracing through the swap pipeline, a metrics registry, per-phase
        profiling, and event/trace correlation.

        Calling again replaces the runtime (fresh tracer and registry)
        with the new ``config``.  While disabled (the default) every
        instrumented site costs one ``None`` check.
        """
        from repro.obs import Observability, ObsConfig

        if self.obs is not None:
            self.obs.detach()
        self.obs = Observability(
            self, config if config is not None else ObsConfig()
        )
        self.obs.attach()
        return self.obs

    def disable_observability(self) -> None:
        """Detach hooks and drop the observability runtime."""
        if self.obs is not None:
            self.obs.detach()
            self.obs = None

    # -- introspection -----------------------------------------------------------

    def feature_flags(self) -> Dict[str, bool]:
        """Which opt-in subsystems are currently enabled.

        The queryable surface for the ``enable_*`` toggles: the fleet
        control plane validates feature-gated config changes against it
        (e.g. a ``degrade.*`` change is rejected for a manager whose
        ladder is off), and operators can log it alongside counters.
        """
        return {
            "resilience": self.resilience is not None,
            "fastpath": self.fastpath is not None,
            "obs": self.obs is not None,
            "degrade": self.ladder is not None,
            "async_sched": self.sched is not None,
            "topology": self.topology is not None,
            "tenancy": self.tenant is not None,
        }

    def _obs_span(self, name: str, **tags: Any):
        """A live span when observability is on, :data:`NULL_SPAN` when off."""
        obs = self.obs
        if obs is None:
            return NULL_SPAN
        return obs.tracer.span(name, **tags)

    def _obs_tag(self, key: str, value: Any) -> None:
        """Tag the innermost open span, if any."""
        obs = self.obs
        if obs is not None:
            span = obs.tracer.current_span()
            if span is not None:
                span.set_tag(key, value)

    # -- store management -------------------------------------------------------

    def add_store(self, store: SwapStore) -> None:
        if store not in self._stores:
            self._stores.append(store)
            if self.obs is not None:
                self.obs.instrument_store(store)

    def remove_store(self, store: SwapStore) -> None:
        if store in self._stores:
            self._stores.remove(store)

    def set_store_provider(
        self, provider: Optional[Callable[[], Iterable[SwapStore]]]
    ) -> None:
        """Install a dynamic source of nearby stores (e.g. discovery)."""
        self._store_provider = provider

    def available_stores(self) -> List[SwapStore]:
        stores = list(self._stores)
        if self._store_provider is not None:
            for store in self._store_provider():
                if store not in stores:
                    stores.append(store)
        if self.resilience is not None:
            stores = [
                store
                for store in stores
                if self.resilience.admits(store.device_id)
            ]
        return stores

    def select_store(self, nbytes: int) -> SwapStore:
        """First nearby store that admits ``nbytes`` of XML."""
        return self.select_stores(nbytes, 1)[0]

    def select_stores(
        self, nbytes: int, count: int, *, sid: Optional[Sid] = None
    ) -> List[SwapStore]:
        """Up to ``count`` distinct stores that admit ``nbytes`` each.

        At least one is required; extras are best-effort mirrors.  With
        resilience enabled, selection is placement-aware: healthier
        stores first, more free space first, and anti-affinity across
        ``placement_group``s (two replicas share a rack/owner only when
        no other group has room).  With topology enabled and a ``sid``
        given, the cluster's shard routes instead — primary store first,
        then the shard's cross-cell replicas — an O(1) lookup however
        many clusters are swapped.
        """
        if sid is not None and self.topology is not None:
            chosen = self.topology.select_for(sid, nbytes, count)
            if chosen:
                return chosen
            raise NoSwapDeviceError(
                f"no shard holder or fallback store has room for "
                f"{nbytes} bytes (sid {sid})"
            )
        stores = self.available_stores()
        if self.resilience is not None:
            from repro.resilience.placement import plan_placement

            chosen = plan_placement(
                stores,
                nbytes,
                count,
                health=self.resilience.health,
                on_probe_failure=lambda store: self.resilience.record_failure(
                    store.device_id
                ),
            )
        else:
            chosen = []
            for store in stores:
                try:
                    if store.has_room(nbytes):
                        chosen.append(store)
                except TransportError:
                    continue
                if len(chosen) >= count:
                    break
        if chosen:
            return chosen
        if not stores:
            raise NoSwapDeviceError("no nearby device available to receive swap")
        raise NoSwapDeviceError(
            f"no nearby device has room for {nbytes} bytes "
            f"({len(stores)} device(s) in range)"
        )

    def target_replicas(self) -> int:
        """How many distinct stores should hold each swapped cluster."""
        if self._replicas_override is not None:
            return self._replicas_override
        factor = max(1, self.replication_factor)
        if self.resilience is not None:
            factor = max(factor, self.resilience.config.replication_factor)
        return factor

    # -- swap-out -----------------------------------------------------------------

    def swap_out(self, sid: Sid, store: SwapStore | None = None) -> SwapLocation:
        """Detach swap-cluster ``sid`` and ship it to a nearby store.

        With the fast path enabled and the cluster *clean* (unmutated
        since its last serialization), the encode-and-ship pipeline is
        bypassed: see :meth:`_swap_out_clean`.
        """
        space = self._space
        cluster: SwapCluster = space._cluster(sid)
        cluster.ensure_swappable()
        if sid in self._loading:
            raise SwapError(f"swap-cluster {sid} is being loaded; cannot swap out")

        with self._obs_span("swap.out", sid=sid):
            ladder = self.ladder
            rung = ladder.update() if ladder is not None else None
            if (
                self.fastpath is not None
                and not cluster.dirty
                and cluster.clean_digest is not None
                and cluster.clean_outbound is not None
            ):
                location = self._swap_out_clean(
                    cluster,
                    store,
                    trust_ledger=rung is not None and rung >= 2,  # DROP_CLEAN
                )
                if location is not None:
                    return location
            if rung is not None and rung >= 1 and store is None:
                # COMPRESS_LOCAL and above: hibernate into the local
                # pool first; remote shipping is the fallback
                location = self._swap_out_local(cluster)
                if location is not None:
                    return location
            if (
                self.fastpath is not None
                and self.fastpath.config.delta
                and cluster.delta_eligible()
                and (rung is None or rung == 0)
            ):
                location = self._swap_out_delta(cluster, store)
                if location is not None:
                    return location
            return self._swap_out_full(cluster, store)

    def _swap_out_clean(
        self,
        cluster: SwapCluster,
        chosen: SwapStore | None,
        *,
        trust_ledger: bool = False,
    ) -> Optional[SwapLocation]:
        """Swap out a clean cluster without re-encoding it.

        Tier 1 (metadata-only no-op): a store already retaining the
        payload under the clean key answers a 64-byte ``contains`` probe
        — nothing is encoded, nothing is shipped.  Tier 2 (re-ship): the
        cached canonical text is shipped as-is.  Returns ``None`` when
        neither tier applies (cache evicted, no retained copy); the
        caller falls back to the full pipeline.

        ``trust_ledger`` is the degrade ladder's DROP_CLEAN rung: the
        retained copies are taken at the ledger's word — no probes at
        all, zero link traffic — and the scrubber re-verifies them once
        pressure subsides (the verified epoch is deliberately *not*
        refreshed here).
        """
        fastpath = self.fastpath
        space = self._space
        sid = cluster.sid
        key = cluster.clean_key
        digest = cluster.clean_digest
        outbound = list(cluster.clean_outbound)

        retained = fastpath.retained.get(sid)
        if retained is not None and retained[0] == key:
            candidates = (
                retained[1]
                if chosen is None
                else [holder for holder in retained[1] if holder is chosen]
            )
            want = self.target_replicas() if chosen is None else 1
            verified: List[SwapStore] = []
            lost: List[SwapStore] = []
            if trust_ledger:
                # DROP_CLEAN: evict on the strength of the ledger alone.
                # No contains probes — zero control traffic toward a
                # neighborhood the pressure signal says is struggling.
                verified = [
                    holder
                    for holder in candidates
                    if not getattr(holder, "is_dead", False)
                ][:want]
            else:
                for holder in candidates:
                    probe = getattr(holder, "contains", None)
                    if probe is None:
                        continue  # legacy store: cannot answer key probes
                    probe_span = self._obs_span(
                        "fastpath.probe", device=holder.device_id
                    )
                    try:
                        with probe_span:
                            if probe(key):
                                probe_span.set_tag("hit", True)
                                verified.append(holder)
                            else:
                                probe_span.set_tag("hit", False)
                                lost.append(holder)  # evicted behind our back
                    except (TransportError, RetryExhaustedError):
                        lost.append(holder)
                    if len(verified) >= want:
                        break
            if lost:
                fastpath.retained[sid] = (
                    key,
                    [holder for holder in retained[1] if holder not in lost],
                )
            if verified:
                location = SwapLocation(
                    device_id=verified[0].device_id,
                    key=key,
                    digest=digest,
                    xml_bytes=cluster.clean_xml_bytes,
                    epoch=cluster.clean_epoch,
                )
                object_count = len(cluster.oids)
                bytes_freed = self._detach(cluster, outbound, location, verified)
                # content unchanged -> same epoch, same key, same digest
                cluster.epoch = cluster.clean_epoch
                if self.resilience is not None:
                    placement = self.resilience.placement
                    record = placement.record_swap_out(
                        sid,
                        key=key,
                        digest=digest,
                        epoch=cluster.clean_epoch,
                        xml_bytes=cluster.clean_xml_bytes,
                        device_ids=[holder.device_id for holder in verified],
                    )
                    for holder in verified:
                        record.applied_epochs[holder.device_id] = (
                            cluster.clean_epoch
                        )
                    if not trust_ledger:
                        # the contains probes just re-verified these
                        # copies: bump the verified epoch so the scrubber
                        # does not re-fetch an unmodified cluster.  The
                        # trust-ledger path skipped the probes, so the
                        # verified epoch stays stale on purpose and the
                        # scrubber re-checks once pressure subsides.
                        placement.record_verified(
                            sid, cluster.clean_epoch, space.clock.now()
                        )
                    self._warn_if_under_replicated(sid, "clean swap-out")
                self.stats.swap_outs += 1
                if trust_ledger:
                    self.stats.ladder_drop_clean += 1
                else:
                    self.stats.fastpath_noops += 1
                tier = "dropclean" if trust_ledger else "noop"
                self._obs_tag("tier", tier)
                space.bus.emit(
                    SwapFastPathEvent(
                        space=space.name, sid=sid, tier=tier, key=key
                    )
                )
                space.bus.emit(
                    SwapOutEvent(
                        space=space.name,
                        sid=sid,
                        device_id=location.device_id,
                        key=key,
                        object_count=object_count,
                        bytes_freed=bytes_freed,
                        xml_bytes=0,
                    )
                )
                return location

        text = fastpath.cache.get(digest)
        if text is None:
            return None  # cache evicted and no retained copy: full path
        try:
            return self._ship_and_detach(
                cluster,
                text,
                key=key,
                epoch=cluster.clean_epoch,
                digest=digest,
                outbound=outbound,
                chosen=chosen,
                tier="reship",
            )
        except BaseException:
            # shipping failed; retained bookkeeping may name stores the
            # abort path just dropped from
            fastpath.retained.pop(sid, None)
            raise

    def _swap_out_local(self, cluster: SwapCluster) -> Optional[SwapLocation]:
        """COMPRESS_LOCAL rung: hibernate into the local compressed pool.

        Reuses the full pipeline (journal, placement, chain bookkeeping)
        with the pool as the chosen store and replication pinned to one
        copy — mirroring a CPU-only hibernation onto remote stores would
        defeat the point of the rung.  Returns ``None`` when the pool is
        full or the heap cannot even hold the compressed payload; the
        caller falls through to remote shipping.
        """
        space = self._space
        heap = space.heap
        fallback = self.ladder.fallback_store()
        # the pool compresses into the SAME heap; freeze the victim loop
        # so a tight heap cannot recurse into us, and pin replication so
        # no remote mirrors ride along
        previous_auto = self.auto_swap
        previous_override = self._replicas_override
        self.auto_swap = False
        self._replicas_override = 1
        # Displacement (the zswap trick): the victim's own bytes are
        # about to be freed by the detach, so let the compressed copy
        # occupy them now — otherwise the pool could never grow at
        # exactly the moment it exists for, a full heap.  The accounting
        # is released up front (the objects stay live for the
        # serializer) and restored if the hibernation fails.
        displaced = {
            oid: heap.size_of(oid)
            for oid in cluster.oids
            if heap.holds(oid)
        }
        for oid in displaced:
            heap.free_oid(oid)
        try:
            location = self._swap_out_full(cluster, fallback)
        except (StoreFullError, HeapExhaustedError):
            for oid, size in displaced.items():
                heap.allocate(oid, size)
            return None
        finally:
            self.auto_swap = previous_auto
            self._replicas_override = previous_override
        self.stats.ladder_compress_local += 1
        space.bus.emit(
            SwapDegradedEvent(
                space=space.name,
                sid=cluster.sid,
                fallback_device_id=fallback.device_id,
                reason="degrade ladder: compress-local",
            )
        )
        return location

    def _swap_out_delta(
        self, cluster: SwapCluster, chosen: SwapStore | None
    ) -> Optional[SwapLocation]:
        """Swap out a mutated cluster by shipping only its dirty objects.

        Applies when every staleness source since the last payload is
        attributed (:meth:`~repro.core.swap_cluster.SwapCluster.
        delta_eligible`), the base payload text is still cached locally,
        and at least one retained store holds the delta-chain tip.  Each
        holder receives a ``<swap-delta>`` document via ``store_delta``;
        holders without delta support — or diverged ones, whose held
        base sits at a different epoch — transparently receive the full
        payload instead.  Returns ``None`` when the delta path cannot
        apply or would not pay (chain/byte compaction thresholds, a
        delta bigger than the payload itself); the caller then falls
        back to the classic full pipeline, which also rewrites the
        stale chain.
        """
        fastpath = self.fastpath
        config = fastpath.config
        space = self._space
        sid = cluster.sid
        base_key = cluster.base_key
        base_epoch = cluster.base_epoch
        base_digest = cluster.base_digest

        retained = fastpath.retained.get(sid)
        if retained is None or retained[0] != base_key or not retained[1]:
            return None  # no store known to hold the base: full path
        base_text = fastpath.cache.get(base_digest)
        if base_text is None:
            return None  # cannot build/verify a delta without the base
        chain = fastpath.chains.get(sid)
        if chain is None or not chain.keys or chain.keys[-1] != base_key:
            return None  # chain bookkeeping diverged from the cluster
        if chain.length + 1 > config.delta_max_chain:
            self.stats.fastpath_delta_compactions += 1
            return None  # chain too long: a full rewrite compacts it

        members = {
            oid: space._objects[oid]
            for oid in cluster.dirty_oids
            if oid in cluster.oids
        }
        # Outbound indices must stay consistent with the base payload's
        # replacement array: seed from the base order, append new proxies.
        outbound: List[Any] = list(cluster.base_outbound or [])
        index_by_proxy: Dict[int, int] = {
            id(proxy): index for index, proxy in enumerate(outbound)
        }

        def outbound_index_of(proxy: Any) -> int:
            marker = id(proxy)
            index = index_by_proxy.get(marker)
            if index is None:
                index = len(outbound)
                index_by_proxy[marker] = index
                outbound.append(proxy)
            return index

        epoch = cluster.epoch + 1
        with self._obs_span(
            "swap.out.delta.encode", sid=sid, objects=len(members)
        ):
            delta_text, _ = encode_cluster_delta(
                sid=sid,
                space=space.name,
                base_epoch=base_epoch,
                epoch=epoch,
                objects=members,
                dead_oids=cluster.dead_oids,
                member_oids=set(cluster.oids),
                oid_of=lambda obj: obj._obi_oid,
                outbound_index_of=outbound_index_of,
            )
        with self._obs_span("swap.out.delta.apply", sid=sid):
            try:
                applied_text = apply_cluster_delta(base_text, delta_text)
            except CodecError:
                return None  # our own delta must apply; be safe, not sorry
        digest = digest_of_canonical(applied_text)
        xml_bytes = len(applied_text.encode("utf-8"))
        delta_nbytes = len(delta_text.encode("utf-8"))
        if delta_nbytes >= xml_bytes:
            return None  # the delta would cost more than the payload
        if (
            chain.base_bytes > 0
            and chain.delta_bytes + delta_nbytes
            > config.delta_max_ratio * chain.base_bytes
        ):
            self.stats.fastpath_delta_compactions += 1
            return None  # accumulated deltas outweigh the base: compact

        holders = (
            list(retained[1])
            if chosen is None
            else [holder for holder in retained[1] if holder is chosen]
        )
        if not holders:
            return None  # the caller-chosen store holds no base copy
        key = format_swap_key(space.name, sid, epoch)
        self._obs_tag("tier", "delta")
        if self.obs is not None:
            self.obs.observe_payload(delta_nbytes)

        resilience = self.resilience
        entry = None
        if resilience is not None:
            with self._obs_span("swap.out.journal", op="begin", sid=sid):
                entry = resilience.journal.begin(
                    sid,
                    key,
                    epoch,
                    xml_bytes,
                    digest=digest,
                    base_epoch=base_epoch,
                    delta=True,
                )
        record = (
            resilience.placement.get(sid) if resilience is not None else None
        )
        stored_on: List[SwapStore] = []
        delta_on: List[SwapStore] = []
        try:
            for holder in holders:
                sink = getattr(holder, "store_delta", None)
                diverged = False
                if record is not None:
                    applied = record.applied_epochs.get(holder.device_id)
                    diverged = applied is not None and applied != base_epoch
                shipped: Optional[str] = None
                if sink is not None and not diverged:
                    compression = fastpath.negotiate_for(holder)
                    wire_codec = fastpath.negotiate_codec_for(holder)
                    if wire_codec == "binary":
                        # deltas travel as binary-framed canonical text:
                        # same digest-checked framing, stores unwrap to
                        # XML at rest so chain resolution is unchanged
                        data = compress_body(
                            encode_delta_binary(delta_text), compression
                        )
                    else:
                        data = compress_payload(delta_text, compression)
                    frame_bytes = config.frame_bytes
                    frames = [
                        data[offset : offset + frame_bytes]
                        for offset in range(0, len(data), frame_bytes)
                    ] or [b""]

                    def ship(
                        sink=sink,
                        frames=frames,
                        compression=compression,
                        wire_codec=wire_codec,
                    ) -> None:
                        if wire_codec == "binary":
                            sink(
                                key,
                                base_epoch,
                                frames,
                                base_key=base_key,
                                compression=compression,
                                codec="binary",
                            )
                        else:
                            sink(
                                key,
                                base_epoch,
                                frames,
                                base_key=base_key,
                                compression=compression,
                            )

                    try:
                        with self._obs_span(
                            "swap.out.delta.store", device=holder.device_id
                        ), self._channel(holder, kind="delta"):
                            if resilience is None:
                                ship()
                            else:
                                resilience.run(
                                    ship,
                                    sid=sid,
                                    device_id=holder.device_id,
                                    op_name="store-delta",
                                )
                        shipped = "delta"
                    except (
                        CodecError,
                        UnknownKeyError,
                        StoreFullError,
                        TransportError,
                        RetryExhaustedError,
                    ) as exc:
                        cause = (
                            exc.__cause__
                            if isinstance(exc, RetryExhaustedError)
                            else exc
                        )
                        if isinstance(cause, CodecNegotiationError):
                            fastpath.demote_codec(holder)
                            self.stats.codec_fallbacks += 1
                        shipped = None  # diverged/lost base: ship it whole
                if shipped is None:
                    try:
                        with self._obs_span(
                            "swap.out.store",
                            device=holder.device_id,
                            stage="delta-fallback",
                        ), self._channel(holder):
                            self._store_payload(holder, key, applied_text, sid)
                        shipped = "full"
                        self.stats.fastpath_delta_fallbacks += 1
                    except (
                        StoreFullError,
                        TransportError,
                        RetryExhaustedError,
                    ):
                        continue
                stored_on.append(holder)
                if shipped == "delta":
                    delta_on.append(holder)
                if entry is not None:
                    resilience.journal.record_write(entry, holder.device_id)
            if not stored_on:
                # no retained holder reachable: the classic pipeline's
                # failover/degrade machinery takes over
                if entry is not None:
                    resilience.journal.abort(entry)
                return None
        except BaseException:
            if entry is not None:
                for holder in stored_on:
                    try:
                        holder.drop(key)
                    except (TransportError, UnknownKeyError):
                        pass
                resilience.journal.abort(entry)
            raise

        primary = stored_on[0]
        self.stats.mirror_writes += max(0, len(stored_on) - 1)
        location = SwapLocation(
            device_id=primary.device_id,
            key=key,
            digest=digest,
            xml_bytes=xml_bytes,
            epoch=epoch,
        )
        object_count = len(cluster.oids)
        bytes_freed = self._detach(cluster, outbound, location, stored_on)
        cluster.epoch = epoch
        if entry is not None:
            with self._obs_span("swap.out.journal", op="commit", sid=sid):
                resilience.journal.commit(entry)
        if resilience is not None:
            new_record = resilience.placement.record_swap_out(
                sid,
                key=key,
                digest=digest,
                epoch=epoch,
                xml_bytes=xml_bytes,
                device_ids=[holder.device_id for holder in stored_on],
            )
            for holder in stored_on:
                new_record.applied_epochs[holder.device_id] = epoch
            self._warn_if_under_replicated(sid, "delta swap-out placement short")
        self.stats.swap_outs += 1
        self.stats.fastpath_delta_ships += 1
        self.stats.bytes_shipped += delta_nbytes if delta_on else xml_bytes
        self.stats.delta_bytes_shipped += delta_nbytes * len(delta_on)
        self.stats.delta_bytes_saved += (xml_bytes - delta_nbytes) * len(
            delta_on
        )

        fastpath.cache.put(digest, applied_text)
        cluster.mark_clean(
            digest=digest,
            key=key,
            epoch=epoch,
            xml_bytes=xml_bytes,
            outbound=list(outbound),
        )
        fastpath.retained[sid] = (key, list(stored_on))
        chain.keys.append(key)
        chain.delta_bytes += delta_nbytes

        space.bus.emit(
            SwapFastPathEvent(space=space.name, sid=sid, tier="delta", key=key)
        )
        space.bus.emit(
            SwapOutEvent(
                space=space.name,
                sid=sid,
                device_id=primary.device_id,
                key=key,
                object_count=object_count,
                bytes_freed=bytes_freed,
                xml_bytes=delta_nbytes if delta_on else xml_bytes,
            )
        )
        return location

    def _channel(self, holder: Any, kind: str = "ship"):
        """A scheduler channel for ``holder``'s link (no-op when serial).

        With the async scheduler active the ship rides its channel pool
        as a SHIP/DELTA-SHIP op (and, in serial mode, delegates back to
        exactly the legacy behavior); otherwise the fast path's own
        pipeline scheduler — or plain inline execution — applies.
        """
        if self.sched is not None:
            return self.sched.ship_channel(holder, kind)
        fastpath = self.fastpath
        scheduler = fastpath.scheduler if fastpath is not None else None
        if scheduler is None:
            return nullcontext()
        return scheduler.channel(getattr(holder, "_link", None))

    def _swap_out_full(
        self, cluster: SwapCluster, chosen: SwapStore | None
    ) -> SwapLocation:
        """The classic pipeline: encode, ship, detach (epoch bump)."""
        space = self._space
        sid = cluster.sid
        members = {oid: space._objects[oid] for oid in cluster.oids}

        # Collect the cluster's outbound swap-cluster-proxies in the order
        # serialization encounters them; they become the replacement array.
        outbound: List[Any] = []
        index_by_proxy: Dict[int, int] = {}

        def outbound_index_of(proxy: Any) -> int:
            marker = id(proxy)
            index = index_by_proxy.get(marker)
            if index is None:
                index = len(outbound)
                index_by_proxy[marker] = index
                outbound.append(proxy)
            return index

        fastpath = self.fastpath
        wire_payload: Optional[bytes] = None
        if fastpath is not None and fastpath.config.codec == "binary":
            # one walk emits the binary frames AND the canonical text;
            # the digest is still computed over the canonical XML form
            with self._obs_span(
                "swap.out.encode.binary", sid=sid, objects=len(members)
            ):
                xml_text, digest, wire_payload = encode_cluster_binary(
                    sid=sid,
                    space=space.name,
                    epoch=cluster.epoch + 1,
                    objects=members,
                    oid_of=lambda obj: obj._obi_oid,
                    outbound_index_of=outbound_index_of,
                )
        else:
            # one pass: canonical text and its digest come out together
            with self._obs_span(
                "swap.out.encode", sid=sid, objects=len(members)
            ):
                xml_text, digest = encode_cluster_canonical(
                    sid=sid,
                    space=space.name,
                    epoch=cluster.epoch + 1,
                    objects=members,
                    oid_of=lambda obj: obj._obi_oid,
                    outbound_index_of=outbound_index_of,
                )
        self.stats.encode_calls += 1
        key = format_swap_key(space.name, sid, cluster.epoch + 1)
        return self._ship_and_detach(
            cluster,
            xml_text,
            key=key,
            epoch=cluster.epoch + 1,
            digest=digest,
            outbound=outbound,
            chosen=chosen,
            tier="full",
            wire_payload=wire_payload,
        )

    def _ship_and_detach(
        self,
        cluster: SwapCluster,
        xml_text: str,
        *,
        key: str,
        epoch: int,
        digest: str,
        outbound: List[Any],
        chosen: SwapStore | None,
        tier: str,
        wire_payload: Optional[bytes] = None,
    ) -> SwapLocation:
        """Ship one serialized payload (with mirrors, failover, degrade)
        and detach the cluster.  The payload is encoded exactly once by
        the caller; retries and alternate stores all reuse ``xml_text``.
        ``wire_payload`` carries the same document as binary frames for
        holders that negotiated the binary codec; every fallback path
        (degrade pool, stores without the codec) uses ``xml_text``.
        """
        space = self._space
        sid = cluster.sid
        store = chosen
        xml_bytes = len(xml_text.encode("utf-8"))
        self._obs_tag("tier", tier)
        if self.obs is not None:
            self.obs.observe_payload(xml_bytes)

        resilience = self.resilience
        degrade = (
            resilience is not None and resilience.config.degrade_to_local
        )
        admitted = True
        if store is None and self.tenant is not None:
            # fleet admission: a tenant over its store-byte quota — or
            # over its fair share while the fleet is under global store
            # pressure — may not take more shared store room.  Denial
            # routes the victim into the local compressed pool (this
            # tenant's own heap pays, nobody else's share does).
            admitted, denial_reason = self.tenant.admit_ship(
                xml_bytes, self.target_replicas()
            )
            if not admitted:
                self.stats.fleet_admission_denials += 1
                space.bus.emit(
                    TenantAdmissionDeniedEvent(
                        space=space.name,
                        tenant_id=self.tenant.tenant_id,
                        nbytes=xml_bytes,
                        reason=denial_reason,
                    )
                )
                if not degrade:
                    raise NoSwapDeviceError(
                        f"tenant {self.tenant.tenant_id!r} denied store "
                        f"admission for {xml_bytes} bytes: {denial_reason}"
                    )
        if store is None and not admitted:
            holders = []
        elif store is None:
            try:
                holders = self.select_stores(
                    xml_bytes, self.target_replicas(), sid=sid
                )
            except NoSwapDeviceError:
                # with local degradation available an empty neighborhood
                # is not fatal: fall through to the compressed pool
                if not degrade:
                    raise
                holders = []
        else:
            holders = [store]
            if self.target_replicas() > 1:
                for candidate in self.available_stores():
                    if len(holders) >= self.target_replicas():
                        break
                    if candidate in holders:
                        continue
                    try:
                        if candidate.has_room(xml_bytes):
                            holders.append(candidate)
                    except TransportError:
                        continue
        entry = None
        if resilience is not None:
            with self._obs_span("swap.out.journal", op="begin", sid=sid):
                entry = resilience.journal.begin(
                    sid, key, epoch, xml_bytes, digest=digest
                )
        stored_on: List[SwapStore] = []
        first_failure: Optional[BaseException] = None
        try:
            tried: List[SwapStore] = []
            for holder in holders:
                tried.append(holder)
                try:
                    with self._obs_span(
                        "swap.out.store",
                        device=holder.device_id,
                        stage="mirror" if stored_on else "primary",
                    ), self._channel(holder):
                        self._store_payload(
                            holder, key, xml_text, sid, wire_payload
                        )
                except StoreFullError:
                    # a caller-chosen store that refuses is the caller's
                    # problem; auto-selected mirrors are best-effort
                    if store is not None and holder is store:
                        raise
                    continue
                except (TransportError, RetryExhaustedError) as exc:
                    if first_failure is None:
                        first_failure = exc
                    continue
                stored_on.append(holder)
                if entry is not None:
                    resilience.journal.record_write(entry, holder.device_id)

            if not stored_on and resilience is not None and store is None and admitted:
                # failover: every selected holder is gone — try the
                # remaining candidates the selection pass skipped
                for candidate in self.available_stores():
                    if candidate in tried:
                        continue
                    tried.append(candidate)
                    try:
                        if not candidate.has_room(xml_bytes):
                            continue
                        with self._obs_span(
                            "swap.out.store",
                            device=candidate.device_id,
                            stage="failover",
                        ):
                            self._store_payload(
                                candidate, key, xml_text, sid, wire_payload
                            )
                    except (StoreFullError, TransportError, RetryExhaustedError):
                        continue
                    stored_on.append(candidate)
                    resilience.journal.record_write(entry, candidate.device_id)
                    self.stats.failovers += 1
                    space.bus.emit(
                        SwapFailoverEvent(
                            space=space.name,
                            sid=sid,
                            operation="swap-out",
                            from_device=holders[0].device_id
                            if holders
                            else "(none)",
                            to_device=candidate.device_id,
                        )
                    )
                    break

            if not stored_on and degrade and store is None:
                fallback = resilience.fallback_store()
                # the pool compresses into the SAME heap; freeze the
                # victim loop so a tight heap cannot recurse into us
                previous_auto = self.auto_swap
                self.auto_swap = False
                try:
                    with self._obs_span(
                        "swap.out.store",
                        device=fallback.device_id,
                        stage="degrade",
                    ):
                        fallback.store(key, xml_text)
                    stored_on.append(fallback)
                except (StoreFullError, HeapExhaustedError) as exc:
                    if first_failure is None:
                        first_failure = exc
                finally:
                    self.auto_swap = previous_auto
                if stored_on:
                    resilience.journal.record_write(entry, fallback.device_id)
                    self.stats.degraded_swaps += 1
                    space.bus.emit(
                        SwapDegradedEvent(
                            space=space.name,
                            sid=sid,
                            fallback_device_id=fallback.device_id,
                            reason=str(first_failure)
                            if first_failure is not None
                            else "no nearby store reachable",
                        )
                    )

            if not stored_on:
                if resilience is not None:
                    raise AllStoresUnreachableError(
                        f"swap-out of cluster {sid}: no device accepted the "
                        f"payload ({len(tried)} tried, retries exhausted)"
                    ) from first_failure
                raise SwapStoreUnavailableError(
                    "no selected device accepted the swapped cluster"
                ) from first_failure
        except BaseException:
            # nothing was detached: any copies that did land are orphans
            if entry is not None:
                for holder in stored_on:
                    try:
                        holder.drop(key)
                    except (TransportError, UnknownKeyError):
                        pass
                resilience.journal.abort(entry)
            raise
        primary = stored_on[0]
        self.stats.mirror_writes += max(0, len(stored_on) - 1)

        location = SwapLocation(
            device_id=primary.device_id,
            key=key,
            digest=digest,
            xml_bytes=xml_bytes,
            epoch=epoch,
        )

        object_count = len(cluster.oids)
        bytes_freed = self._detach(cluster, outbound, location, stored_on)
        cluster.epoch = epoch
        if entry is not None:
            # the detach happened strictly after at least one store
            # acknowledged the payload; the hand-off is durable
            with self._obs_span("swap.out.journal", op="commit", sid=sid):
                resilience.journal.commit(entry)
        if resilience is not None:
            record = resilience.placement.record_swap_out(
                sid,
                key=key,
                digest=digest,
                epoch=epoch,
                xml_bytes=xml_bytes,
                device_ids=[holder.device_id for holder in stored_on],
            )
            for holder in stored_on:
                record.applied_epochs[holder.device_id] = epoch
            self._warn_if_under_replicated(sid, "swap-out placement short")
        self.stats.swap_outs += 1
        self.stats.bytes_shipped += xml_bytes

        fastpath = self.fastpath
        if fastpath is not None:
            previous = fastpath.retained.pop(sid, None)
            if previous is not None and previous[0] != key:
                # the content changed: stale copies under the old keys —
                # the whole delta chain, tip first — are dead weight
                chain = fastpath.chains.pop(sid, None)
                stale = (
                    [old for old in reversed(chain.keys) if old != key]
                    if chain is not None
                    else []
                )
                if previous[0] not in stale:
                    stale.insert(0, previous[0])
                for stale_key in stale:
                    for holder in previous[1]:
                        try:
                            holder.drop(stale_key)
                        except (TransportError, UnknownKeyError):
                            pass
            fastpath.cache.put(digest, xml_text)
            cluster.mark_clean(
                digest=digest,
                key=key,
                epoch=epoch,
                xml_bytes=xml_bytes,
                outbound=list(outbound),
            )
            fastpath.retained[sid] = (key, list(stored_on))
            if fastpath.config.delta:
                chain = fastpath.chains.get(sid)
                if chain is None or not chain.keys or chain.keys[-1] != key:
                    # this payload starts a fresh chain (full rewrite)
                    fastpath.chains[sid] = DeltaChain(
                        keys=[key], base_bytes=xml_bytes
                    )
            if tier == "reship":
                self.stats.fastpath_reships += 1
                space.bus.emit(
                    SwapFastPathEvent(
                        space=space.name, sid=sid, tier="reship", key=key
                    )
                )

        space.bus.emit(
            SwapOutEvent(
                space=space.name,
                sid=sid,
                device_id=primary.device_id,
                key=key,
                object_count=object_count,
                bytes_freed=bytes_freed,
                xml_bytes=xml_bytes,
            )
        )
        return location

    def _detach(
        self,
        cluster: SwapCluster,
        outbound: List[Any],
        location: SwapLocation,
        stored_on: List[SwapStore],
    ) -> int:
        """Patch inbound proxies to a replacement-object and free members."""
        space = self._space
        sid = cluster.sid
        replacement_oid = space._ids.oids.next()
        replacement = ReplacementObject(
            sid=sid, oid=replacement_oid, outbound=outbound, location=location
        )
        patch_set = space._proxies_by_target_sid.get(sid)
        if patch_set is not None:
            for proxy in list(patch_set.values()):
                proxy._obi_detach(replacement)

        # Release the members; they become eligible for local collection.
        # (compress-local pre-releases the accounting so the pool can
        # displace the victim's own bytes — hence the ``holds`` guard)
        bytes_freed = 0
        for oid in cluster.oids:
            if space.heap.holds(oid):
                bytes_freed += space.heap.free_oid(oid)
            del space._objects[oid]
        space.heap.allocate(
            replacement_oid, space.size_model.replacement_size(len(outbound))
        )

        cluster.state = SwapClusterState.SWAPPED
        cluster.location = location
        cluster.replacement = replacement
        cluster.swap_out_count += 1
        self._bindings[sid] = stored_on
        if self.sched is not None:
            # any speculative payload buffered for this cluster predates
            # the epoch that just shipped: it can never be consumed
            self.sched.invalidate(sid, "swap-out")
        return bytes_freed

    # -- swap-in ---------------------------------------------------------------------

    def swap_in(self, sid: Sid) -> int:
        """Reload swap-cluster ``sid`` as a whole; returns bytes restored."""
        space = self._space
        cluster: SwapCluster = space._cluster(sid)
        if cluster.state is not SwapClusterState.SWAPPED:
            raise ClusterNotSwappedError(f"swap-cluster {sid} is resident")
        if sid in self._loading:
            raise SwapError(
                f"recursive swap-in of swap-cluster {sid} (reentrant access "
                f"during its own reload)"
            )
        location = cluster.location
        replacement = cluster.replacement
        assert location is not None and replacement is not None

        holders = self._bindings.get(sid, [])
        if self.resilience is not None and len(holders) > 1:
            # fastest admitted replica first: healthy circuits before
            # open ones, then best history, then lowest link latency
            holders = self.resilience.rank_replicas(holders)
        fastpath = self.fastpath
        if fastpath is not None and fastpath.scheduler is not None:
            # simulated reality must catch up with every scheduled write
            # before anything is read back from the stores
            fastpath.scheduler.drain()
        cached: Optional[str] = None
        if fastpath is not None and fastpath.config.serve_swap_in_from_cache:
            # the canonical payload may still be held locally; its digest
            # is in the (trusted) location record, so no verification or
            # fetch is needed at all
            cached = fastpath.cache.get(location.digest)
        if cached is None and not holders:
            raise SwapStoreUnavailableError(
                f"no binding for device {location.device_id}"
            )

        root_span = self._obs_span("swap.in", sid=sid)
        self._loading.add(sid)
        cluster.pins += 1
        stall_started = space.clock.now()
        try:
            resilience = self.resilience
            xml_text: Optional[str] = None
            fetch_errors: List[str] = []
            corrupt: Optional[CodecError] = None
            corrupt_holders: List[SwapStore] = []
            if cached is not None:
                xml_text = cached
                self.stats.swapin_cache_hits += 1
                root_span.set_tag("source", "cache")
            if xml_text is None and self.sched is not None:
                (
                    xml_text,
                    source_device,
                    attempt_index,
                    fetch_errors,
                    corrupt,
                    corrupt_holders,
                ) = self.sched.acquire(sid, location, holders, root_span)
                if xml_text is not None:
                    self._note_swapin_source(
                        sid, holders, source_device, attempt_index, root_span
                    )
            elif xml_text is None:
                for attempt_index, holder in enumerate(holders):
                    candidate, error, corrupt_exc = self._fetch_one(
                        holder, location, sid
                    )
                    if candidate is None:
                        fetch_errors.append(error)
                        if corrupt_exc is not None:
                            corrupt = corrupt_exc
                            corrupt_holders.append(holder)
                        continue
                    xml_text = candidate
                    self._note_swapin_source(
                        sid,
                        holders,
                        holder.device_id,
                        attempt_index,
                        root_span,
                    )
                    break
            if xml_text is None:
                if corrupt is not None and all(
                    "digest" in message for message in fetch_errors
                ):
                    # every copy was retrieved but corrupted: a codec
                    # problem, not an availability one
                    raise corrupt
                raise AllStoresUnreachableError(
                    f"cannot fetch {location.key} from any of "
                    f"{len(holders)} device(s): {'; '.join(fetch_errors)}"
                )
            if self.validate_documents:
                from repro.wire.schema import ensure_valid_cluster

                ensure_valid_cluster(xml_text)
            resolve_extern = None
            if space.extern_resolver is not None:
                resolve_extern = lambda attrs: space.extern_resolver(attrs, sid)  # noqa: E731
            stashed = self._bin_decoded.pop(sid, None)
            if stashed is not None and stashed[0] == location.digest:
                # the fetch pass already decoded the binary frames (and
                # verified the canonical digest) — nothing to re-decode
                document = stashed[1]
            else:
                with self._obs_span(
                    "swap.in.decode", sid=sid, objects=len(cluster.oids)
                ):
                    document = decode_cluster(
                        xml_text,
                        registry=space._registry,
                        resolve_out=replacement.outbound_at,
                        resolve_extern=resolve_extern,
                    )
            if set(document.objects) != cluster.oids:
                raise CodecError(
                    f"swap-cluster {sid}: stored membership does not match "
                    f"the manager's tables"
                )

            # Make room before adopting (the replacement's bytes come back
            # once the reload succeeds).
            sizes = {
                oid: space.size_model.size_of(obj)
                for oid, obj in document.objects.items()
            }
            total = sum(sizes.values())
            if not space.heap.would_fit(total):
                self.ensure_room(total)
            if not space.heap.would_fit(total):
                raise HeapExhaustedError(
                    f"cannot reload swap-cluster {sid}: needs {total} bytes, "
                    f"{space.heap.free} free"
                )

            for oid in sorted(document.objects):
                replica = document.objects[oid]
                space._install_replica(replica, oid, sid)
                space.heap.allocate(oid, sizes[oid])

            # Patch all inbound proxies back to the replicas.
            patch_set = space._proxies_by_target_sid.get(sid)
            if patch_set is not None:
                for proxy in list(patch_set.values()):
                    proxy._obi_patch(document.objects[proxy._obi_target_oid])

            space.heap.free_oid(replacement.oid)
            cluster.state = SwapClusterState.RESIDENT
            cluster.replacement = None
            cluster.location = None
            cluster.swap_in_count += 1
            self.stats.swap_ins += 1
            self.stats.bytes_restored += total
            if self.sched is not None:
                # decode + install + proxy patch is the RELOAD-VERIFY
                # stage of the op — pure CPU, completes at the instant
                self.sched.note_reload(sid)

            if corrupt_holders:
                # a corrupt copy must never be retained for fast-path
                # probes (contains cannot see bitrot): drop it now
                for bad in corrupt_holders:
                    try:
                        bad.drop(location.key)
                    except (TransportError, UnknownKeyError):
                        pass
                holders = [
                    holder for holder in holders if holder not in corrupt_holders
                ]
                self._bindings[sid] = list(holders)
            if resilience is not None:
                resilience.placement.forget(sid)

            retain = (
                fastpath is not None and fastpath.config.retain_remote_copies
            )
            if retain and holders:
                # leave the copies in place: if the cluster comes back
                # clean, the next swap-out is a metadata-only no-op (and
                # the delta chain stays valid for a later delta ship)
                fastpath.retained[sid] = (location.key, list(holders))
            else:
                chain = (
                    fastpath.chains.pop(sid, None)
                    if fastpath is not None
                    else None
                )
                if not self.keep_swapped_copies:
                    stale = (
                        list(reversed(chain.keys))
                        if chain is not None
                        else []
                    )
                    if location.key not in stale:
                        stale.insert(0, location.key)
                    if self.sched is not None and self.sched.defer_drops(
                        sid, stale, list(holders)
                    ):
                        pass  # invalidations ride the transfer channels
                    else:
                        for stale_key in stale:
                            for holder in holders:
                                try:
                                    holder.drop(stale_key)
                                except (TransportError, UnknownKeyError):
                                    pass  # stale copies are harmless; epochs prevent reuse
            if fastpath is not None:
                fastpath.cache.put(location.digest, xml_text)
                # the replicas were just decoded from this payload: the
                # cluster re-enters residency *clean*
                cluster.mark_clean(
                    digest=location.digest,
                    key=location.key,
                    epoch=location.epoch,
                    xml_bytes=location.xml_bytes,
                    outbound=list(replacement.outbound),
                )
            space.bus.emit(
                SwapInEvent(
                    space=space.name,
                    sid=sid,
                    device_id=location.device_id,
                    key=location.key,
                    object_count=len(document.objects),
                    bytes_restored=total,
                )
            )
            if self.ladder is not None:
                # the simulated seconds this access spent blocked on the
                # reload — the headline responsiveness SLO sample
                self.ladder.record_fault_stall(
                    space.clock.now() - stall_started, cluster.priority
                )
            return total
        except BaseException as exc:
            root_span.fail(exc)
            raise
        finally:
            root_span.finish()
            cluster.pins -= 1
            self._loading.discard(sid)

    # -- resilient store I/O ------------------------------------------------------

    def _store_payload(
        self,
        holder: SwapStore,
        key: str,
        xml_text: str,
        sid: Sid,
        wire_payload: Optional[bytes] = None,
    ) -> None:
        """Ship one payload; retried under the resilience policy if enabled.

        With the fast path on and a batching-capable store, the payload
        travels as compressed frames over one connection
        (``store_stream``): one link latency for the whole batch instead
        of one per payload-sized transfer, and fewer bytes on the wire
        when a codec was negotiated.  Retries re-chunk but never
        re-encode — the serialized text is produced once by the caller.

        A holder that negotiated the binary wire codec gets
        ``wire_payload`` frames instead of text; if it rejects them
        after all (:class:`~repro.errors.CodecNegotiationError` — e.g. a
        FlakyStore ``codec_downgrade`` fault), the store is demoted to
        XML and the same payload re-ships transparently as text.
        """
        try:
            self._run_ship(
                self._shipper(holder, key, xml_text, wire_payload),
                holder,
                sid,
            )
            return
        except CodecNegotiationError:
            pass
        except RetryExhaustedError as exc:
            if not isinstance(exc.__cause__, CodecNegotiationError):
                raise
        # the store refused the negotiated framing: pin it to canonical
        # XML and re-ship the identical document as text
        assert self.fastpath is not None
        self.fastpath.demote_codec(holder)
        self.stats.codec_fallbacks += 1
        self._run_ship(self._shipper(holder, key, xml_text, None), holder, sid)

    def _run_ship(
        self, ship: Callable[[], None], holder: SwapStore, sid: Sid
    ) -> None:
        if self.resilience is None:
            ship()
            return
        self.resilience.run(
            ship,
            sid=sid,
            device_id=holder.device_id,
            op_name="store",
        )

    def _shipper(
        self,
        holder: SwapStore,
        key: str,
        xml_text: str,
        wire_payload: Optional[bytes] = None,
    ) -> Callable[[], None]:
        fastpath = self.fastpath
        stream = getattr(holder, "store_stream", None)
        if fastpath is None or stream is None:
            return lambda: holder.store(key, xml_text)
        compression = fastpath.negotiate_for(holder)
        if (
            wire_payload is not None
            and fastpath.negotiate_codec_for(holder) == "binary"
        ):
            data = compress_body(wire_payload, compression)
            codec: Optional[str] = "binary"
        else:
            data = compress_payload(xml_text, compression)
            codec = None
        frame_bytes = fastpath.config.frame_bytes
        frames = [
            data[offset : offset + frame_bytes]
            for offset in range(0, len(data), frame_bytes)
        ] or [b""]
        if codec == "binary":
            # count only ships that land: a CodecNegotiationError refusal
            # falls back to XML and must not inflate the binary tally
            def ship_binary() -> None:
                stream(key, frames, compression, codec="binary")
                self.stats.codec_binary_ships += 1

            return ship_binary
        return lambda: stream(key, frames, compression)

    def _fetch_verified(
        self, holder: SwapStore, location: SwapLocation, sid: Sid
    ) -> str:
        """Fetch + digest-check one copy; retried (transport failures
        *and* transient corruption) under the resilience policy."""
        fastpath = self.fastpath
        fetch_wire = (
            getattr(holder, "fetch_wire", None)
            if fastpath is not None and fastpath.config.codec == "binary"
            else None
        )

        def attempt() -> str:
            if fetch_wire is not None:
                raw, wire_codec = fetch_wire(location.key)
                if wire_codec == "binary":
                    return self._decode_wire(raw, holder, location, sid)
                # the store holds this key as canonical XML (negotiation
                # fell back, or the entry predates the codec)
                text = raw.decode("utf-8")
            else:
                text = holder.fetch(location.key)
            # verify_payload hashes the raw text first (payloads are
            # canonical on the wire) and only falls back to the full
            # canonicalization pass for foreign text
            with self._obs_span("swap.in.verify", device=holder.device_id):
                if not verify_payload(text, location.digest):
                    raise CorruptPayloadError(
                        f"device {holder.device_id} returned corrupted XML "
                        f"for {location.key} (digest mismatch)"
                    )
            return text

        if self.resilience is None:
            return attempt()
        return self.resilience.run(
            attempt,
            sid=sid,
            device_id=holder.device_id,
            op_name="fetch",
            retry_on=(TransportError, CorruptPayloadError),
        )

    def _decode_wire(
        self, raw: bytes, holder: SwapStore, location: SwapLocation, sid: Sid
    ) -> str:
        """Decode binary wire frames fetched from ``holder``.

        One pass rebuilds the instances AND re-derives the canonical
        text + digest; comparing that digest against the trusted
        location record is the same integrity bar as ``verify_payload``
        on the text path.  The decoded document is stashed so
        ``swap_in`` does not decode the canonical text a second time.
        """
        space = self._space
        cluster = space._clusters.get(sid)
        replacement = cluster.replacement if cluster is not None else None
        if replacement is None:
            raise CorruptPayloadError(
                f"binary fetch for {location.key}: swap-cluster {sid} has "
                f"no replacement table to resolve outbound references"
            )
        resolve_extern = None
        if space.extern_resolver is not None:
            resolve_extern = lambda attrs: space.extern_resolver(attrs, sid)  # noqa: E731
        with self._obs_span("swap.in.decode.binary", device=holder.device_id):
            try:
                document, text, digest = decode_cluster_binary(
                    raw,
                    registry=space._registry,
                    resolve_out=replacement.outbound_at,
                    resolve_extern=resolve_extern,
                )
            except CodecError as exc:
                raise CorruptPayloadError(
                    f"device {holder.device_id} returned corrupt binary "
                    f"frames for {location.key}: {exc}"
                ) from exc
        if digest != location.digest:
            raise CorruptPayloadError(
                f"device {holder.device_id} returned corrupted frames for "
                f"{location.key} (digest mismatch)"
            )
        self.stats.codec_binary_fetches += 1
        self._bin_decoded[sid] = (digest, document)
        return text

    def _fetch_one(
        self, holder: SwapStore, location: SwapLocation, sid: Sid
    ) -> tuple[Optional[str], Optional[str], Optional[CodecError]]:
        """One demand-fetch attempt against one holder.

        Wraps :meth:`_fetch_verified` with the per-attempt span, the
        corrupt-copy quarantine, and the error-message formatting shared
        by the legacy blocking loop and the async scheduler's FETCH ops.
        Returns ``(text, error, corrupt)``: exactly one of ``text`` /
        ``error`` is set; ``corrupt`` carries the digest-mismatch
        exception when that is what failed the attempt.
        """
        fetch_span = self._obs_span("swap.in.fetch", device=holder.device_id)
        try:
            with fetch_span:
                return self._fetch_verified(holder, location, sid), None, None
        except CorruptPayloadError as exc:
            self._quarantine_corrupt(sid, holder, location)
            return (
                None,
                f"{holder.device_id}: digest mismatch",
                CodecError(str(exc)),
            )
        except RetryExhaustedError as exc:
            if isinstance(exc.__cause__, CorruptPayloadError):
                self._quarantine_corrupt(sid, holder, location)
                return (
                    None,
                    f"{holder.device_id}: digest mismatch",
                    CodecError(str(exc.__cause__)),
                )
            return None, f"{holder.device_id}: {exc}", None
        except (TransportError, UnknownKeyError) as exc:
            return None, f"{holder.device_id}: {exc}", None

    def _note_swapin_source(
        self,
        sid: Sid,
        holders: List[SwapStore],
        device_id: str,
        attempt_index: int,
        root_span: Any,
    ) -> None:
        """Record where a swap-in payload came from (failover included)."""
        root_span.set_tag("source", device_id)
        if attempt_index > 0:
            root_span.set_tag("failover", True)
            self.stats.mirror_failovers += 1
            if self.resilience is not None:
                space = self._space
                space.bus.emit(
                    SwapFailoverEvent(
                        space=space.name,
                        sid=sid,
                        operation="swap-in",
                        from_device=holders[0].device_id,
                        to_device=device_id,
                    )
                )

    def recover_journal(self) -> int:
        """Clean up after interrupted swap-outs; returns entries recovered.

        A pending journal entry whose cluster never detached names the
        store copies that were acknowledged before the operation died —
        orphans that would otherwise sit on nearby devices forever.
        Each named copy is dropped (best-effort) and the entry aborted.
        Entries whose hand-off actually completed (cluster swapped at
        the entry's epoch) are committed instead — their copies are the
        live data.
        """
        resilience = self.resilience
        if resilience is None:
            return 0
        recovered = 0
        stores_by_id = {
            holder.device_id: holder for holder in self.available_stores()
        }
        if resilience._fallback is not None:
            stores_by_id.setdefault(
                resilience._fallback.device_id, resilience._fallback
            )
        for entry in resilience.journal.pending():
            cluster = self._space._clusters.get(entry.sid)
            if (
                cluster is not None
                and cluster.state is SwapClusterState.SWAPPED
                and cluster.epoch == entry.epoch
            ):
                resilience.journal.commit(entry)
                continue
            for device_id in entry.writes:
                holder = stores_by_id.get(device_id)
                if holder is None:
                    continue
                try:
                    holder.drop(entry.key)
                except (TransportError, UnknownKeyError):
                    pass
            resilience.journal.abort(entry)
            resilience.journal.stats.recoveries += 1
            self.stats.journal_recoveries += 1
            recovered += 1
        return recovered

    def recover_placement(self) -> int:
        """Rebuild the placement map after a restart; returns records rebuilt.

        The in-memory map is gone after a crash; what survives is the
        write-ahead journal (committed entries name the acknowledged
        replica set per epoch) and the stores' own inventory.  For every
        cluster still swapped, the two are reconciled: journal-named
        copies confirmed by a key probe come back ``ACTIVE``, journal-
        named copies on unreachable stores come back ``SUSPECT`` (the
        scrubber re-verifies them), and inventory copies the (possibly
        truncated) journal forgot are re-adopted.
        """
        from repro.resilience.journal import JournalEntryState
        from repro.resilience.placement import ReplicaState

        resilience = self.resilience
        if resilience is None:
            return 0
        stores_by_id: Dict[str, SwapStore] = {
            holder.device_id: holder for holder in self.available_stores()
        }
        if resilience._fallback is not None:
            stores_by_id.setdefault(
                resilience._fallback.device_id, resilience._fallback
            )
        committed: Dict[tuple, Any] = {}
        for entry in reversed(resilience.journal.history()):
            if entry.state is JournalEntryState.COMMITTED:
                committed.setdefault((entry.sid, entry.epoch), entry)

        rebuilt = 0
        for sid, cluster in self._space._clusters.items():
            if cluster.state is not SwapClusterState.SWAPPED:
                continue
            location = cluster.location
            if location is None:
                continue
            entry = committed.get((sid, location.epoch))
            named = list(entry.writes) if entry is not None else []
            suspects: List[str] = []
            active: List[str] = []
            holders: List[SwapStore] = []
            for device_id, holder in stores_by_id.items():
                if device_id in named:
                    continue
                # inventory scan: copies the truncated journal lost
                probe = getattr(holder, "contains", None)
                if probe is None:
                    continue
                try:
                    if probe(location.key):
                        named.append(device_id)
                except (TransportError, RetryExhaustedError):
                    continue
            for device_id in named:
                holder = stores_by_id.get(device_id)
                if holder is None:
                    suspects.append(device_id)  # departed: may rejoin
                    continue
                probe = getattr(holder, "contains", None)
                try:
                    present = True if probe is None else probe(location.key)
                except (TransportError, RetryExhaustedError):
                    suspects.append(device_id)
                    continue
                if present:
                    active.append(device_id)
                    holders.append(holder)
            record = resilience.placement.record_swap_out(
                sid,
                key=location.key,
                digest=location.digest,
                epoch=location.epoch,
                xml_bytes=location.xml_bytes,
                device_ids=active,
            )
            for device_id in suspects:
                record.replicas[device_id] = ReplicaState.SUSPECT
            self._bindings[sid] = holders
            resilience.placement.stats.recoveries += 1
            self.stats.placement_recoveries += 1
            rebuilt += 1
        return rebuilt

    # -- store churn --------------------------------------------------------------

    def detach_store(self, store: SwapStore, *, dead: bool = False) -> List[Sid]:
        """A store is leaving the neighborhood; returns affected sids.

        ``dead=False`` (planned departure / out of range): its replicas
        are marked ``SUSPECT`` — the copies may still exist and will be
        re-verified, not re-shipped, if the store rejoins.  ``dead=True``
        (battery pulled, storage wiped): the replicas are struck from
        the map outright.  Either way, affected swapped clusters become
        under-replicated and the scrubber re-replicates them.
        """
        self.remove_store(store)
        device_id = store.device_id
        resilience = self.resilience
        affected: List[Sid] = []
        if resilience is not None:
            if dead:
                affected = resilience.placement.mark_device_lost(device_id)
                rf = self.target_replicas()
                for sid in affected:
                    record = resilience.placement.get(sid)
                    if record is not None and record.live_count < rf:
                        self._space.bus.emit(
                            ClusterUnderReplicatedEvent(
                                space=self._space.name,
                                sid=sid,
                                live_replicas=record.live_count,
                                target_replicas=rf,
                                reason=f"{device_id}: store died",
                            )
                        )
            else:
                affected = resilience.mark_device_suspect(
                    device_id, reason="store detached"
                )
        # swap-in must not waste its first fetch on the departed store
        for sid, bound in list(self._bindings.items()):
            pruned = [holder for holder in bound if holder is not store]
            if len(pruned) != len(bound):
                self._bindings[sid] = pruned
                if sid not in affected:
                    affected.append(sid)
        if self.fastpath is not None:
            for sid, (key, retained) in list(self.fastpath.retained.items()):
                if store in retained:
                    self.fastpath.retained[sid] = (
                        key,
                        [holder for holder in retained if holder is not store],
                    )
        self._space.bus.emit(
            StoreDetachedEvent(
                space=self._space.name,
                device_id=device_id,
                dead=dead,
                affected_clusters=len(affected),
            )
        )
        if self.topology is not None:
            self.topology.on_store_removed(
                device_id,
                dead=dead,
                reason="store died" if dead else "store detached",
            )
        return affected

    def attach_store(self, store: SwapStore) -> None:
        """A store (re)joined the neighborhood.

        Rejoining is evidence of reachability: the store's circuit is
        closed so selection admits it immediately.  Suspect replicas it
        may still hold are re-verified by the next scrub pass, not
        trusted blindly.
        """
        self.add_store(store)
        if self.resilience is not None:
            self.resilience.record_success(store.device_id)
        if self.topology is not None:
            self.topology.on_store_attached(store)
        self._space.bus.emit(
            StoreRejoinedEvent(space=self._space.name, device_id=store.device_id)
        )

    def _quarantine_corrupt(
        self, sid: Sid, holder: SwapStore, location: SwapLocation
    ) -> None:
        """A fetched copy failed the end-to-end digest check."""
        self.stats.replicas_quarantined += 1
        if self.resilience is not None:
            self.resilience.placement.quarantine(sid, holder.device_id)
        self._space.bus.emit(
            ReplicaCorruptEvent(
                space=self._space.name,
                sid=sid,
                device_id=holder.device_id,
                key=location.key,
                source="swap-in",
            )
        )

    def _warn_if_under_replicated(self, sid: Sid, reason: str) -> None:
        resilience = self.resilience
        if resilience is None:
            return
        record = resilience.placement.get(sid)
        rf = self.target_replicas()
        if record is not None and record.live_count < rf:
            self._space.bus.emit(
                ClusterUnderReplicatedEvent(
                    space=self._space.name,
                    sid=sid,
                    live_replicas=record.live_count,
                    target_replicas=rf,
                    reason=reason,
                )
            )

    # -- memory pressure ----------------------------------------------------------------

    def ensure_room(self, need_bytes: int) -> int:
        """Swap out victims until ``need_bytes`` fit (or nothing is left).

        Returns the number of bytes actually freed.  Swallows
        device-availability errors: memory pressure with no nearby device
        simply cannot be relieved, and the caller's allocation will fail
        with :class:`HeapExhaustedError`.
        """
        space = self._space
        ladder = self.ladder
        started = space.clock.now()
        if ladder is not None:
            rung = ladder.update()
            if self.sched is not None:
                # rising pressure reclaims speculative buffers first
                self.sched.on_pressure(int(rung))
        if self.tenant is not None:
            # fair-share victim selection under global store pressure:
            # before this tenant's victims ship, the fleet frees store
            # room by evicting redundant copies of over-share tenants
            # first — an under-share tenant's reclaim never touches
            # anyone still inside their guaranteed share
            self.tenant.prepare_room(need_bytes)
        freed = 0
        while not space.heap.would_fit(need_bytes):
            victim = self.victim_selector(space)
            if victim is None:
                break
            before = space.heap.used
            try:
                self.swap_out(victim)
            except (NoSwapDeviceError, SwapStoreUnavailableError):
                break
            freed += before - space.heap.used
        if ladder is not None and not space.heap.would_fit(need_bytes):
            # the victim loop could not make room — the moment a real
            # OOM killer fires, whatever the signal estimated
            ladder.force_emergency(
                f"reclaim failed: {need_bytes} bytes still needed"
            )
            freed += self._emergency_evict(need_bytes)
        if ladder is not None:
            ladder.record_alloc_stall(space.clock.now() - started)
        return freed

    def _emergency_evict(self, need_bytes: int) -> int:
        """EMERGENCY rung: OOM-kill clusters until the bytes fit.

        Victims are taken lowest-priority-first (idle before background),
        least-recently-crossed within a priority band.  Two kinds of
        cluster are killable: resident swappable ones (their members are
        evicted outright) and clusters hibernating in the local
        compressed pool (their pool bytes live in this same heap, so
        dropping them is reclamation too).  Foreground clusters are
        exempt while ``protect_foreground`` holds and any lower-priority
        candidate remains — under that policy a space whose remaining
        candidates are all foreground simply stays full and the
        allocation fails, which the benchmark counts as an SLO breach
        rather than a kill.
        """
        space = self._space
        ladder = self.ladder
        protect = ladder is not None and ladder.config.protect_foreground
        pool_device = None
        if ladder is not None and ladder.has_fallback():
            pool_device = ladder.fallback_store().device_id
        freed = 0
        while not space.heap.would_fit(need_bytes):
            candidates = [
                cluster
                for cluster in space._clusters.values()
                if cluster.sid not in self._loading  # never the one being reloaded
                and (
                    cluster.swappable()
                    or (
                        cluster.is_swapped
                        and pool_device is not None
                        and any(
                            holder.device_id == pool_device
                            for holder in self._bindings.get(cluster.sid, [])
                        )
                    )
                )
            ]
            if protect:
                spared = [
                    cluster
                    for cluster in candidates
                    if cluster.priority < FOREGROUND_PRIORITY
                ]
                if spared:
                    candidates = spared
                elif candidates:
                    break  # only foreground left: refuse to kill it
            if not candidates:
                break
            victim = min(
                candidates,
                key=lambda c: (c.priority, c.last_crossing_tick, c.sid),
            )
            freed += self._oom_kill(victim)
        return freed

    def _oom_kill(self, cluster: SwapCluster) -> int:
        """Discard a cluster outright — no encode, no ship.

        The nuclear option: a resident victim has every member evicted
        from the heap; a pool-hibernated one has its stored copies (and
        their compressed heap bytes) dropped.  Either way the cluster
        record goes, tombstoning any proxies that still point at it
        (later access raises ``IntegrityError``).  Returns the heap
        bytes freed.
        """
        space = self._space
        sid = cluster.sid
        priority = cluster.priority
        object_count = len(cluster.oids)
        freed = 0
        if cluster.is_swapped:
            # pool-hibernated victim: dropping the stored copies frees
            # their compressed bytes from this same heap
            before = space.heap.used
            self.drop_swapped(cluster)
            freed += before - space.heap.used
        else:
            for oid in list(cluster.oids):
                freed += space._evict_object(oid)
        # drops retained store copies too, via _on_cluster_collected
        space._drop_cluster_record(sid)
        self.stats.oom_kills += 1
        if priority >= FOREGROUND_PRIORITY:
            self.stats.oom_kills_foreground += 1
        space.bus.emit(
            ClusterOomKilledEvent(
                space=space.name,
                sid=sid,
                priority=priority,
                object_count=object_count,
                bytes_freed=freed,
            )
        )
        return freed

    def on_heap_exhausted(self, heap: Any, need_bytes: int) -> None:
        """Callback wired to ``heap.on_exhausted`` by the space."""
        if self.auto_swap:
            self.ensure_room(need_bytes)

    # -- GC cooperation -------------------------------------------------------------------

    def drop_swapped(self, cluster: SwapCluster) -> None:
        """A swapped cluster became unreachable: tell the store to drop it.

        Paper, Section 3: "when a replacement-object, standing in for a
        swap-cluster that has been swapped-out, becomes unreachable ...
        the swapping device may be instructed to discard the XML text".
        """
        space = self._space
        location = cluster.location
        holders = self._bindings.pop(cluster.sid, [])
        if self.sched is not None:
            self.sched.invalidate(cluster.sid, "dropped")
        if self.resilience is not None:
            self.resilience.placement.forget(cluster.sid)
        if location is not None:
            for holder in holders:
                try:
                    holder.drop(location.key)
                except (TransportError, UnknownKeyError):
                    pass  # unreachable device: the copy is orphaned, by design
        if self.fastpath is not None:
            chain = self.fastpath.chains.pop(cluster.sid, None)
            retained = self.fastpath.retained.pop(cluster.sid, None)
            stale: List[str] = (
                list(reversed(chain.keys)) if chain is not None else []
            )
            if retained is not None and retained[0] not in stale:
                stale.insert(0, retained[0])
            drop_from: List[SwapStore] = list(holders)
            if retained is not None:
                for holder in retained[1]:
                    if holder not in drop_from:
                        drop_from.append(holder)
            for stale_key in stale:
                if location is not None and stale_key == location.key:
                    continue  # already dropped with the primary copies
                for holder in drop_from:
                    try:
                        holder.drop(stale_key)
                    except (TransportError, UnknownKeyError):
                        pass
        if cluster.replacement is not None:
            space.heap.free_oid(cluster.replacement.oid)
            cluster.replacement = None
        self.stats.drops += 1
        if location is not None:
            space.bus.emit(
                SwapDroppedEvent(
                    space=space.name,
                    sid=cluster.sid,
                    device_id=location.device_id,
                    key=location.key,
                )
            )

    # -- events ------------------------------------------------------------------------------

    def _on_cluster_replicated(self, event: Any) -> None:
        if event.space == self._space.name:
            self.stats.replicated_clusters += 1

    def _on_cluster_collected(self, event: Any) -> None:
        """A resident cluster was reclaimed by the local collector: its
        retained store copies (left behind for fast-path no-ops) are
        unreachable through any replacement-object, so drop them."""
        if event.space != self._space.name or self.fastpath is None:
            return
        chain = self.fastpath.chains.pop(event.sid, None)
        retained = self.fastpath.retained.pop(event.sid, None)
        if retained is None:
            return
        key, holders = retained
        stale = list(reversed(chain.keys)) if chain is not None else []
        if key not in stale:
            stale.insert(0, key)
        for stale_key in stale:
            for holder in holders:
                try:
                    holder.drop(stale_key)
                except (TransportError, UnknownKeyError):
                    pass

    def binding_for(self, sid: Sid) -> Optional[SwapStore]:
        """The primary store holding a swapped cluster (None if resident)."""
        holders = self._bindings.get(sid)
        return holders[0] if holders else None

    def bindings_for(self, sid: Sid) -> List[SwapStore]:
        """All stores holding copies of a swapped cluster."""
        return list(self._bindings.get(sid, []))

    # -- fleet reclaim -----------------------------------------------------------

    def reclaim_store_copies(
        self,
        need_bytes: int,
        *,
        store_ids: Optional[set] = None,
    ) -> Tuple[int, int]:
        """Drop *redundant* store copies to free shared store room.

        Called by the fleet's fair-share reclaimer against a tenant over
        its share.  Two safe tiers, cheapest consequence first:

        1. retained clean copies of **resident** clusters — pure cache;
           the only cost is that the next clean swap-out re-ships;
        2. mirror replicas of **swapped** clusters beyond the primary —
           durability narrows, data survives on the primary and the
           scrubber re-replicates once pressure subsides.

        The last copy of a swapped cluster is never touched.  With
        ``store_ids`` given, only copies on those devices are dropped
        (the fleet's stores, not e.g. a local compressed pool).  Returns
        ``(copies_dropped, bytes_freed)``; stops once ``need_bytes``
        have been freed.
        """
        space = self._space
        fastpath = self.fastpath
        copies = 0
        freed = 0

        def in_fleet(holder: SwapStore) -> bool:
            return store_ids is None or holder.device_id in store_ids

        # tier 1: retained clean copies of resident clusters
        if fastpath is not None:
            for sid in sorted(fastpath.retained):
                if freed >= need_bytes:
                    break
                cluster = space._clusters.get(sid)
                if cluster is None or cluster.is_swapped:
                    continue
                key, holders = fastpath.retained[sid]
                chain = fastpath.chains.get(sid)
                stale = list(reversed(chain.keys)) if chain is not None else []
                if key not in stale:
                    stale.insert(0, key)
                kept: List[SwapStore] = []
                for holder in holders:
                    if not in_fleet(holder):
                        kept.append(holder)
                        continue
                    for stale_key in stale:
                        try:
                            holder.drop(stale_key)
                        except (TransportError, UnknownKeyError):
                            pass
                    copies += 1
                    freed += cluster.clean_xml_bytes or 0
                if kept:
                    fastpath.retained[sid] = (key, kept)
                else:
                    fastpath.retained.pop(sid, None)
                    fastpath.chains.pop(sid, None)
                self._bindings.pop(sid, None)

        # tier 2: mirror replicas of swapped clusters (primary survives)
        for sid in sorted(self._bindings):
            if freed >= need_bytes:
                break
            cluster = space._clusters.get(sid)
            if cluster is None or not cluster.is_swapped:
                continue
            location = cluster.location
            holders = self._bindings.get(sid, [])
            if location is None or len(holders) <= 1:
                continue
            survivors = [holders[0]]
            for holder in holders[1:]:
                if not in_fleet(holder) or freed >= need_bytes:
                    survivors.append(holder)
                    continue
                try:
                    holder.drop(location.key)
                except (TransportError, UnknownKeyError):
                    pass
                if self.resilience is not None:
                    self.resilience.placement.remove_replica(
                        sid, holder.device_id
                    )
                copies += 1
                freed += location.xml_bytes
            self._bindings[sid] = survivors

        if copies:
            self.stats.fleet_reclaim_evictions += copies
            self.stats.fleet_reclaim_bytes += freed
        return copies, freed
