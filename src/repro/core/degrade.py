"""The degrade ladder: controlled escalation under pressure.

The prior subsystems each answer one failure mode — retries for flaky
links, replication for departing stores, deltas for expensive ships,
the compressed pool for an empty neighborhood.  What was missing is the
*order* in which they give way when heap pressure and a sick
neighborhood coincide.  This module adds it: a
:class:`DegradeLadder` attached to the
:class:`~repro.core.manager.SwappingManager` reads an explicit
:class:`~repro.policy.pressure.PressureSignal` before every swap-out
and routes the operation down one of four rungs —

==================  ========================================================
rung                behavior
==================  ========================================================
``NORMAL``          the full pipeline: clean no-ops, delta ships, remote
                    full ships — exactly as without the ladder
``COMPRESS_LOCAL``  swap-outs compress into the local
                    :class:`~repro.baselines.compression.CompressedPoolStore`
                    first (CPU-only, zero link traffic); remote shipping is
                    the fallback, and delta encoding is skipped (the chain
                    would point at stores we are trying not to talk to)
``DROP_CLEAN``      verified-clean clusters are evicted on the strength of
                    the placement ledger alone — no ``contains`` probes, no
                    re-ship, zero bytes and zero latency on the link
``EMERGENCY``       when the victim loop still cannot make room, resident
                    clusters are OOM-killed lowest-priority-first
                    (foreground clusters are exempt while
                    ``protect_foreground`` holds and any other candidate
                    exists)
==================  ========================================================

Escalation is immediate — the signal's level *is* the target rung.
De-escalation is hysteretic and fully reversible: one rung down per
``hold_s`` of simulated time spent below the current rung, until the
ladder is back at ``NORMAL`` and the pipeline behaves exactly as if it
had never been installed (pool-hibernated clusters are re-promoted to
real stores by the existing scrubber).

The ladder also owns the responsiveness SLO bookkeeping: fault stalls
(simulated seconds an access waited for a swap-in) and allocation
stalls, with p95s exported through ``repro.obs`` as
``slo.fault_stall.*``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.events import DegradeRungChangedEvent, PressureChangedEvent
from repro.policy.pressure import (
    PressureLevel,
    PressureSignal,
    PressureThresholds,
    classify,
    links_busy_seconds,
    store_health_of,
)

#: ``SwapCluster.priority`` value the emergency rung must not kill
#: (``repro.policy.priority.Priority.FOREGROUND``, as a plain int).
FOREGROUND_PRIORITY = 2


class DegradeRung(enum.IntEnum):
    """Rung indices deliberately mirror :class:`PressureLevel` values."""

    NORMAL = 0
    COMPRESS_LOCAL = 1
    DROP_CLEAN = 2
    EMERGENCY = 3


@dataclass(frozen=True)
class DegradeLadderConfig:
    """Tuning knobs for the degrade ladder."""

    thresholds: PressureThresholds = field(default_factory=PressureThresholds)
    #: Simulated seconds the signal must stay below the current rung
    #: before the ladder steps down one rung (hysteresis).
    hold_s: float = 5.0
    #: The responsiveness SLO this space is held to (benchmarks and the
    #: obs export read it; the ladder itself never blocks on it).
    slo_p95_stall_s: float = 2.0
    #: Emergency rung: never OOM-kill a foreground-priority cluster
    #: while any lower-priority candidate exists.
    protect_foreground: bool = True
    #: Install the ``responsiveness`` victim strategy when the ladder
    #: is enabled (set False to keep the manager's current selector).
    install_selector: bool = True
    victim_strategy: str = "responsiveness"
    #: Minimum simulated seconds between link-saturation samples (the
    #: reading is a rate and needs a window to be meaningful).
    saturation_window_s: float = 1.0
    #: Heap share the ladder's own fallback pool may occupy when no
    #: resilience coordinator provides one.
    fallback_pool_fraction: float = 0.5
    #: Stall samples retained per tracker (oldest dropped beyond this).
    stall_samples: int = 4096


class StallTracker:
    """Bounded reservoir of (seconds, priority) stall samples."""

    def __init__(self, cap: int = 4096) -> None:
        self._cap = max(1, cap)
        self._samples: List[Tuple[float, int]] = []
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float, priority: int = 1) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        self._samples.append((seconds, priority))
        if len(self._samples) > self._cap:
            del self._samples[: len(self._samples) - self._cap]

    def samples(self, *, min_priority: Optional[int] = None) -> List[float]:
        return [
            seconds
            for seconds, priority in self._samples
            if min_priority is None or priority >= min_priority
        ]

    def p95(self, *, min_priority: Optional[int] = None) -> float:
        values = sorted(self.samples(min_priority=min_priority))
        if not values:
            return 0.0
        index = max(0, -(-len(values) * 95 // 100) - 1)  # ceil(0.95n) - 1
        return values[index]

    def mean(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class DegradeLadder:
    """Pressure-tiered degradation state for one swapping manager."""

    def __init__(self, manager: Any, config: DegradeLadderConfig) -> None:
        self.config = config
        self._manager = manager
        self.rung = DegradeRung.NORMAL
        #: The most recent :class:`PressureSignal` (None before the
        #: first assessment).
        self.signal: Optional[PressureSignal] = None
        #: ``(sim_time, from_rung, to_rung)`` per transition.
        self.transitions: List[Tuple[float, int, int]] = []
        #: Fault stalls: simulated seconds an access spent waiting for a
        #: swap-in.  The headline SLO metric.
        self.fault_stalls = StallTracker(config.stall_samples)
        #: Allocation stalls: simulated seconds ``ensure_room`` spent
        #: making space (victim ships included).
        self.alloc_stalls = StallTracker(config.stall_samples)
        self._below_since: Optional[float] = None
        self._busy_at_sample = 0.0
        self._sample_time: Optional[float] = None
        self._saturation = 0.0
        self._fallback: Optional[Any] = None
        #: Optional per-tenant adjustment applied to every assessed
        #: signal (``repro.fleet`` installs one so rungs escalate per
        #: tenant, not globally).  ``None`` = signals pass through.
        self.pressure_overlay: Optional[Any] = None

    # -- plumbing ----------------------------------------------------------

    @property
    def _space(self) -> Any:
        return self._manager._space

    def has_fallback(self) -> bool:
        """True when a compressed pool already exists (without creating
        one as a side effect — :meth:`fallback_store` instantiates)."""
        resilience = self._manager.resilience
        if resilience is not None:
            return resilience._fallback is not None
        return self._fallback is not None

    def fallback_store(self) -> Any:
        """The compressed pool the COMPRESS_LOCAL rung hibernates into.

        Shared with the resilience coordinator when one is attached, so
        degrade-to-local and the ladder fill (and the scrubber drains)
        one pool, not two.
        """
        resilience = self._manager.resilience
        if resilience is not None:
            return resilience.fallback_store()
        if self._fallback is None:
            from repro.baselines.compression import CompressedPoolStore

            self._fallback = CompressedPoolStore(
                self._space, pool_fraction=self.config.fallback_pool_fraction
            )
        return self._fallback

    # -- pressure ----------------------------------------------------------

    def assess(self) -> PressureSignal:
        """Take one pressure reading (no rung change; see :meth:`update`).

        Heap headroom is *effective* headroom: free bytes plus the
        footprint of clean, unpinned resident clusters — the analog of
        file-backed page cache, evictable for a metadata no-op at worst.
        A heap kept full by a swapping workload is normal; pressure is
        when the *dirty* residue leaves nothing cheap to reclaim.
        """
        manager = self._manager
        space = self._space
        heap = space.heap
        reclaimable = 0
        for cluster in space._clusters.values():
            if cluster.swappable() and not cluster.dirty and cluster.oids:
                reclaimable += sum(
                    heap.size_of(oid)
                    for oid in cluster.oids
                    if heap.holds(oid)
                )
        headroom = (
            min(1.0, (heap.capacity - heap.used + reclaimable) / heap.capacity)
            if heap.capacity > 0
            else 0.0
        )
        placement = (
            manager.resilience.placement
            if manager.resilience is not None
            else None
        )
        health = store_health_of(manager._stores, placement)
        topology = getattr(manager, "topology", None)
        if topology is not None:
            # a dark cell is store-health pressure even when the per-store
            # weights look fine (detached stores are no longer in _stores)
            health = min(health, topology.live_cell_fraction())
        now = space.clock.now()
        busy = links_busy_seconds(manager._stores)
        if self._sample_time is None:
            self._sample_time = now
            self._busy_at_sample = busy
        elif now - self._sample_time >= self.config.saturation_window_s:
            elapsed = now - self._sample_time
            self._saturation = min(
                1.0, max(0.0, (busy - self._busy_at_sample) / elapsed)
            )
            self._sample_time = now
            self._busy_at_sample = busy
        signal = classify(
            headroom, health, self._saturation, self.config.thresholds
        )
        if self.pressure_overlay is not None:
            signal = self.pressure_overlay(signal)
        return signal

    def update(self) -> DegradeRung:
        """Re-assess pressure and move the rung; returns the new rung.

        Escalation is immediate (the signal's level is the target
        rung); de-escalation steps down one rung per ``hold_s`` of
        simulated time spent below the current rung.
        """
        signal = self.assess()
        previous = self.signal
        self.signal = signal
        space = self._space
        now = space.clock.now()
        if previous is None or signal.level != previous.level:
            space.bus.emit(
                PressureChangedEvent(
                    space=space.name,
                    level=int(signal.level),
                    previous_level=int(previous.level)
                    if previous is not None
                    else int(PressureLevel.NOMINAL),
                    heap_headroom=signal.heap_headroom,
                    store_health=signal.store_health,
                    link_saturation=signal.link_saturation,
                )
            )
        target = DegradeRung(int(signal.level))
        if target > self.rung:
            self._transition(target, now, "pressure rose")
            self._below_since = None
        elif target < self.rung:
            if self._below_since is None:
                self._below_since = now
            elif now - self._below_since >= self.config.hold_s:
                self._transition(
                    DegradeRung(int(self.rung) - 1), now, "pressure subsided"
                )
                # one rung per hold period: restart the timer
                self._below_since = now
        else:
            self._below_since = None
        return self.rung

    def force_emergency(self, reason: str) -> None:
        """Jump straight to the EMERGENCY rung, whatever the signal says.

        Called by ``ensure_room`` when the victim loop failed to make
        room — the moment a real OOM killer fires.  The signal may still
        read below CRITICAL (its reclaimable estimate can name clusters
        that turned out to be unevictable with every store full); failed
        reclaim is ground truth.  De-escalation happens normally once
        the signal stays below EMERGENCY for ``hold_s``.
        """
        if self.rung < DegradeRung.EMERGENCY:
            self._transition(
                DegradeRung.EMERGENCY, self._space.clock.now(), reason
            )
            self._below_since = None

    def _transition(self, to: DegradeRung, now: float, reason: str) -> None:
        previous = self.rung
        self.rung = to
        stats = self._manager.stats
        if to > previous:
            stats.ladder_escalations += 1
        else:
            stats.ladder_deescalations += 1
        self.transitions.append((now, int(previous), int(to)))
        space = self._space
        space.bus.emit(
            DegradeRungChangedEvent(
                space=space.name,
                rung=int(to),
                previous_rung=int(previous),
                level=int(self.signal.level) if self.signal is not None else 0,
                reason=reason,
            )
        )

    # -- SLO bookkeeping ---------------------------------------------------

    def record_fault_stall(self, seconds: float, priority: int = 1) -> None:
        self.fault_stalls.record(seconds, priority)

    def record_alloc_stall(self, seconds: float) -> None:
        self.alloc_stalls.record(seconds)
