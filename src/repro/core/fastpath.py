"""Swap fast path: content-addressed payload cache + clean-cluster no-ops.

The dominant cost of a swap cycle on a constrained device is not the
object graph walk — it is serializing the cluster and pushing the bytes
over a slow link.  Most clusters, however, come back from a swap cycle
*unmodified*: the application read a few fields and moved on.  The fast
path exploits that:

* dirty tracking (:mod:`repro.runtime.barrier` + the proxy layer) tells
  the manager whether a cluster mutated since its last serialization;
* a :class:`PayloadCache` retains the canonical payload text keyed by
  content digest, so a clean cluster's bytes are available locally;
* swap-out of a clean cluster degrades to, at worst, re-shipping cached
  text (no re-encode) and, at best, a metadata-only no-op: when a
  previously-used store still holds the same digest's payload under the
  same key, a 64-byte ``contains`` probe replaces the whole upload;
* swap-in of a cluster whose payload is still cached skips the fetch
  entirely.

Invalidation is driven by :meth:`repro.core.swap_cluster.SwapCluster.
mark_dirty`: any mutation, membership change (restructure/adoption), or
decode into fresh replicas drops the clean bits, and the manager then
falls back to the full encode-and-ship path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ids import Sid


@dataclass
class FastPathConfig:
    """Tunables for the swap fast path."""

    #: Byte budget for locally retained canonical payloads.
    cache_budget_bytes: int = 8 << 20
    #: Leave payload copies on stores after swap-in so a later clean
    #: swap-out can be a metadata-only no-op against them.
    retain_remote_copies: bool = True
    #: Serve swap-in from the local payload cache when possible.
    serve_swap_in_from_cache: bool = True
    #: Codecs offered during per-store compression negotiation, best
    #: first.  Empty tuple disables compression entirely.
    compression: Tuple[str, ...] = ("zlib",)
    #: Frame size for chunked payload shipping (store_stream batches).
    frame_bytes: int = 2048
    #: Ship object-granular deltas for clusters whose staleness is fully
    #: attributed (see ``SwapCluster.delta_eligible``).  Off by default:
    #: with ``delta=False`` nothing about the existing pipeline changes.
    delta: bool = False
    #: Compaction threshold: a swap-out that would make the delta chain
    #: longer than this re-ships the full payload instead (and drops the
    #: stale chain from the stores).
    delta_max_chain: int = 8
    #: Compaction threshold: cumulative delta bytes exceeding this
    #: fraction of the base payload size also force a full rewrite.
    delta_max_ratio: float = 1.0
    #: Number of concurrent link channels for pipelined swap-out
    #: (replica fan-out + encode/transfer overlap).  0 = serial
    #: shipping exactly as before.
    pipeline_channels: int = 0
    #: Wire codec to negotiate per store: ``"binary"`` opts into the
    #: length-prefixed framing of :mod:`repro.wire.binary` (digests stay
    #: computed over canonical XML); ``None`` / ``"xml"`` keeps the
    #: canonical text protocol exactly as before.  Stores that do not
    #: advertise the codec in ``supported_codecs`` transparently keep
    #: getting XML.
    codec: Optional[str] = None


@dataclass
class PayloadCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0


class PayloadCache:
    """LRU cache of canonical payload text, keyed by content digest.

    Content addressing makes invalidation trivial: a mutated cluster
    produces a new digest, so stale entries are never *wrong*, only
    unused; the LRU bound reclaims them.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("cache budget must be positive")
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self._used = 0
        self.stats = PayloadCacheStats()

    def get(self, digest: str) -> Optional[str]:
        text = self._entries.get(digest)
        if text is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.stats.hits += 1
        return text

    def put(self, digest: str, text: str) -> None:
        nbytes = len(text.encode("utf-8"))
        if nbytes > self.budget_bytes:
            return  # larger than the whole budget: not worth caching
        existing = self._entries.pop(digest, None)
        if existing is not None:
            self._used -= len(existing.encode("utf-8"))
        self._entries[digest] = text
        self._used += nbytes
        self.stats.puts += 1
        while self._used > self.budget_bytes:
            evicted_digest, evicted_text = self._entries.popitem(last=False)
            self._used -= len(evicted_text.encode("utf-8"))
            self.stats.evictions += 1

    def invalidate(self, digest: str) -> None:
        text = self._entries.pop(digest, None)
        if text is not None:
            self._used -= len(text.encode("utf-8"))

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class DeltaChain:
    """Bookkeeping for one cluster's delta chain on its replica stores.

    ``keys[0]`` is the last full payload's key, every later entry a
    delta key; ``keys[-1]`` is the chain tip the replicas currently
    resolve.  ``delta_bytes`` accumulates shipped delta sizes against
    ``base_bytes`` for the byte-ratio compaction threshold.
    """

    keys: List[str] = field(default_factory=list)
    delta_bytes: int = 0
    base_bytes: int = 0

    @property
    def length(self) -> int:
        """Number of delta links on top of the full base payload."""
        return max(0, len(self.keys) - 1)


@dataclass
class FastPathState:
    """Per-space fast-path state owned by the SwappingManager."""

    config: FastPathConfig = field(default_factory=FastPathConfig)
    cache: PayloadCache = field(init=False)
    #: sid -> stores believed to still hold the cluster's clean payload
    #: under its clean key (pruned when probes fail or payloads change).
    retained: Dict[Sid, List[object]] = field(default_factory=dict)
    #: store device_id -> negotiated codec (cached negotiation results).
    negotiated: Dict[str, Optional[str]] = field(default_factory=dict)
    #: store device_id -> negotiated wire codec (``"binary"`` or None).
    negotiated_codec: Dict[str, Optional[str]] = field(default_factory=dict)
    #: sid -> delta chain currently standing on the replica stores.
    chains: Dict[Sid, DeltaChain] = field(default_factory=dict)
    #: Pipelined transfer scheduler (set by the manager when
    #: ``config.pipeline_channels > 0``; None = serial shipping).
    scheduler: Optional[object] = None

    def __post_init__(self) -> None:
        self.cache = PayloadCache(self.config.cache_budget_bytes)

    def negotiate_for(self, store: object) -> Optional[str]:
        """Negotiate (once per store) a payload compression codec."""
        from repro.comm.transport import negotiate_compression

        device_id = getattr(store, "device_id", None)
        if device_id is None:
            return None
        if device_id not in self.negotiated:
            theirs = getattr(store, "supported_compressions", None)
            self.negotiated[device_id] = negotiate_compression(
                self.config.compression, theirs
            )
        return self.negotiated[device_id]

    def negotiate_codec_for(self, store: object) -> Optional[str]:
        """Negotiate (once per store) the wire codec for full payloads.

        Binary requires the opt-in ``config.codec == "binary"``, a
        ``store_stream``-capable store, and a ``supported_codecs``
        advertisement that includes it; everything else keeps canonical
        XML (``None``).  Results are cached per device, and
        :meth:`demote_codec` pins a store back to XML when it rejects
        the negotiated framing at ship time.
        """
        if self.config.codec != "binary":
            return None
        device_id = getattr(store, "device_id", None)
        if device_id is None or getattr(store, "store_stream", None) is None:
            return None
        if device_id not in self.negotiated_codec:
            from repro.comm.transport import negotiate_codec

            theirs = getattr(store, "supported_codecs", None)
            negotiated = negotiate_codec(("binary",), theirs)
            self.negotiated_codec[device_id] = (
                "binary" if negotiated == "binary" else None
            )
        return self.negotiated_codec[device_id]

    def demote_codec(self, store: object) -> None:
        """Pin ``store`` to canonical XML after a codec rejection."""
        device_id = getattr(store, "device_id", None)
        if device_id is not None:
            self.negotiated_codec[device_id] = None

    def forget_cluster(self, sid: Sid) -> List[object]:
        """Drop retention bookkeeping for ``sid``; returns the old holders.

        Also forgets the cluster's delta chain: with the retained-holder
        record gone there is no store known to hold the chain tip, so a
        later swap-out must never ship a delta against the stale base —
        it falls back to the full path.
        """
        self.chains.pop(sid, None)
        return self.retained.pop(sid, [])
