"""Swap archive: retained epochs for versioning and reconciliation.

Paper, Section 3: a swap-cluster no longer needed "may be dropped from
the swapping node, or **set-aside if their content is still required for
other purposes (consistency, reconciliation, versioning, etc.)**".

The archive records every swap-out epoch (key, digest, holders) and, with
``retain=True``, instructs the manager to keep stored copies after
reload.  Retained epochs can be listed, fetched, inspected field-by-field
(without touching the live graph), diffed across epochs, and pruned.

Full state *rollback* is deliberately not offered: an old epoch's
outbound references index into a replacement array that no longer
exists, so a general rollback cannot be resolved soundly.  Inspection
decodes intra-cluster structure only and reports boundary references
symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from xml.etree import ElementTree as ET

from repro.core.replacement import SwapLocation
from repro.errors import CodecError, SwapStoreUnavailableError, TransportError, UnknownKeyError
from repro.events import SwapOutEvent
from repro.ids import Sid
from repro.wire.canonical import payload_digest
from repro.wire.wrappers import decode_value


@dataclass(frozen=True)
class ArchivedEpoch:
    sid: Sid
    epoch: int
    key: str
    digest: str
    xml_bytes: int
    device_ids: Tuple[str, ...]

    def describe(self) -> str:
        return (
            f"sc-{self.sid} epoch {self.epoch}: {self.xml_bytes} bytes on "
            f"{', '.join(self.device_ids)}"
        )


class SwapArchive:
    """Epoch history of swapped clusters, backed by the stores themselves."""

    def __init__(self, space: Any, retain: bool = True) -> None:
        self._space = space
        self._epochs: Dict[Sid, List[ArchivedEpoch]] = {}
        self._holders: Dict[str, List[Any]] = {}  # key -> stores
        if retain:
            space.manager.keep_swapped_copies = True
        space.bus.subscribe(SwapOutEvent, self._on_swap_out)

    # -- recording ---------------------------------------------------------------

    def _on_swap_out(self, event: SwapOutEvent) -> None:
        if event.space != self._space.name:
            return
        cluster = self._space._clusters.get(event.sid)
        location: Optional[SwapLocation] = (
            cluster.location if cluster is not None else None
        )
        if location is None or location.key != event.key:
            return
        holders = self._space.manager.bindings_for(event.sid)
        record = ArchivedEpoch(
            sid=event.sid,
            epoch=location.epoch,
            key=event.key,
            digest=location.digest,
            xml_bytes=location.xml_bytes,
            device_ids=tuple(holder.device_id for holder in holders),
        )
        self._epochs.setdefault(event.sid, []).append(record)
        self._holders[event.key] = list(holders)

    # -- queries ---------------------------------------------------------------------

    def epochs(self, sid: Sid) -> List[ArchivedEpoch]:
        return list(self._epochs.get(sid, []))

    def latest(self, sid: Sid) -> Optional[ArchivedEpoch]:
        records = self._epochs.get(sid)
        return records[-1] if records else None

    def fetch_xml(self, record: ArchivedEpoch) -> str:
        """The archived XML text, verified against the recorded digest."""
        failures = []
        for holder in self._holders.get(record.key, []):
            try:
                text = holder.fetch(record.key)
            except (TransportError, UnknownKeyError) as exc:
                failures.append(f"{holder.device_id}: {exc}")
                continue
            if payload_digest(text) != record.digest:
                failures.append(f"{holder.device_id}: digest mismatch")
                continue
            return text
        raise SwapStoreUnavailableError(
            f"no holder can produce {record.key}: {'; '.join(failures) or 'no holders'}"
        )

    def inspect(self, record: ArchivedEpoch) -> Dict[int, Dict[str, Any]]:
        """Field values per object oid, decoded without touching the graph.

        References are symbolic: intra-cluster references become
        ``("ref", oid)``, boundary references ``("outref", index)`` /
        ``("extref", …)``.
        """
        text = self.fetch_xml(record)
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise CodecError(f"archived XML is malformed: {exc}") from exc

        def symbolic(kind: str, ident: Any) -> Any:
            if kind == "local":
                return ("ref", ident)
            if kind == "ext":
                return ("extref", dict(ident))
            return ("outref", ident)

        snapshot: Dict[int, Dict[str, Any]] = {}
        for obj_el in root:
            oid = int(obj_el.get("oid"))
            fields: Dict[str, Any] = {}
            for field_el in obj_el:
                fields[field_el.get("name")] = decode_value(field_el[0], symbolic)
            snapshot[oid] = fields
        return snapshot

    def diff(
        self, older: ArchivedEpoch, newer: ArchivedEpoch
    ) -> Dict[int, Dict[str, Tuple[Any, Any]]]:
        """Per-object field changes between two epochs of the same cluster."""
        if older.sid != newer.sid:
            raise CodecError("diff requires two epochs of the same swap-cluster")
        before = self.inspect(older)
        after = self.inspect(newer)
        changes: Dict[int, Dict[str, Tuple[Any, Any]]] = {}
        for oid in sorted(set(before) | set(after)):
            old_fields = before.get(oid, {})
            new_fields = after.get(oid, {})
            delta = {
                name: (old_fields.get(name), new_fields.get(name))
                for name in sorted(set(old_fields) | set(new_fields))
                if old_fields.get(name) != new_fields.get(name)
            }
            if delta:
                changes[oid] = delta
        return changes

    # -- retention ----------------------------------------------------------------------

    def prune(self, sid: Sid, keep_last: int = 1) -> int:
        """Drop all but the newest ``keep_last`` epochs from the stores."""
        records = self._epochs.get(sid, [])
        if keep_last < 0:
            raise ValueError("keep_last must be non-negative")
        to_drop = records[: max(0, len(records) - keep_last)]
        for record in to_drop:
            for holder in self._holders.pop(record.key, []):
                try:
                    holder.drop(record.key)
                except (TransportError, UnknownKeyError):
                    pass
        self._epochs[sid] = records[len(to_drop):]
        return len(to_drop)

    def archived_bytes(self) -> int:
        return sum(
            record.xml_bytes * len(record.device_ids)
            for records in self._epochs.values()
            for record in records
        )
