"""Core protocols: the swap store contract and ``ISwapClusterProxy``.

The swap store protocol is deliberately minimal — the paper's receiving
devices "need only be able to store and return a textual representation of
the serialized objects" and are "instructed just to store, return, or drop
XML-data".  Anything satisfying :class:`SwapStore` can host swapped
clusters: the simulated nearby devices in :mod:`repro.devices`, a plain
dict, or a directory of files.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class SwapStore(Protocol):
    """The complete contract a swapping device must satisfy."""

    @property
    def device_id(self) -> str:
        """Stable identifier used in swap location records."""
        ...

    def store(self, key: str, xml_text: str) -> None:
        """Store ``xml_text`` under ``key``.

        Raises :class:`repro.errors.StoreFullError` when out of capacity
        and :class:`repro.errors.TransportError` when unreachable.
        """
        ...

    def fetch(self, key: str) -> str:
        """Return the text stored under ``key``.

        Raises :class:`repro.errors.UnknownKeyError` /
        :class:`repro.errors.TransportError`.
        """
        ...

    def drop(self, key: str) -> None:
        """Discard the text stored under ``key`` (idempotent)."""
        ...

    def has_room(self, nbytes: int) -> bool:
        """Best-effort admission check used by device selection."""
        ...


@runtime_checkable
class ISwapClusterProxy(Protocol):
    """The interface every generated swap-cluster-proxy class implements.

    Mirrors the paper's ``ISwapClusterProxy`` (``patch``, ``detach``)
    plus the identity helper.  Concrete behaviour lives in
    :class:`repro.core.swap_proxy.SwapClusterProxyBase`; generated
    subclasses add the application class's public methods.
    """

    def _obi_patch(self, new_target: Any) -> None:
        """Point this proxy at ``new_target`` (replica or replacement)."""
        ...

    def _obi_detach(self, replacement: Any) -> None:
        """Detach from the live object, pointing at its replacement."""
        ...

    def _obi_same_object(self, other: Any) -> bool:
        """True when ``other`` denotes the same logical object."""
        ...
