"""Runtime swap-cluster restructuring: merge and split.

The paper makes both granularities *adaptable* — clusters have adaptable
size and "a number (also adaptable) of chained object clusters" forms a
swap-cluster — but its prototype fixes the grouping at replication time.
This module adds the runtime half of that adaptability:

* :func:`merge_swap_clusters` — fold one resident swap-cluster into
  another.  Proxies that mediated references *between* the two are
  dismantled (the references become raw: the application regains full
  speed across the former boundary, exactly like proxy replacement at
  replication time);
* :func:`split_swap_cluster` — move a subset of members into a fresh
  swap-cluster, inserting swap-cluster-proxies on every edge crossing
  the new boundary.

Both preserve the mediation invariant (``verify_integrity`` clean) and
all existing application handles: live proxies are retagged/dismantled
in place through the same patch tables swapping uses.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Iterable, List, Set

from repro.errors import ClusterNotResidentError, ClusterPinnedError, NotManagedError
from repro.events import SwapClusterMergedEvent, SwapClusterSplitEvent
from repro.ids import Oid, ROOT_SID, Sid

_object_setattr = object.__setattr__


def _require_restructurable(space: Any, sid: Sid) -> Any:
    cluster = space._cluster(sid)
    if sid == ROOT_SID:
        raise ClusterNotResidentError("swap-cluster-0 cannot be restructured")
    if not cluster.is_resident:
        raise ClusterNotResidentError(
            f"swap-cluster {sid} is swapped out; reload before restructuring"
        )
    if cluster.pins > 0:
        raise ClusterPinnedError(f"swap-cluster {sid} is pinned")
    return cluster


def _move_bucket_entries(
    space: Any, from_sid: Sid, to_sid: Sid, moved_oids: Set[Oid] | None = None
) -> int:
    """Move live proxies targeting ``from_sid`` (optionally only those
    targeting ``moved_oids``) into ``to_sid``'s patch bucket, retagging
    them."""
    source_bucket = space._proxies_by_target_sid.get(from_sid)
    if source_bucket is None:
        return 0
    target_bucket = space._proxies_by_target_sid.get(to_sid)
    if target_bucket is None:
        target_bucket = weakref.WeakValueDictionary()
        space._proxies_by_target_sid[to_sid] = target_bucket
    target_cluster = space._clusters[to_sid]
    moved = 0
    for proxy in list(source_bucket.values()):
        if moved_oids is not None and proxy._obi_target_oid not in moved_oids:
            continue
        source_bucket.pop(id(proxy), None)
        _object_setattr(proxy, "_obi_target_sid", to_sid)
        _object_setattr(proxy, "_obi_cluster", target_cluster)
        target_bucket[id(proxy)] = proxy
        moved += 1
    return moved


def merge_swap_clusters(space: Any, absorber_sid: Sid, absorbed_sid: Sid) -> Sid:
    """Fold swap-cluster ``absorbed_sid`` into ``absorber_sid``.

    Returns the surviving sid.  Both clusters must be resident and
    unpinned.  References between the two become raw; references from
    elsewhere are retargeted transparently.
    """
    if absorber_sid == absorbed_sid:
        raise NotManagedError("cannot merge a swap-cluster with itself")
    absorber = _require_restructurable(space, absorber_sid)
    absorbed = _require_restructurable(space, absorbed_sid)

    # 1. membership: retag every absorbed member
    for oid in list(absorbed.oids):
        class_name = absorbed.class_name_by_oid[oid]
        absorber.add_member(oid, class_name)
        space._sid_by_oid[oid] = absorber_sid
        member = space._objects[oid]
        _object_setattr(member, "_obi_sid", absorber_sid)
    moved_oids = set(absorbed.oids)
    absorbed.oids.clear()
    absorbed.class_name_by_oid.clear()

    # 2. live proxies targeting the absorbed cluster now target the absorber
    _move_bucket_entries(space, absorbed_sid, absorber_sid)

    # 3. re-mediate fields: former cross-boundary proxies between the two
    #    clusters dismantle to raw references; foreign-source proxies that
    #    ended up in absorber-owned fields are re-wrapped
    for oid in list(absorber.oids):
        space._rewrite_boundaries(space._objects[oid])

    # 4. record keeping
    absorber.cids.extend(absorbed.cids)
    absorber.crossings += absorbed.crossings
    absorber.last_crossing_tick = max(
        absorber.last_crossing_tick, absorbed.last_crossing_tick
    )
    space._clusters.pop(absorbed_sid, None)
    space._proxies_by_target_sid.pop(absorbed_sid, None)

    space.bus.emit(
        SwapClusterMergedEvent(
            space=space.name,
            absorber_sid=absorber_sid,
            absorbed_sid=absorbed_sid,
            object_count=len(moved_oids),
        )
    )
    return absorber_sid


def split_swap_cluster(
    space: Any,
    sid: Sid,
    members: Iterable[Any] | Callable[[Any], bool] | int,
) -> Sid:
    """Move some members of swap-cluster ``sid`` into a new swap-cluster.

    ``members`` selects what moves: an iterable of oids/objects/proxies,
    a predicate over raw member objects, or an integer (the *last* n
    members in oid order — the tail of a chained cluster).  Returns the
    new swap-cluster's sid.  Every reference crossing the new boundary
    gets a swap-cluster-proxy.
    """
    cluster = _require_restructurable(space, sid)
    moved_oids = _resolve_member_selection(space, cluster, members)
    if not moved_oids:
        raise NotManagedError("split selection is empty")
    if moved_oids == set(cluster.oids):
        raise NotManagedError("split selection would empty the source cluster")

    new_cluster = space.new_swap_cluster()
    new_cluster.last_crossing_tick = cluster.last_crossing_tick

    # 1. membership
    for oid in sorted(moved_oids):
        class_name = cluster.class_name_by_oid[oid]
        new_cluster.add_member(oid, class_name)
        cluster.remove_member(oid)
        space._sid_by_oid[oid] = new_cluster.sid
        member = space._objects[oid]
        _object_setattr(member, "_obi_sid", new_cluster.sid)

    # 2. live proxies targeting moved members follow them
    _move_bucket_entries(space, sid, new_cluster.sid, moved_oids)

    # 3. re-mediate both sides: raw edges crossing the new boundary gain
    #    proxies; proxies that now point within one side dismantle
    for member_sid in (sid, new_cluster.sid):
        for oid in list(space._clusters[member_sid].oids):
            space._rewrite_boundaries(space._objects[oid])

    space.bus.emit(
        SwapClusterSplitEvent(
            space=space.name,
            source_sid=sid,
            new_sid=new_cluster.sid,
            object_count=len(moved_oids),
        )
    )
    return new_cluster.sid


def _resolve_member_selection(
    space: Any, cluster: Any, members: Iterable[Any] | Callable[[Any], bool] | int
) -> Set[Oid]:
    from repro.core.utils import SwapClusterUtils

    if isinstance(members, int):
        ordered = sorted(cluster.oids)
        if members <= 0:
            return set()
        return set(ordered[-members:])
    if callable(members):
        return {
            oid
            for oid in cluster.oids
            if members(space._objects[oid])
        }
    selected: Set[Oid] = set()
    for item in members:
        oid = item if isinstance(item, int) else SwapClusterUtils.oid_of(item)
        if oid not in cluster.oids:
            raise NotManagedError(
                f"oid {oid} is not a member of swap-cluster {cluster.sid}"
            )
        selected.add(oid)
    return selected
