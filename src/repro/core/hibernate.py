"""Persistence: hibernate a whole space to XML and restore it.

OBIWAN's component diagram (paper, Figure 1) includes a *Persistence*
module alongside replication and memory management.  This is it, built
on the same wire format as swapping: every swap-cluster (including
swap-cluster-0) becomes one XML document, plus a manifest recording the
roots and cluster layout — a directory a process can be resurrected
from, on this device or another.

Cross-cluster references hibernate as ``<extref toid=…/>`` (the target's
oid): restore rebuilds them as fresh swap-cluster-proxies, so the
restored space satisfies the mediation invariant by construction.
Clusters that are swapped out at hibernate time are captured from their
stores and rewritten (their outbound replacement-array indexes become
oids) — the restored space starts fully resident, with every cluster's
swap epoch preserved.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional
from xml.etree import ElementTree as ET

from repro.core.space import Space
from repro.core.swap_cluster import SwapCluster
from repro.errors import CodecError, SwapStoreUnavailableError
from repro.ids import ROOT_SID, Sid
from repro.runtime.classext import instance_fields
from repro.runtime.registry import TypeRegistry, global_registry
from repro.wire.wrappers import decode_value, encode_value

_object_setattr = object.__setattr__

MANIFEST_NAME = "manifest.xml"


def hibernate(space: Space, directory: str | Path) -> Path:
    """Write the whole space to ``directory``; returns the manifest path.

    The space itself is untouched (hibernation is a snapshot, not a
    shutdown).  Swapped clusters are read back from their stores without
    reloading them into the heap.
    """
    destination = Path(directory)
    destination.mkdir(parents=True, exist_ok=True)

    manifest = ET.Element("hibernated-space", {"name": space.name})
    clusters_el = ET.SubElement(manifest, "clusters")
    for sid in sorted(space._clusters):
        cluster = space._clusters[sid]
        document = _cluster_document(space, cluster)
        filename = f"cluster-{sid}.xml"
        (destination / filename).write_text(document, encoding="utf-8")
        ET.SubElement(
            clusters_el,
            "cluster",
            {
                "sid": str(sid),
                "file": filename,
                "epoch": str(cluster.epoch),
                "cids": ",".join(str(cid) for cid in cluster.cids),
            },
        )

    roots_el = ET.SubElement(manifest, "roots")
    for name, value in space._roots.items():
        root_el = ET.SubElement(roots_el, "root", {"name": name})
        root_el.append(encode_value(value, _hibernate_classifier(space)))

    manifest_path = destination / MANIFEST_NAME
    manifest_path.write_text(
        ET.tostring(manifest, encoding="unicode"), encoding="utf-8"
    )
    return manifest_path


def restore(
    directory: str | Path,
    *,
    heap_capacity: Optional[int] = None,
    registry: Optional[TypeRegistry] = None,
    name: Optional[str] = None,
) -> Space:
    """Rebuild a hibernated space from ``directory``.

    The restored space is fully resident; attach stores and policies
    afterwards as for a fresh space.  ``heap_capacity`` defaults to a
    size model-accounted fit with 4x headroom.
    """
    source = Path(directory)
    try:
        manifest = ET.fromstring(
            (source / MANIFEST_NAME).read_text(encoding="utf-8")
        )
    except FileNotFoundError:
        raise CodecError(f"no {MANIFEST_NAME} under {source}") from None
    except ET.ParseError as exc:
        raise CodecError(f"malformed manifest: {exc}") from exc
    if manifest.tag != "hibernated-space":
        raise CodecError(f"expected <hibernated-space>, got <{manifest.tag}>")

    resolved_registry = registry if registry is not None else global_registry()

    # -- pass 1: parse every cluster document, allocate bare instances ------
    clusters_el = manifest.find("clusters")
    if clusters_el is None:
        raise CodecError("manifest has no <clusters>")
    cluster_records: List[Dict[str, Any]] = []
    instances: Dict[int, Any] = {}
    sid_of: Dict[int, Sid] = {}
    for cluster_el in clusters_el:
        sid = int(cluster_el.get("sid"))
        document = ET.fromstring(
            (source / cluster_el.get("file")).read_text(encoding="utf-8")
        )
        if document.tag != "hibernated-cluster":
            raise CodecError(
                f"cluster file for sid={sid}: unexpected <{document.tag}>"
            )
        members: List[tuple] = []
        for obj_el in document:
            oid = int(obj_el.get("oid"))
            cls = resolved_registry.resolve(obj_el.get("class", ""))
            instance = object.__new__(cls)
            instances[oid] = instance
            sid_of[oid] = sid
            members.append((oid, obj_el))
        cluster_records.append(
            {
                "sid": sid,
                "epoch": int(cluster_el.get("epoch", "0")),
                "cids": [
                    int(part)
                    for part in cluster_el.get("cids", "").split(",")
                    if part
                ],
                "members": members,
            }
        )

    # -- build the space shell with the original sids ---------------------------
    total_guess = 64 * max(1, len(instances))
    space = Space(
        name if name is not None else manifest.get("name", "restored"),
        heap_capacity=heap_capacity
        if heap_capacity is not None
        else max(1 << 16, 8 * total_guess),
        registry=resolved_registry,
    )
    for record in cluster_records:
        sid = record["sid"]
        if sid == ROOT_SID:
            cluster = space._clusters[ROOT_SID]
        else:
            cluster = SwapCluster(sid)
            space._clusters[sid] = cluster
        cluster.epoch = record["epoch"]
        cluster.cids = list(record["cids"])
        record["cluster"] = cluster
    max_sid = max((record["sid"] for record in cluster_records), default=0)
    space._ids.sids.reserve_above(max_sid)

    def resolve(holder_sid: Sid):
        def _resolve(kind: str, ident: Any) -> Any:
            if kind == "local":
                return instances[int(ident)]
            if kind == "ext":
                target_oid = int(ident["toid"])
                if sid_of.get(target_oid) == holder_sid:
                    return instances[target_oid]
                return space._proxy_for(holder_sid, target_oid)
            raise CodecError("hibernated documents cannot hold <outref>")

        return _resolve

    # -- pass 2: register membership (oids, classes) ----------------------------
    for record in cluster_records:
        cluster = record["cluster"]
        for oid, _ in record["members"]:
            instance = instances[oid]
            cluster.add_member(oid, type(instance)._obi_schema.name)
            space._sid_by_oid[oid] = record["sid"]
            space._objects[oid] = instance
            _object_setattr(instance, "_obi_oid", oid)
            _object_setattr(instance, "_obi_sid", record["sid"])
            _object_setattr(instance, "_obi_space", space)
    if instances:
        space._ids.oids.reserve_above(max(instances))

    # -- pass 3: fill fields (proxies may now be built), account heap -------------
    for record in cluster_records:
        resolver = resolve(record["sid"])
        for oid, obj_el in record["members"]:
            instance = instances[oid]
            for field_el in obj_el:
                if field_el.tag != "field" or len(field_el) != 1:
                    raise CodecError(f"oid={oid}: malformed <field>")
                _object_setattr(
                    instance,
                    field_el.get("name"),
                    decode_value(field_el[0], resolver),
                )
            space.heap.allocate(oid, space.size_model.size_of(instance))

    # -- roots ----------------------------------------------------------------------
    roots_el = manifest.find("roots")
    if roots_el is not None:
        for root_el in roots_el:
            root_name = root_el.get("name")
            if len(root_el) != 1:
                raise CodecError(f"root {root_name!r}: malformed value")
            value = decode_value(root_el[0], resolve(ROOT_SID))
            space._roots[root_name] = value

    space.verify_integrity()
    return space


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _hibernate_classifier(space: Space):
    def classify(value: Any) -> Any:
        cls = type(value)
        if getattr(cls, "_obi_is_repl_proxy", False):
            raise CodecError(
                "hibernate found an unresolved replication proxy; "
                "materialize the pending frontier (Replicator.prefetch) "
                "before hibernating"
            )
        if getattr(cls, "_obi_is_proxy", False):
            return ("ext", {"toid": value._obi_target_oid})
        if getattr(cls, "_obi_managed", False):
            oid = getattr(value, "_obi_oid", None)
            if oid is None or getattr(value, "_obi_space", None) is not space:
                raise CodecError(
                    "hibernate found an unadopted managed object; "
                    "ingest it (or set it as a root) first"
                )
            return ("ext", {"toid": oid})
        return None

    return classify


def _cluster_document(space: Space, cluster: SwapCluster) -> str:
    root = ET.Element(
        "hibernated-cluster",
        {"sid": str(cluster.sid), "count": str(len(cluster.oids))},
    )
    if cluster.is_resident:
        classify = _resident_classifier(space, cluster)
        for oid in sorted(cluster.oids):
            member = space._objects[oid]
            obj_el = ET.SubElement(
                root,
                "object",
                {"oid": str(oid), "class": type(member)._obi_schema.name},
            )
            for field_name, value in instance_fields(member).items():
                field_el = ET.SubElement(obj_el, "field", {"name": field_name})
                field_el.append(encode_value(value, classify))
        return ET.tostring(root, encoding="unicode")
    return _swapped_cluster_document(space, cluster, root)


def _resident_classifier(space: Space, cluster: SwapCluster):
    member_oids = cluster.oids

    def classify(value: Any) -> Any:
        cls = type(value)
        if getattr(cls, "_obi_is_repl_proxy", False):
            raise CodecError(
                "hibernate found an unresolved replication proxy; "
                "materialize the pending frontier (Replicator.prefetch) "
                "before hibernating"
            )
        if getattr(cls, "_obi_is_proxy", False):
            return ("ext", {"toid": value._obi_target_oid})
        if getattr(cls, "_obi_managed", False):
            oid = value._obi_oid
            if oid in member_oids:
                return ("local", oid)
            return ("ext", {"toid": oid})
        return None

    return classify


def _swapped_cluster_document(
    space: Space, cluster: SwapCluster, root: ET.Element
) -> str:
    """Rewrite a swapped cluster's stored XML into hibernation form.

    The stored document's ``<outref index>`` entries index the
    replacement-object's array; each slot is a live proxy whose target
    oid we know — rewrite them as ``<extref toid>``.
    """
    location = cluster.location
    replacement = cluster.replacement
    if location is None or replacement is None:
        raise SwapStoreUnavailableError(
            f"swap-cluster {cluster.sid} has no reachable swapped state"
        )
    holders = space.manager.bindings_for(cluster.sid)
    text = None
    for holder in holders:
        try:
            text = holder.fetch(location.key)
            break
        except Exception:  # noqa: BLE001 - try the next mirror
            continue
    if text is None:
        raise SwapStoreUnavailableError(
            f"cannot fetch swap-cluster {cluster.sid} for hibernation"
        )
    stored = ET.fromstring(text)
    for obj_el in stored:
        new_obj = ET.SubElement(root, "object", dict(obj_el.attrib))
        for field_el in obj_el:
            new_field = ET.SubElement(new_obj, "field", dict(field_el.attrib))
            new_field.append(_rewrite_outrefs(field_el[0], replacement))
    return ET.tostring(root, encoding="unicode")


def _rewrite_outrefs(element: ET.Element, replacement: Any) -> ET.Element:
    if element.tag == "outref":
        proxy = replacement.outbound_at(int(element.get("index")))
        return ET.Element("extref", {"toid": str(proxy._obi_target_oid)})
    rebuilt = ET.Element(element.tag, dict(element.attrib))
    rebuilt.text = element.text
    for child in element:
        rebuilt.append(_rewrite_outrefs(child, replacement))
    return rebuilt
