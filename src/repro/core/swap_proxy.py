"""Swap-cluster-proxy behaviour (the paper's generated proxy classes).

A swap-cluster-proxy mediates **every** reference between objects in
different swap-clusters.  Unlike replication proxies (discarded once the
target is replicated), "a special proxy always remains in the way"
(Section 1).  Generated subclasses (see
:func:`repro.runtime.obicomp.compile_proxy_class`) add one forwarding
method per public method of the application class; this base class
implements the shared machinery the paper puts in ``SwapClusterUtils``
and the generated "code excerpt that verifies references being passed as
parameters and return values" (Section 4):

* resolve the target, transparently swapping the cluster back in when the
  proxy finds a replacement-object in the way;
* translate arguments *into* the target cluster and results *out* to the
  source cluster, applying the paper's three rules — (i) wrap raw
  cross-cluster references in new proxies, (ii) hand off/reuse existing
  proxies, (iii) dismantle proxies that point back into the receiving
  cluster;
* record boundary-crossing statistics (recency/frequency) on the target
  swap-cluster;
* enforce object identity by overloading equality (the C# ``operator==``
  overload of Section 4 maps onto ``__eq__``/``__hash__``);
* support the iteration optimisation (*assign mode*): a marked proxy
  patches itself to the next returned reference instead of minting a new
  proxy per step.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.replacement import ReplacementObject
from repro.runtime.barrier import MUTABLE_CONTAINERS

_object_setattr = object.__setattr__

#: Result types that never need translation (fast path for quasi-empty
#: methods returning counters, flags or text).
_ATOMIC_RESULTS = frozenset(
    {int, float, str, bool, bytes, type(None)}
)


class SwapClusterProxyBase:
    """Shared behaviour of every generated swap-cluster-proxy class."""

    __slots__ = (
        "_obi_space",
        "_obi_source_sid",
        "_obi_target_sid",
        "_obi_target_oid",
        "_obi_target",
        "_obi_cluster",
        "_obi_assign_mode",
        "__weakref__",
    )

    #: Structural marker checked throughout the library.
    _obi_is_proxy = True
    #: Overridden by generated subclasses with the application class.
    _obi_target_class: type | None = None

    def __init__(self) -> None:
        raise TypeError(
            "swap-cluster-proxies are created by the middleware "
            "(Space._proxy_for), never directly"
        )

    # -- middleware construction (bypasses __init__) -------------------------

    def _obi_init(
        self,
        space: Any,
        source_sid: int,
        target_sid: int,
        target_oid: int,
        target: Any,
        cluster: Any = None,
    ) -> None:
        _object_setattr(self, "_obi_space", space)
        _object_setattr(self, "_obi_source_sid", source_sid)
        _object_setattr(self, "_obi_target_sid", target_sid)
        _object_setattr(self, "_obi_target_oid", target_oid)
        _object_setattr(self, "_obi_target", target)
        if cluster is None:
            cluster = space._clusters[target_sid]
        _object_setattr(self, "_obi_cluster", cluster)
        _object_setattr(self, "_obi_assign_mode", False)

    # -- ISwapClusterProxy ----------------------------------------------------

    def _obi_patch(self, new_target: Any) -> None:
        """Point at a new target instance (same oid: swap-in repatching)."""
        _object_setattr(self, "_obi_target", new_target)

    def _obi_detach(self, replacement: Any) -> None:
        """Detach from the live object; the replacement stands in."""
        _object_setattr(self, "_obi_target", replacement)

    def _obi_same_object(self, other: Any) -> bool:
        result = self.__eq__(other)
        return result is True

    # -- invocation (the generated methods funnel here) -----------------------

    def _obi_invoke(self, name: str, args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Any:
        space = self._obi_space
        target = self._obi_target
        if target.__class__ is ReplacementObject:
            space._manager.swap_in(self._obi_target_sid)
            target = self._obi_target
        target_sid = self._obi_target_sid
        # inlined boundary-crossing bookkeeping (recency/frequency stats)
        tick = space._tick + 1
        space._tick = tick
        cluster = self._obi_cluster
        cluster.crossings += 1
        cluster.last_crossing_tick = tick
        if not cluster.dirty_all and not getattr(
            getattr(target.__class__, name, None), "_obi_readonly", False
        ):
            # conservative dirty-tracking: a non-@readonly method may
            # mutate the target cluster without any field write
            cluster.mark_dirty()
        if args or kwargs:
            # a mutable container handed across the boundary may later be
            # mutated by the callee: invalidate the *source* cluster too
            for value in args if not kwargs else (*args, *kwargs.values()):
                if value.__class__ in MUTABLE_CONTAINERS:
                    source = space._clusters.get(self._obi_source_sid)
                    if source is not None and not source.dirty_all:
                        source.mark_dirty()
                    break
        if args:
            args = tuple(space._translate(value, target_sid) for value in args)
        if kwargs:
            result = getattr(target, name)(
                *args,
                **{
                    key: space._translate(value, target_sid)
                    for key, value in kwargs.items()
                },
            )
        else:
            # exact-arity generated wrappers pass kwargs=None
            result = getattr(target, name)(*args)
        result_class = result.__class__
        if result_class in _ATOMIC_RESULTS:
            return result
        if self._obi_assign_mode and getattr(result_class, "_obi_managed", False):
            # inlined assign-mode fast path (paper §4, "Optimizing Code
            # for Iterations"): patch this proxy to the returned
            # reference and hand back a reference to ourselves
            value_sid = getattr(result, "_obi_sid", None)
            if value_sid is not None and result._obi_space is space:
                if value_sid == self._obi_source_sid:
                    return result
                _object_setattr(self, "_obi_target_oid", result._obi_oid)
                _object_setattr(self, "_obi_target", result)
                if value_sid != target_sid:
                    space._move_patch_bucket(self, target_sid, value_sid)
                return self
        return space._translate_return(result, self)

    # -- transparent field access ----------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Only reached when normal lookup fails: application fields and
        # non-generated (underscore) methods.  Special/dunder probes from
        # the runtime (pickle, copy, ...) must fail fast.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        if name.startswith("_obi_"):
            raise AttributeError(name)
        space = self._obi_space
        target = self._obi_target
        if getattr(target.__class__, "_obi_is_replacement", False):
            space._manager.swap_in(self._obi_target_sid)
            target = self._obi_target
        space._record_crossing(self._obi_target_sid, self._obi_source_sid)
        value = getattr(target, name)
        if callable(value) and getattr(value, "__self__", None) is target:
            # a non-public bound method: forward through the interception
            # machinery so its arguments/results are still translated
            def forwarder(*args: Any, **kwargs: Any) -> Any:
                return self._obi_invoke(name, args, kwargs)

            forwarder.__name__ = name
            return forwarder
        return space._translate_return(value, self)

    def __setattr__(self, name: str, value: Any) -> None:
        if name.startswith("_obi_"):
            _object_setattr(self, name, value)
            return
        space = self._obi_space
        target = self._obi_target
        if getattr(target.__class__, "_obi_is_replacement", False):
            space._manager.swap_in(self._obi_target_sid)
            target = self._obi_target
        space._record_crossing(self._obi_target_sid, self._obi_source_sid)
        setattr(target, name, space._translate(value, self._obi_target_sid))

    # -- identity (paper §4, "Enforcing Object Identity") ------------------------

    def __eq__(self, other: Any) -> Any:
        if other is self:
            return True
        other_cls = type(other)
        if getattr(other_cls, "_obi_is_proxy", False):
            return self._obi_target_oid == other._obi_target_oid
        if getattr(other_cls, "_obi_managed", False):
            other_oid = getattr(other, "_obi_oid", None)
            return other_oid is not None and other_oid == self._obi_target_oid
        return NotImplemented

    def __ne__(self, other: Any) -> Any:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self._obi_target_oid)

    def __repr__(self) -> str:
        target_class = self._obi_target_class
        class_name = target_class.__name__ if target_class else "?"
        state = (
            "swapped"
            if getattr(self._obi_target.__class__, "_obi_is_replacement", False)
            else "resident"
        )
        return (
            f"<swap-proxy {class_name} oid={self._obi_target_oid} "
            f"{self._obi_source_sid}->{self._obi_target_sid} {state}>"
        )
