"""Remote swap stores over the web-service bridge.

The paper's prototype moves swapped objects with web services ("Transfer
of swapped-out objects is achieved resorting to the Communication
Services module which leverages the ability of .NET CF to invoke
web-services", Section 4).  :class:`RemoteStoreClient` is the client
half: it satisfies the :class:`~repro.core.interfaces.SwapStore`
protocol by invoking a store's endpoint operations through
:class:`~repro.comm.webservice.WebServiceClient`, so the SwappingManager
can use a fully remote store exactly like a local one — envelope
round-trips charge the link's cost model.
"""

from __future__ import annotations

from typing import Any, List

from repro.comm.transport import Link
from repro.comm.webservice import WebServiceClient, WebServiceEndpoint


class RemoteStoreClient:
    """SwapStore adapter over one web-service endpoint."""

    def __init__(
        self,
        endpoint: WebServiceEndpoint,
        link: Link,
        device_id: str | None = None,
    ) -> None:
        self._client = WebServiceClient(endpoint, link)
        self._device_id = device_id if device_id is not None else endpoint.name

    @property
    def device_id(self) -> str:
        return self._device_id

    def store(self, key: str, xml_text: str) -> None:
        self._client.call("store", key=key, text=xml_text)

    def fetch(self, key: str) -> str:
        return self._client.call("fetch", key=key)

    def drop(self, key: str) -> None:
        self._client.call("drop", key=key)

    def has_room(self, nbytes: int) -> bool:
        return bool(self._client.call("has_room", nbytes=nbytes))

    def contains(self, key: str) -> bool:
        return bool(self._client.call("contains", key=key))

    def digest(self, key: str) -> str:
        """Digest probe round trip (see PROTOCOL §1c): the endpoint
        hashes the payload it actually holds, so the client verifies
        at-rest integrity without pulling the payload over the link."""
        return self._client.call("digest", key=key)

    def keys(self) -> List[str]:
        return self._client.call("keys")
