"""XML store devices — the dumb receivers of swapped clusters.

Receiving devices "need not have neither OBIWAN nor even a virtual
machine installed.  They need only be able to store and return a textual
representation of the serialized objects being swapped-out" (Section 3).
All variants implement the :class:`repro.core.interfaces.SwapStore`
protocol: ``store`` / ``fetch`` / ``drop`` / ``has_room``.

* :class:`XmlStoreDevice` — a capacity-limited nearby device, optionally
  behind a simulated wireless link (payloads charge transfer time) and
  exposable as a web-service endpoint;
* :class:`InMemoryStore` — the simplest possible conforming store;
* :class:`FileStore` — text files in a directory (the flash-card
  analogue of the .NET Micro discussion in the related work).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple
from xml.etree import ElementTree as ET

from repro.comm.transport import (
    Link,
    SUPPORTED_CODECS,
    SUPPORTED_COMPRESSIONS,
    compress_payload,
    decode_body,
    decompress_payload,
)
from repro.comm.webservice import WebServiceEndpoint
from repro.errors import (
    CodecError,
    CodecNegotiationError,
    StoreFullError,
    TransportError,
    UnknownKeyError,
)
from repro.wire.binary import binary_to_canonical, decode_delta_binary
from repro.wire.canonical import digest_of_canonical
from repro.wire.delta import apply_cluster_delta

#: Cost of a key-probe / drop round trip: a control message, not a payload.
CONTROL_MESSAGE_BYTES = 64

#: Hard cap on delta-chain depth a store will resolve; the manager's
#: compaction thresholds keep real chains far shorter.
MAX_DELTA_CHAIN = 64


def _payload_epoch(xml_text: str) -> int:
    """Epoch attribute of a stored ``<swap-cluster>`` document."""
    try:
        return int(ET.fromstring(xml_text).get("epoch", "0"))
    except (ET.ParseError, ValueError) as exc:
        raise CodecError(f"unreadable payload epoch: {exc}") from exc

#: Digest returned by a digest probe when the stored payload cannot even
#: be decoded (at-rest corruption of the compressed frames).  Never a
#: valid hex digest, so it can only ever mismatch.
UNREADABLE_DIGEST = "unreadable"

#: What ``fetch`` returns when a binary-at-rest payload no longer
#: transcodes (rotted frames).  Deliberately a well-formed document that
#: can never match any recorded digest, so the swap-in verify path
#: handles it exactly like rotted XML text.
CORRUPT_BINARY_TEXT = '<swap-cluster corrupt="binary-frames"/>'


def _validate_codec(
    device_id: str, codec: Optional[str], advertised: Tuple[str, ...]
) -> Optional[str]:
    """Reject a wire codec this store did not advertise.

    ``None`` and ``"xml"`` always pass — canonical XML is the protocol
    every store speaks.  Anything else must appear in the store's
    ``supported_codecs`` advertisement or the sender gets a
    :class:`~repro.errors.CodecNegotiationError` naming the store and
    the advertised set (so chaos-run negotiation failures are
    debuggable), and falls back to canonical XML.
    """
    if codec is None or codec == "xml":
        return codec
    if codec not in advertised:
        raise CodecNegotiationError(
            f"{device_id}: unsupported wire codec {codec!r} "
            f"(advertises {sorted(advertised)})"
        )
    return codec


class InMemoryStore:
    """Minimal conforming store: a dict of key -> XML text."""

    #: Wire codecs this store can hold at rest, best first.
    supported_codecs: Tuple[str, ...] = SUPPORTED_CODECS

    def __init__(self, device_id: str = "memory-store") -> None:
        self._device_id = device_id
        self._data: Dict[str, str] = {}
        #: key -> (delta text, base key); a key lives in exactly one of
        #: ``_data`` / ``_deltas`` / ``_wire``
        self._deltas: Dict[str, Tuple[str, str]] = {}
        #: key -> binary wire payload held as frames (negotiated codec)
        self._wire: Dict[str, bytes] = {}

    @property
    def device_id(self) -> str:
        return self._device_id

    def store(self, key: str, xml_text: str) -> None:
        self._deltas.pop(key, None)
        self._wire.pop(key, None)
        self._data[key] = xml_text

    def store_stream(
        self,
        key: str,
        frames: Iterable[bytes],
        compression: Optional[str] = None,
        codec: Optional[str] = None,
    ) -> None:
        """Receive a payload as a batch of frames (loopback, no link).

        Under the negotiated ``"binary"`` codec the payload is kept as
        frames; ``fetch`` / ``digest`` transcode back to canonical XML
        on demand, so integrity probes are unchanged.
        """
        codec = _validate_codec(self._device_id, codec, self.supported_codecs)
        data = b"".join(bytes(frame) for frame in frames)
        if codec == "binary":
            self._data.pop(key, None)
            self._deltas.pop(key, None)
            self._wire[key] = decode_body(data, compression)
        else:
            self.store(key, decompress_payload(data, compression))

    def store_delta(
        self,
        key: str,
        base_epoch: int,
        frames: Iterable[bytes],
        *,
        base_key: str,
        compression: Optional[str] = None,
        codec: Optional[str] = None,
    ) -> None:
        """Accept a delta document applying to the payload at ``base_key``.

        Raises :class:`~repro.errors.UnknownKeyError` when the base is
        not held, and :class:`~repro.errors.CodecError` when the held
        base sits at a different epoch than ``base_epoch`` (diverged
        replica — the sender must fall back to a full payload).
        """
        if key == base_key:
            raise TransportError(
                f"{self._device_id}: delta key {key!r} cannot be its own base"
            )
        codec = _validate_codec(self._device_id, codec, self.supported_codecs)
        data = b"".join(bytes(frame) for frame in frames)
        if codec == "binary":
            text = decode_delta_binary(decode_body(data, compression))
        else:
            text = decompress_payload(data, compression)
        base_text = self._resolve_text(base_key)
        held_epoch = _payload_epoch(base_text)
        if held_epoch != base_epoch:
            raise CodecError(
                f"{self._device_id}: base {base_key!r} is at epoch "
                f"{held_epoch}, delta expects {base_epoch}"
            )
        self._data.pop(key, None)
        self._wire.pop(key, None)
        self._deltas[key] = (text, base_key)

    def _resolve_text(self, key: str, depth: int = 0) -> str:
        if key in self._data:
            return self._data[key]
        if key in self._wire:
            return binary_to_canonical(self._wire[key])[0]
        entry = self._deltas.get(key)
        if entry is None:
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}") from None
        if depth >= MAX_DELTA_CHAIN:
            raise CodecError(f"{self._device_id}: delta chain too deep at {key!r}")
        delta_text, base_key = entry
        return apply_cluster_delta(
            self._resolve_text(base_key, depth + 1), delta_text
        )

    def fetch(self, key: str) -> str:
        try:
            return self._resolve_text(key)
        except CodecError:
            if key in self._wire:
                # rotted binary frames: surface as a visibly-broken
                # document so digest verification catches it like any
                # other at-rest corruption
                return CORRUPT_BINARY_TEXT
            raise

    def fetch_wire(self, key: str) -> Tuple[bytes, Optional[str]]:
        """Payload as it is held: ``(raw bytes, wire codec or None)``.

        ``None`` means the bytes are canonical XML utf-8 — the caller
        can always fall back to the text path.
        """
        if key in self._wire:
            return self._wire[key], "binary"
        return self._resolve_text(key).encode("utf-8"), None

    def drop(self, key: str) -> None:
        # a delta depending on the dropped key must survive it: collapse
        # direct dependents to full payloads first
        for child, (_text, base_key) in list(self._deltas.items()):
            if base_key == key and child != key:
                self._data[child] = self._resolve_text(child)
                self._deltas.pop(child, None)
        self._data.pop(key, None)
        self._deltas.pop(key, None)
        self._wire.pop(key, None)

    def contains(self, key: str) -> bool:
        return key in self._data or key in self._deltas or key in self._wire

    def digest(self, key: str) -> str:
        """Digest probe: hash of the payload as held *right now*."""
        if not self.contains(key):
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}") from None
        try:
            return digest_of_canonical(self._resolve_text(key))
        except Exception:
            return UNREADABLE_DIGEST

    def has_room(self, nbytes: int) -> bool:
        return True

    def keys(self) -> List[str]:
        return list(self._data) + list(self._deltas) + list(self._wire)

    def used_by_prefix(self, prefix: str) -> int:
        """Bytes held under keys starting with ``prefix``.

        Swap keys are namespaced per space (``"{space}/sc-{sid}/..."``),
        so this is the per-space footprint the fleet's tenant
        accountant charges.  A pure metadata scan: no link traffic.
        """
        return sum(
            len(text.encode("utf-8"))
            for key, text in self._data.items()
            if key.startswith(prefix)
        ) + sum(
            len(text.encode("utf-8"))
            for key, (text, _base) in self._deltas.items()
            if key.startswith(prefix)
        ) + sum(
            len(data)
            for key, data in self._wire.items()
            if key.startswith(prefix)
        )

    def __len__(self) -> int:
        return len(self._data) + len(self._deltas) + len(self._wire)


class XmlStoreDevice:
    """A nearby device with bounded storage behind an optional link.

    Entries are kept as the bytes that actually travelled (compressed
    when a codec was negotiated), so capacity accounting reflects the
    store's real footprint; :meth:`fetch` transparently decompresses.
    """

    #: Codecs this store can accept, best first (compression negotiation).
    supported_compressions: Tuple[str, ...] = SUPPORTED_COMPRESSIONS

    #: Wire codecs this store can hold at rest, best first.
    supported_codecs: Tuple[str, ...] = SUPPORTED_CODECS

    def __init__(
        self,
        device_id: str,
        capacity: int = 1 << 20,
        link: Optional[Link] = None,
        placement_group: Optional[str] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("store capacity must be positive")
        self._device_id = device_id
        self.capacity = capacity
        self._link = link
        #: Anti-affinity domain (rack/owner/desk); replica placement
        #: avoids putting two copies in one group.  ``None`` = the
        #: device is its own failure domain.
        self.placement_group = placement_group
        #: key -> (stored bytes, compression codec or None)
        self._data: Dict[str, Tuple[bytes, Optional[str]]] = {}
        #: key -> (delta bytes, compression, base key); a key lives in
        #: exactly one of ``_data`` / ``_deltas``.  Delta bytes count
        #: toward capacity like any other stored bytes.
        self._deltas: Dict[str, Tuple[bytes, Optional[str], str]] = {}
        #: keys of ``_data`` entries held as binary wire frames rather
        #: than canonical XML text (value = codec name)
        self._codecs: Dict[str, str] = {}
        self._used = 0

    # -- SwapStore protocol ----------------------------------------------------

    @property
    def device_id(self) -> str:
        return self._device_id

    def store(self, key: str, xml_text: str) -> None:
        data = xml_text.encode("utf-8")
        self._carry(len(data))
        self._put(key, data, None)

    def store_stream(
        self,
        key: str,
        frames: Iterable[bytes],
        compression: Optional[str] = None,
        codec: Optional[str] = None,
    ) -> None:
        """Receive a payload as a batch of frames over one connection.

        ``frames`` already carry the negotiated ``compression``; the link
        (when batching-capable) charges one latency for the whole batch
        instead of one per frame.  Under the negotiated ``"binary"``
        codec the (compressed) frames hold binary wire framing instead
        of canonical XML; the entry is kept as received and transcoded
        back to canonical text on ``fetch``/``digest``.
        """
        frame_list = [bytes(frame) for frame in frames]
        if self._link is not None:
            batch = getattr(self._link, "transfer_batch", None)
            if batch is not None:
                batch([len(frame) for frame in frame_list])
            else:
                for frame in frame_list:
                    self._link.transfer(len(frame))
        data = b"".join(frame_list)
        if compression is not None and compression not in self.supported_compressions:
            raise TransportError(
                f"{self._device_id}: unsupported compression {compression!r} "
                f"(advertises {sorted(self.supported_compressions)})"
            )
        codec = _validate_codec(self._device_id, codec, self.supported_codecs)
        self._put(key, data, compression, codec=codec)

    def store_delta(
        self,
        key: str,
        base_epoch: int,
        frames: Iterable[bytes],
        *,
        base_key: str,
        compression: Optional[str] = None,
        codec: Optional[str] = None,
    ) -> None:
        """Receive a delta applying to the payload held at ``base_key``.

        The store keeps the delta as-is (capacity-accounted like any
        payload); fetch/digest of the chain tip resolve base + deltas to
        the full document server-side.  Raises
        :class:`~repro.errors.UnknownKeyError` when the base is missing
        and :class:`~repro.errors.CodecError` when the held base sits at
        a different epoch than ``base_epoch`` — the diverged-replica
        signal that tells the sender to fall back to a full payload.

        A binary-framed delta (negotiated codec) is unwrapped to its
        canonical text on receipt — deltas stay XML at rest so chain
        resolution is codec-agnostic.
        """
        if key == base_key:
            raise TransportError(
                f"{self._device_id}: delta key {key!r} cannot be its own base"
            )
        frame_list = [bytes(frame) for frame in frames]
        if self._link is not None:
            batch = getattr(self._link, "transfer_batch", None)
            if batch is not None:
                batch([len(frame) for frame in frame_list])
            else:
                for frame in frame_list:
                    self._link.transfer(len(frame))
        data = b"".join(frame_list)
        if compression is not None and compression not in self.supported_compressions:
            raise TransportError(
                f"{self._device_id}: unsupported compression {compression!r} "
                f"(advertises {sorted(self.supported_compressions)})"
            )
        codec = _validate_codec(self._device_id, codec, self.supported_codecs)
        if codec == "binary":
            delta_text = decode_delta_binary(decode_body(data, compression))
            data = compress_payload(delta_text, compression)
        base_text = self._resolve_text(base_key)
        held_epoch = _payload_epoch(base_text)
        if held_epoch != base_epoch:
            raise CodecError(
                f"{self._device_id}: base {base_key!r} is at epoch "
                f"{held_epoch}, delta expects {base_epoch}"
            )
        previous = self._data.get(key) or self._deltas.get(key)
        delta = len(data) - (len(previous[0]) if previous else 0)
        if self._used + delta > self.capacity:
            raise StoreFullError(
                f"{self._device_id}: {len(data)} delta bytes exceed free "
                f"space ({self.capacity - self._used} of {self.capacity})"
            )
        entry = self._data.pop(key, None)
        if entry is not None:
            self._used -= len(entry[0])
            delta += len(entry[0])
        self._codecs.pop(key, None)
        self._deltas[key] = (data, compression, base_key)
        self._used += delta

    def _resolve_text(self, key: str, depth: int = 0) -> str:
        """Full document under ``key``, applying any delta chain (no link)."""
        entry = self._data.get(key)
        if entry is not None:
            raw = decode_body(entry[0], entry[1])
            if self._codecs.get(key) == "binary":
                return binary_to_canonical(raw)[0]
            return raw.decode("utf-8")
        delta_entry = self._deltas.get(key)
        if delta_entry is None:
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}") from None
        if depth >= MAX_DELTA_CHAIN:
            raise CodecError(f"{self._device_id}: delta chain too deep at {key!r}")
        data, compression, base_key = delta_entry
        delta_text = decompress_payload(data, compression)
        base_text = self._resolve_text(base_key, depth + 1)
        return apply_cluster_delta(base_text, delta_text)

    def fetch(self, key: str) -> str:
        entry = self._data.get(key)
        if entry is not None:
            self._carry(len(entry[0]))
            try:
                return self._resolve_text(key)
            except CodecError:
                if self._codecs.get(key) == "binary":
                    return CORRUPT_BINARY_TEXT
                raise
        # chain tip: the applied document is what travels back
        text = self._resolve_text(key)
        self._carry(len(text.encode("utf-8")))
        return text

    def fetch_wire(self, key: str) -> Tuple[bytes, Optional[str]]:
        """Payload in its at-rest wire form: ``(bytes, codec or None)``.

        A binary entry travels back as frames (charging the stored,
        compressed size on the link — the whole point); anything else
        comes back as canonical XML utf-8 with codec ``None``.
        """
        entry = self._data.get(key)
        if entry is not None:
            self._carry(len(entry[0]))
            raw = decode_body(entry[0], entry[1])
            return raw, self._codecs.get(key)
        text = self._resolve_text(key)
        self._carry(len(text.encode("utf-8")))
        return text.encode("utf-8"), None

    def drop(self, key: str) -> None:
        self._carry(CONTROL_MESSAGE_BYTES)
        self._drop_direct(key)

    def contains(self, key: str) -> bool:
        """Key probe: a cheap control round trip, no payload on the link.

        This is what makes a metadata-only swap-out of a *clean* cluster
        possible — the manager verifies the store still holds the payload
        without shipping it again.
        """
        self._carry(CONTROL_MESSAGE_BYTES)
        return key in self._data or key in self._deltas

    def digest(self, key: str) -> str:
        """Digest probe: hash what is *actually at rest* under ``key``.

        The scrubber's cheap integrity check — one control round trip
        instead of a payload fetch.  The digest is computed over the
        stored bytes at probe time — for a delta-chain tip, over the
        chain as it applies right now — so silent at-rest corruption of
        any link in the chain shows up as a mismatch (or
        :data:`UNREADABLE_DIGEST` when it no longer even resolves).
        """
        if key not in self._data and key not in self._deltas:
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}") from None
        self._carry(CONTROL_MESSAGE_BYTES)
        try:
            return digest_of_canonical(self._resolve_text(key))
        except Exception:
            return UNREADABLE_DIGEST

    def has_room(self, nbytes: int) -> bool:
        if self._link is not None and not self._link.is_up:
            raise TransportError(f"{self._device_id}: link down")
        return self._used + nbytes <= self.capacity

    def _put(
        self,
        key: str,
        data: bytes,
        compression: Optional[str],
        codec: Optional[str] = None,
    ) -> None:
        previous = self._data.get(key) or self._deltas.get(key)
        delta = len(data) - (len(previous[0]) if previous else 0)
        if self._used + delta > self.capacity:
            raise StoreFullError(
                f"{self._device_id}: {len(data)} bytes exceed free space "
                f"({self.capacity - self._used} of {self.capacity})"
            )
        # a full payload arriving under a key held as a delta replaces it
        self._deltas.pop(key, None)
        self._data[key] = (data, compression)
        if codec == "binary":
            self._codecs[key] = codec
        else:
            self._codecs.pop(key, None)
        self._used += delta

    # -- extras ----------------------------------------------------------------------

    @property
    def link(self) -> Optional[Link]:
        """The simulated link in front of this store (None = direct).

        Writable so fault schedules can interpose a
        :class:`~repro.faults.flaky.FlakyLink` on a live device.
        """
        return self._link

    @link.setter
    def link(self, link: Optional[Link]) -> None:
        self._link = link

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def keys(self) -> List[str]:
        return list(self._data) + list(self._deltas)

    def used_by_prefix(self, prefix: str) -> int:
        """Bytes at rest under keys starting with ``prefix``.

        The fleet's tenant accountant reads per-space footprints this
        way (swap keys are namespaced ``"{space}/sc-{sid}/..."``) —
        what is *actually held*, deltas and negotiated compression
        included, so quota and fair-share arithmetic line up with
        ``used`` / ``capacity``.  A local metadata scan: no link charge.
        """
        return sum(
            len(data)
            for key, (data, _compression) in self._data.items()
            if key.startswith(prefix)
        ) + sum(
            len(data)
            for key, (data, _compression, _base) in self._deltas.items()
            if key.startswith(prefix)
        )

    def as_endpoint(self) -> WebServiceEndpoint:
        """Expose the store contract as web-service operations."""
        endpoint = WebServiceEndpoint(self._device_id)
        endpoint.register("store", lambda key, text: self._store_direct(key, text))
        endpoint.register("fetch", lambda key: self._fetch_direct(key))
        endpoint.register("drop", lambda key: self._drop_direct(key))
        endpoint.register("keys", lambda: self.keys())
        endpoint.register(
            "has_room", lambda nbytes: self._used + nbytes <= self.capacity
        )
        endpoint.register(
            "contains", lambda key: key in self._data or key in self._deltas
        )
        endpoint.register("digest", lambda key: self._digest_direct(key))
        return endpoint

    # endpoint variants skip the link (the web-service client charges it)
    def _store_direct(self, key: str, text: str) -> None:
        self._put(key, text.encode("utf-8"), None)

    def _fetch_direct(self, key: str) -> str:
        return self._resolve_text(key)

    def _drop_direct(self, key: str) -> None:
        # deltas depending on the dropped key must survive it: collapse
        # direct dependents to full payloads first (allowed to overshoot
        # capacity transiently — a drop must never fail for lack of room)
        for child, (_data, _compression, base_key) in list(self._deltas.items()):
            if base_key == key and child != key:
                self._materialize(child)
        entry = self._data.pop(key, None)
        if entry is not None:
            self._used -= len(entry[0])
        self._codecs.pop(key, None)
        delta_entry = self._deltas.pop(key, None)
        if delta_entry is not None:
            self._used -= len(delta_entry[0])

    def _materialize(self, key: str) -> None:
        """Collapse a delta entry to the full payload it resolves to."""
        text = self._resolve_text(key)
        data, compression, _base_key = self._deltas.pop(key)
        self._used -= len(data)
        full = compress_payload(text, compression)
        self._data[key] = (full, compression)
        self._used += len(full)

    def _digest_direct(self, key: str) -> str:
        if key not in self._data and key not in self._deltas:
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}") from None
        try:
            return digest_of_canonical(self._resolve_text(key))
        except Exception:
            return UNREADABLE_DIGEST

    def _carry(self, nbytes: int) -> None:
        if self._link is not None:
            self._link.transfer(nbytes)

    def __len__(self) -> int:
        return len(self._data) + len(self._deltas)


def _safe_filename(key: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]", "_", key) + ".xml"


class FileStore:
    """Swapped clusters as text files under a directory.

    The local-persistent-memory analogue (cf. the extended weak
    references of the .NET Micro Framework in the paper's related work):
    swapping to a flash card instead of a nearby device.
    """

    #: Wire codecs this store can hold at rest, best first.
    supported_codecs: Tuple[str, ...] = SUPPORTED_CODECS

    def __init__(self, directory: str | Path, device_id: str = "flash-card") -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._device_id = device_id
        self._paths: Dict[str, Path] = {}
        #: keys whose file holds binary wire frames (``.bin`` on disk)
        self._codecs: Dict[str, str] = {}

    @property
    def device_id(self) -> str:
        return self._device_id

    def store(self, key: str, xml_text: str) -> None:
        self._drop_codec_file(key)
        path = self._directory / _safe_filename(key)
        path.write_text(xml_text, encoding="utf-8")
        self._paths[key] = path

    def store_stream(
        self,
        key: str,
        frames: Iterable[bytes],
        compression: Optional[str] = None,
        codec: Optional[str] = None,
    ) -> None:
        """Receive framed payloads; binary entries land as ``.bin`` files."""
        codec = _validate_codec(self._device_id, codec, self.supported_codecs)
        data = decode_body(b"".join(bytes(frame) for frame in frames), compression)
        if codec == "binary":
            path = (self._directory / _safe_filename(key)).with_suffix(".bin")
            old = self._paths.get(key)
            if old is not None and old != path and old.exists():
                old.unlink()
            path.write_bytes(data)
            self._paths[key] = path
            self._codecs[key] = codec
        else:
            self.store(key, data.decode("utf-8"))

    def _drop_codec_file(self, key: str) -> None:
        """Remove a stale ``.bin`` file when ``key`` reverts to XML."""
        if self._codecs.pop(key, None) is not None:
            old = self._paths.pop(key, None)
            if old is not None and old.exists():
                old.unlink()

    def _read_text(self, key: str) -> str:
        path = self._paths.get(key, self._directory / _safe_filename(key))
        if not path.exists():
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}")
        if self._codecs.get(key) == "binary":
            return binary_to_canonical(path.read_bytes())[0]
        return path.read_text(encoding="utf-8")

    def fetch(self, key: str) -> str:
        try:
            return self._read_text(key)
        except CodecError:
            if self._codecs.get(key) == "binary":
                return CORRUPT_BINARY_TEXT
            raise

    def fetch_wire(self, key: str) -> Tuple[bytes, Optional[str]]:
        """The file's bytes plus the codec they are framed in."""
        path = self._paths.get(key, self._directory / _safe_filename(key))
        if not path.exists():
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}")
        return path.read_bytes(), self._codecs.get(key)

    def drop(self, key: str) -> None:
        self._codecs.pop(key, None)
        path = self._paths.pop(key, self._directory / _safe_filename(key))
        if path.exists():
            path.unlink()

    def contains(self, key: str) -> bool:
        path = self._paths.get(key, self._directory / _safe_filename(key))
        return path.exists()

    def digest(self, key: str) -> str:
        """Digest probe over the file as it exists on the card now."""
        try:
            return digest_of_canonical(self._read_text(key))
        except UnknownKeyError:
            raise
        except Exception:
            return UNREADABLE_DIGEST

    def has_room(self, nbytes: int) -> bool:
        return True

    def keys(self) -> List[str]:
        return sorted(self._paths)

    def used_by_prefix(self, prefix: str) -> int:
        """Bytes on the card under keys starting with ``prefix``."""
        return sum(
            path.stat().st_size
            for key, path in self._paths.items()
            if key.startswith(prefix) and path.exists()
        )
