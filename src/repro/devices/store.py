"""XML store devices — the dumb receivers of swapped clusters.

Receiving devices "need not have neither OBIWAN nor even a virtual
machine installed.  They need only be able to store and return a textual
representation of the serialized objects being swapped-out" (Section 3).
All variants implement the :class:`repro.core.interfaces.SwapStore`
protocol: ``store`` / ``fetch`` / ``drop`` / ``has_room``.

* :class:`XmlStoreDevice` — a capacity-limited nearby device, optionally
  behind a simulated wireless link (payloads charge transfer time) and
  exposable as a web-service endpoint;
* :class:`InMemoryStore` — the simplest possible conforming store;
* :class:`FileStore` — text files in a directory (the flash-card
  analogue of the .NET Micro discussion in the related work).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple
from xml.etree import ElementTree as ET

from repro.comm.transport import (
    Link,
    SUPPORTED_COMPRESSIONS,
    compress_payload,
    decompress_payload,
)
from repro.comm.webservice import WebServiceEndpoint
from repro.errors import CodecError, StoreFullError, TransportError, UnknownKeyError
from repro.wire.canonical import digest_of_canonical
from repro.wire.delta import apply_cluster_delta

#: Cost of a key-probe / drop round trip: a control message, not a payload.
CONTROL_MESSAGE_BYTES = 64

#: Hard cap on delta-chain depth a store will resolve; the manager's
#: compaction thresholds keep real chains far shorter.
MAX_DELTA_CHAIN = 64


def _payload_epoch(xml_text: str) -> int:
    """Epoch attribute of a stored ``<swap-cluster>`` document."""
    try:
        return int(ET.fromstring(xml_text).get("epoch", "0"))
    except (ET.ParseError, ValueError) as exc:
        raise CodecError(f"unreadable payload epoch: {exc}") from exc

#: Digest returned by a digest probe when the stored payload cannot even
#: be decoded (at-rest corruption of the compressed frames).  Never a
#: valid hex digest, so it can only ever mismatch.
UNREADABLE_DIGEST = "unreadable"


class InMemoryStore:
    """Minimal conforming store: a dict of key -> XML text."""

    def __init__(self, device_id: str = "memory-store") -> None:
        self._device_id = device_id
        self._data: Dict[str, str] = {}
        #: key -> (delta text, base key); a key lives in exactly one of
        #: ``_data`` / ``_deltas``
        self._deltas: Dict[str, Tuple[str, str]] = {}

    @property
    def device_id(self) -> str:
        return self._device_id

    def store(self, key: str, xml_text: str) -> None:
        self._deltas.pop(key, None)
        self._data[key] = xml_text

    def store_delta(
        self,
        key: str,
        base_epoch: int,
        frames: Iterable[bytes],
        *,
        base_key: str,
        compression: Optional[str] = None,
    ) -> None:
        """Accept a delta document applying to the payload at ``base_key``.

        Raises :class:`~repro.errors.UnknownKeyError` when the base is
        not held, and :class:`~repro.errors.CodecError` when the held
        base sits at a different epoch than ``base_epoch`` (diverged
        replica — the sender must fall back to a full payload).
        """
        if key == base_key:
            raise TransportError(
                f"{self._device_id}: delta key {key!r} cannot be its own base"
            )
        data = b"".join(bytes(frame) for frame in frames)
        text = decompress_payload(data, compression)
        base_text = self._resolve_text(base_key)
        held_epoch = _payload_epoch(base_text)
        if held_epoch != base_epoch:
            raise CodecError(
                f"{self._device_id}: base {base_key!r} is at epoch "
                f"{held_epoch}, delta expects {base_epoch}"
            )
        self._data.pop(key, None)
        self._deltas[key] = (text, base_key)

    def _resolve_text(self, key: str, depth: int = 0) -> str:
        if key in self._data:
            return self._data[key]
        entry = self._deltas.get(key)
        if entry is None:
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}") from None
        if depth >= MAX_DELTA_CHAIN:
            raise CodecError(f"{self._device_id}: delta chain too deep at {key!r}")
        delta_text, base_key = entry
        return apply_cluster_delta(
            self._resolve_text(base_key, depth + 1), delta_text
        )

    def fetch(self, key: str) -> str:
        return self._resolve_text(key)

    def drop(self, key: str) -> None:
        # a delta depending on the dropped key must survive it: collapse
        # direct dependents to full payloads first
        for child, (_text, base_key) in list(self._deltas.items()):
            if base_key == key and child != key:
                self._data[child] = self._resolve_text(child)
                self._deltas.pop(child, None)
        self._data.pop(key, None)
        self._deltas.pop(key, None)

    def contains(self, key: str) -> bool:
        return key in self._data or key in self._deltas

    def digest(self, key: str) -> str:
        """Digest probe: hash of the payload as held *right now*."""
        if key not in self._data and key not in self._deltas:
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}") from None
        try:
            return digest_of_canonical(self._resolve_text(key))
        except Exception:
            return UNREADABLE_DIGEST

    def has_room(self, nbytes: int) -> bool:
        return True

    def keys(self) -> List[str]:
        return list(self._data) + list(self._deltas)

    def used_by_prefix(self, prefix: str) -> int:
        """Bytes held under keys starting with ``prefix``.

        Swap keys are namespaced per space (``"{space}/sc-{sid}/..."``),
        so this is the per-space footprint the fleet's tenant
        accountant charges.  A pure metadata scan: no link traffic.
        """
        return sum(
            len(text.encode("utf-8"))
            for key, text in self._data.items()
            if key.startswith(prefix)
        ) + sum(
            len(text.encode("utf-8"))
            for key, (text, _base) in self._deltas.items()
            if key.startswith(prefix)
        )

    def __len__(self) -> int:
        return len(self._data) + len(self._deltas)


class XmlStoreDevice:
    """A nearby device with bounded storage behind an optional link.

    Entries are kept as the bytes that actually travelled (compressed
    when a codec was negotiated), so capacity accounting reflects the
    store's real footprint; :meth:`fetch` transparently decompresses.
    """

    #: Codecs this store can accept, best first (compression negotiation).
    supported_compressions: Tuple[str, ...] = SUPPORTED_COMPRESSIONS

    def __init__(
        self,
        device_id: str,
        capacity: int = 1 << 20,
        link: Optional[Link] = None,
        placement_group: Optional[str] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("store capacity must be positive")
        self._device_id = device_id
        self.capacity = capacity
        self._link = link
        #: Anti-affinity domain (rack/owner/desk); replica placement
        #: avoids putting two copies in one group.  ``None`` = the
        #: device is its own failure domain.
        self.placement_group = placement_group
        #: key -> (stored bytes, compression codec or None)
        self._data: Dict[str, Tuple[bytes, Optional[str]]] = {}
        #: key -> (delta bytes, compression, base key); a key lives in
        #: exactly one of ``_data`` / ``_deltas``.  Delta bytes count
        #: toward capacity like any other stored bytes.
        self._deltas: Dict[str, Tuple[bytes, Optional[str], str]] = {}
        self._used = 0

    # -- SwapStore protocol ----------------------------------------------------

    @property
    def device_id(self) -> str:
        return self._device_id

    def store(self, key: str, xml_text: str) -> None:
        data = xml_text.encode("utf-8")
        self._carry(len(data))
        self._put(key, data, None)

    def store_stream(
        self,
        key: str,
        frames: Iterable[bytes],
        compression: Optional[str] = None,
    ) -> None:
        """Receive a payload as a batch of frames over one connection.

        ``frames`` already carry the negotiated ``compression``; the link
        (when batching-capable) charges one latency for the whole batch
        instead of one per frame.
        """
        frame_list = [bytes(frame) for frame in frames]
        if self._link is not None:
            batch = getattr(self._link, "transfer_batch", None)
            if batch is not None:
                batch([len(frame) for frame in frame_list])
            else:
                for frame in frame_list:
                    self._link.transfer(len(frame))
        data = b"".join(frame_list)
        if compression is not None and compression not in self.supported_compressions:
            raise TransportError(
                f"{self._device_id}: unsupported compression {compression!r}"
            )
        self._put(key, data, compression)

    def store_delta(
        self,
        key: str,
        base_epoch: int,
        frames: Iterable[bytes],
        *,
        base_key: str,
        compression: Optional[str] = None,
    ) -> None:
        """Receive a delta applying to the payload held at ``base_key``.

        The store keeps the delta as-is (capacity-accounted like any
        payload); fetch/digest of the chain tip resolve base + deltas to
        the full document server-side.  Raises
        :class:`~repro.errors.UnknownKeyError` when the base is missing
        and :class:`~repro.errors.CodecError` when the held base sits at
        a different epoch than ``base_epoch`` — the diverged-replica
        signal that tells the sender to fall back to a full payload.
        """
        if key == base_key:
            raise TransportError(
                f"{self._device_id}: delta key {key!r} cannot be its own base"
            )
        frame_list = [bytes(frame) for frame in frames]
        if self._link is not None:
            batch = getattr(self._link, "transfer_batch", None)
            if batch is not None:
                batch([len(frame) for frame in frame_list])
            else:
                for frame in frame_list:
                    self._link.transfer(len(frame))
        data = b"".join(frame_list)
        if compression is not None and compression not in self.supported_compressions:
            raise TransportError(
                f"{self._device_id}: unsupported compression {compression!r}"
            )
        base_text = self._resolve_text(base_key)
        held_epoch = _payload_epoch(base_text)
        if held_epoch != base_epoch:
            raise CodecError(
                f"{self._device_id}: base {base_key!r} is at epoch "
                f"{held_epoch}, delta expects {base_epoch}"
            )
        previous = self._data.get(key) or self._deltas.get(key)
        delta = len(data) - (len(previous[0]) if previous else 0)
        if self._used + delta > self.capacity:
            raise StoreFullError(
                f"{self._device_id}: {len(data)} delta bytes exceed free "
                f"space ({self.capacity - self._used} of {self.capacity})"
            )
        entry = self._data.pop(key, None)
        if entry is not None:
            self._used -= len(entry[0])
            delta += len(entry[0])
        self._deltas[key] = (data, compression, base_key)
        self._used += delta

    def _resolve_text(self, key: str, depth: int = 0) -> str:
        """Full document under ``key``, applying any delta chain (no link)."""
        entry = self._data.get(key)
        if entry is not None:
            return decompress_payload(entry[0], entry[1])
        delta_entry = self._deltas.get(key)
        if delta_entry is None:
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}") from None
        if depth >= MAX_DELTA_CHAIN:
            raise CodecError(f"{self._device_id}: delta chain too deep at {key!r}")
        data, compression, base_key = delta_entry
        delta_text = decompress_payload(data, compression)
        base_text = self._resolve_text(base_key, depth + 1)
        return apply_cluster_delta(base_text, delta_text)

    def fetch(self, key: str) -> str:
        entry = self._data.get(key)
        if entry is not None:
            self._carry(len(entry[0]))
            return decompress_payload(entry[0], entry[1])
        # chain tip: the applied document is what travels back
        text = self._resolve_text(key)
        self._carry(len(text.encode("utf-8")))
        return text

    def drop(self, key: str) -> None:
        self._carry(CONTROL_MESSAGE_BYTES)
        self._drop_direct(key)

    def contains(self, key: str) -> bool:
        """Key probe: a cheap control round trip, no payload on the link.

        This is what makes a metadata-only swap-out of a *clean* cluster
        possible — the manager verifies the store still holds the payload
        without shipping it again.
        """
        self._carry(CONTROL_MESSAGE_BYTES)
        return key in self._data or key in self._deltas

    def digest(self, key: str) -> str:
        """Digest probe: hash what is *actually at rest* under ``key``.

        The scrubber's cheap integrity check — one control round trip
        instead of a payload fetch.  The digest is computed over the
        stored bytes at probe time — for a delta-chain tip, over the
        chain as it applies right now — so silent at-rest corruption of
        any link in the chain shows up as a mismatch (or
        :data:`UNREADABLE_DIGEST` when it no longer even resolves).
        """
        if key not in self._data and key not in self._deltas:
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}") from None
        self._carry(CONTROL_MESSAGE_BYTES)
        try:
            return digest_of_canonical(self._resolve_text(key))
        except Exception:
            return UNREADABLE_DIGEST

    def has_room(self, nbytes: int) -> bool:
        if self._link is not None and not self._link.is_up:
            raise TransportError(f"{self._device_id}: link down")
        return self._used + nbytes <= self.capacity

    def _put(self, key: str, data: bytes, compression: Optional[str]) -> None:
        previous = self._data.get(key) or self._deltas.get(key)
        delta = len(data) - (len(previous[0]) if previous else 0)
        if self._used + delta > self.capacity:
            raise StoreFullError(
                f"{self._device_id}: {len(data)} bytes exceed free space "
                f"({self.capacity - self._used} of {self.capacity})"
            )
        # a full payload arriving under a key held as a delta replaces it
        self._deltas.pop(key, None)
        self._data[key] = (data, compression)
        self._used += delta

    # -- extras ----------------------------------------------------------------------

    @property
    def link(self) -> Optional[Link]:
        """The simulated link in front of this store (None = direct).

        Writable so fault schedules can interpose a
        :class:`~repro.faults.flaky.FlakyLink` on a live device.
        """
        return self._link

    @link.setter
    def link(self, link: Optional[Link]) -> None:
        self._link = link

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def keys(self) -> List[str]:
        return list(self._data) + list(self._deltas)

    def used_by_prefix(self, prefix: str) -> int:
        """Bytes at rest under keys starting with ``prefix``.

        The fleet's tenant accountant reads per-space footprints this
        way (swap keys are namespaced ``"{space}/sc-{sid}/..."``) —
        what is *actually held*, deltas and negotiated compression
        included, so quota and fair-share arithmetic line up with
        ``used`` / ``capacity``.  A local metadata scan: no link charge.
        """
        return sum(
            len(data)
            for key, (data, _compression) in self._data.items()
            if key.startswith(prefix)
        ) + sum(
            len(data)
            for key, (data, _compression, _base) in self._deltas.items()
            if key.startswith(prefix)
        )

    def as_endpoint(self) -> WebServiceEndpoint:
        """Expose the store contract as web-service operations."""
        endpoint = WebServiceEndpoint(self._device_id)
        endpoint.register("store", lambda key, text: self._store_direct(key, text))
        endpoint.register("fetch", lambda key: self._fetch_direct(key))
        endpoint.register("drop", lambda key: self._drop_direct(key))
        endpoint.register("keys", lambda: self.keys())
        endpoint.register(
            "has_room", lambda nbytes: self._used + nbytes <= self.capacity
        )
        endpoint.register(
            "contains", lambda key: key in self._data or key in self._deltas
        )
        endpoint.register("digest", lambda key: self._digest_direct(key))
        return endpoint

    # endpoint variants skip the link (the web-service client charges it)
    def _store_direct(self, key: str, text: str) -> None:
        self._put(key, text.encode("utf-8"), None)

    def _fetch_direct(self, key: str) -> str:
        return self._resolve_text(key)

    def _drop_direct(self, key: str) -> None:
        # deltas depending on the dropped key must survive it: collapse
        # direct dependents to full payloads first (allowed to overshoot
        # capacity transiently — a drop must never fail for lack of room)
        for child, (_data, _compression, base_key) in list(self._deltas.items()):
            if base_key == key and child != key:
                self._materialize(child)
        entry = self._data.pop(key, None)
        if entry is not None:
            self._used -= len(entry[0])
        delta_entry = self._deltas.pop(key, None)
        if delta_entry is not None:
            self._used -= len(delta_entry[0])

    def _materialize(self, key: str) -> None:
        """Collapse a delta entry to the full payload it resolves to."""
        text = self._resolve_text(key)
        data, compression, _base_key = self._deltas.pop(key)
        self._used -= len(data)
        full = compress_payload(text, compression)
        self._data[key] = (full, compression)
        self._used += len(full)

    def _digest_direct(self, key: str) -> str:
        if key not in self._data and key not in self._deltas:
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}") from None
        try:
            return digest_of_canonical(self._resolve_text(key))
        except Exception:
            return UNREADABLE_DIGEST

    def _carry(self, nbytes: int) -> None:
        if self._link is not None:
            self._link.transfer(nbytes)

    def __len__(self) -> int:
        return len(self._data) + len(self._deltas)


def _safe_filename(key: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]", "_", key) + ".xml"


class FileStore:
    """Swapped clusters as text files under a directory.

    The local-persistent-memory analogue (cf. the extended weak
    references of the .NET Micro Framework in the paper's related work):
    swapping to a flash card instead of a nearby device.
    """

    def __init__(self, directory: str | Path, device_id: str = "flash-card") -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._device_id = device_id
        self._paths: Dict[str, Path] = {}

    @property
    def device_id(self) -> str:
        return self._device_id

    def store(self, key: str, xml_text: str) -> None:
        path = self._directory / _safe_filename(key)
        path.write_text(xml_text, encoding="utf-8")
        self._paths[key] = path

    def fetch(self, key: str) -> str:
        path = self._paths.get(key, self._directory / _safe_filename(key))
        if not path.exists():
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}")
        return path.read_text(encoding="utf-8")

    def drop(self, key: str) -> None:
        path = self._paths.pop(key, self._directory / _safe_filename(key))
        if path.exists():
            path.unlink()

    def contains(self, key: str) -> bool:
        path = self._paths.get(key, self._directory / _safe_filename(key))
        return path.exists()

    def digest(self, key: str) -> str:
        """Digest probe over the file as it exists on the card now."""
        path = self._paths.get(key, self._directory / _safe_filename(key))
        if not path.exists():
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}")
        return digest_of_canonical(path.read_text(encoding="utf-8"))

    def has_room(self, nbytes: int) -> bool:
        return True

    def keys(self) -> List[str]:
        return sorted(self._paths)

    def used_by_prefix(self, prefix: str) -> int:
        """Bytes on the card under keys starting with ``prefix``."""
        return sum(
            path.stat().st_size
            for key, path in self._paths.items()
            if key.startswith(prefix) and path.exists()
        )
