"""The full OBIWAN mobile device.

Bundles everything a Figure 2 scenario needs on the swapping side: a
managed space sized from a hardware profile, a radio neighborhood whose
discoveries feed the SwappingManager, memory/connectivity monitors wired
to the bus, a context property table, and a policy engine pre-loaded with
the default machine policy (swap LRU victims when memory runs high).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.clock import Clock, SimulatedClock
from repro.comm.discovery import Neighborhood
from repro.context.monitor import ConnectivityMonitor, MemoryMonitor
from repro.context.properties import ContextTable
from repro.core.space import Space
from repro.devices.profiles import DeviceProfile, IPAQ_3360
from repro.events import EventBus
from repro.policy.engine import PolicyEngine
from repro.runtime.registry import TypeRegistry

#: Machine-category policy shipped on every device: relieve memory
#: pressure by swapping least-recently-used clusters to nearby stores.
DEFAULT_MACHINE_POLICY = """
<policies>
  <policy name="swap-on-pressure" category="machine">
    <rule on="memory.high">
      <do action="swap_out" victims="lru" until_ratio="{low:.2f}"/>
    </rule>
  </policy>
</policies>
"""


class MobileDevice:
    """A PDA running applications on top of the OBIWAN middleware."""

    def __init__(
        self,
        name: str,
        profile: DeviceProfile = IPAQ_3360,
        *,
        clock: Optional[Clock] = None,
        registry: Optional[TypeRegistry] = None,
        high_watermark: float = 0.85,
        low_watermark: float = 0.60,
        radio_range: float = 10.0,
        load_default_policies: bool = True,
    ) -> None:
        self.name = name
        self.profile = profile
        self.clock: Clock = clock if clock is not None else SimulatedClock()
        self.bus = EventBus()
        self.space = Space(
            name,
            heap_capacity=profile.heap_bytes,
            high_watermark=high_watermark,
            low_watermark=low_watermark,
            registry=registry,
            bus=self.bus,
            clock=self.clock,
        )
        self.neighborhood = Neighborhood(bus=self.bus, radio_range=radio_range)
        self.space.manager.set_store_provider(self.neighborhood.discover)
        self.context = ContextTable()
        self.memory_monitor = MemoryMonitor(self.space, context=self.context)
        self.connectivity_monitor = ConnectivityMonitor(
            self.neighborhood, self.bus, context=self.context
        )
        self.policy_engine = PolicyEngine(
            self.space, bus=self.bus, neighborhood=self.neighborhood
        )
        if load_default_policies:
            self.policy_engine.load_xml(
                DEFAULT_MACHINE_POLICY.format(low=low_watermark)
            )

    # -- conveniences -------------------------------------------------------------

    def discover_store(
        self, store: Any, position: Optional[Tuple[float, float]] = None
    ) -> None:
        """A nearby device with storage came into range."""
        self.neighborhood.join(store, position=position)

    def lose_store(self, device_id: str) -> None:
        self.neighborhood.leave(device_id)

    @property
    def manager(self) -> Any:
        return self.space.manager

    def describe(self) -> str:
        lines = [
            f"MobileDevice {self.name!r} [{self.profile.name}]",
            f"  stores in range: {self.neighborhood.in_range_ids()}",
            f"  context: {self.context.snapshot()}",
        ]
        lines.append("  " + self.space.describe().replace("\n", "\n  "))
        return "\n".join(lines)
