"""Nearby devices: dumb XML stores and the full OBIWAN mobile device.

The receiving side of a swap needs *no* VM or middleware — only the
ability to store, return and drop XML text keyed by an id (paper,
Sections 3 and 5).  :class:`XmlStoreDevice` is exactly that contract,
optionally behind a simulated wireless link; :class:`MobileDevice` is
the swapping side: a managed space wired to a radio neighborhood,
context monitors and a policy engine.
"""

from repro.devices.store import InMemoryStore, XmlStoreDevice, FileStore
from repro.devices.profiles import DeviceProfile, IPAQ_3360, DESKTOP_PC, WRIST_DEVICE
from repro.devices.pda import MobileDevice
from repro.devices.remote import RemoteStoreClient
from repro.devices.peer import PeerStore

__all__ = [
    "InMemoryStore",
    "XmlStoreDevice",
    "FileStore",
    "DeviceProfile",
    "IPAQ_3360",
    "DESKTOP_PC",
    "WRIST_DEVICE",
    "MobileDevice",
    "RemoteStoreClient",
    "PeerStore",
]
