"""Peer stores: one OBIWAN device lending heap to another.

The paper's receivers include "other PDAs" — devices that are themselves
memory-constrained and may be running OBIWAN.  A :class:`PeerStore`
exposes part of a host space's *own heap headroom* as swap storage for a
neighbour: stored XML is charged to the host's heap (so the host's
memory pressure sees it, and the host's policies may refuse admission),
and dropped text credits it back.

Contrast with :class:`~repro.devices.store.XmlStoreDevice`, whose
capacity is independent of any heap: a peer's generosity shrinks as its
own working set grows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.comm.transport import Link
from repro.errors import StoreFullError, TransportError, UnknownKeyError
from repro.ids import IdAllocator


class PeerStore:
    """Swap storage carved out of another space's heap headroom."""

    def __init__(
        self,
        host_space: Any,
        *,
        reserve_fraction: float = 0.25,
        link: Optional[Link] = None,
        device_id: Optional[str] = None,
    ) -> None:
        """``reserve_fraction`` caps how much of the host heap guest data
        may ever occupy; admission additionally requires the host heap to
        actually have the room at store time."""
        if not 0.0 < reserve_fraction <= 1.0:
            raise ValueError("reserve_fraction must be in (0, 1]")
        self._host = host_space
        self._link = link
        self._device_id = (
            device_id if device_id is not None else f"peer:{host_space.name}"
        )
        self._limit = int(host_space.heap.capacity * reserve_fraction)
        self._texts: Dict[str, str] = {}
        self._heap_oids: Dict[str, int] = {}
        self._guest_bytes = 0
        self._ids = IdAllocator(start=1)

    # -- SwapStore protocol ----------------------------------------------------

    @property
    def device_id(self) -> str:
        return self._device_id

    def store(self, key: str, xml_text: str) -> None:
        self._carry(len(xml_text.encode("utf-8")))
        nbytes = len(xml_text.encode("utf-8"))
        previous = self._texts.get(key)
        delta = nbytes - (len(previous.encode("utf-8")) if previous else 0)
        if self._guest_bytes + delta > self._limit:
            raise StoreFullError(
                f"{self._device_id}: guest data capped at {self._limit} bytes"
            )
        if delta > 0 and not self._host.heap.would_fit(delta):
            raise StoreFullError(
                f"{self._device_id}: host heap has no room "
                f"({self._host.heap.free} free)"
            )
        if previous is not None:
            self._host.heap.free_oid(self._heap_oids.pop(key))
            self._guest_bytes -= len(previous.encode("utf-8"))
        heap_oid = -2_000_000 - self._ids.next()
        self._host.heap.allocate(heap_oid, nbytes)
        self._heap_oids[key] = heap_oid
        self._texts[key] = xml_text
        self._guest_bytes += nbytes

    def fetch(self, key: str) -> str:
        try:
            text = self._texts[key]
        except KeyError:
            raise UnknownKeyError(f"{self._device_id}: no key {key!r}") from None
        self._carry(len(text.encode("utf-8")))
        return text

    def drop(self, key: str) -> None:
        self._carry(64)
        text = self._texts.pop(key, None)
        if text is None:
            return
        self._host.heap.free_oid(self._heap_oids.pop(key))
        self._guest_bytes -= len(text.encode("utf-8"))

    def has_room(self, nbytes: int) -> bool:
        if self._link is not None and not self._link.is_up:
            raise TransportError(f"{self._device_id}: link down")
        return (
            self._guest_bytes + nbytes <= self._limit
            and self._host.heap.would_fit(nbytes)
        )

    # -- extras -----------------------------------------------------------------

    @property
    def guest_bytes(self) -> int:
        return self._guest_bytes

    @property
    def limit(self) -> int:
        return self._limit

    def keys(self) -> List[str]:
        return list(self._texts)

    def _carry(self, nbytes: int) -> None:
        if self._link is not None:
            self._link.transfer(nbytes)

    def __len__(self) -> int:
        return len(self._texts)
