"""Hardware profiles for simulated devices.

The paper's prototype runs on "a IPAQ 3360 Pocket PC with Bluetooth
connectivity at 700Kbps" (Section 4); nearby receivers range from other
PDAs to desktop PCs, and the related work discusses wrist-class devices
(.NET Micro Framework).  Profiles bundle the knobs experiments vary:
application heap budget, link class, and a relative CPU scale used by
analytical cost models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Clock
from repro.comm.transport import SimulatedLink, BLUETOOTH_BPS, WIFI_BPS


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of a device class."""

    name: str
    heap_bytes: int
    link_bps: int
    link_latency_s: float
    cpu_scale: float  # relative to the mobile device (1.0)
    store_bytes: int  # how much it can hold for others

    def make_link(self, clock: Clock | None = None) -> SimulatedLink:
        return SimulatedLink(
            self.link_bps,
            latency_s=self.link_latency_s,
            clock=clock,
            name=f"{self.name}-link",
        )


#: The paper's mobile device: iPAQ-class Pocket PC, 700 Kbps Bluetooth.
#: The heap budget models the slice of RAM a .NET CF application heap
#: realistically gets on that hardware.
IPAQ_3360 = DeviceProfile(
    name="ipaq-3360",
    heap_bytes=4 * 1024 * 1024,
    link_bps=BLUETOOTH_BPS,
    link_latency_s=0.05,
    cpu_scale=1.0,
    store_bytes=2 * 1024 * 1024,
)

#: A desktop PC in the room: large store, fast link, fast CPU.
DESKTOP_PC = DeviceProfile(
    name="desktop-pc",
    heap_bytes=512 * 1024 * 1024,
    link_bps=WIFI_BPS,
    link_latency_s=0.01,
    cpu_scale=8.0,
    store_bytes=256 * 1024 * 1024,
)

#: A peer PDA with little room to spare.
PEER_PDA = DeviceProfile(
    name="peer-pda",
    heap_bytes=4 * 1024 * 1024,
    link_bps=BLUETOOTH_BPS,
    link_latency_s=0.05,
    cpu_scale=1.0,
    store_bytes=512 * 1024,
)

#: A wrist-class embedded device (.NET Micro scale, related work §6).
WRIST_DEVICE = DeviceProfile(
    name="wrist-device",
    heap_bytes=256 * 1024,
    link_bps=115_200,
    link_latency_s=0.1,
    cpu_scale=0.1,
    store_bytes=64 * 1024,
)

ALL_PROFILES = (IPAQ_3360, DESKTOP_PC, PEER_PDA, WRIST_DEVICE)
