"""Adaptive swap-cluster tuning.

The paper leaves both granularities "adaptable" but picks them at
replication time.  With runtime merge/split
(:mod:`repro.core.restructure`) the grouping can instead *track the
application*: boundaries that are crossed constantly are overhead with no
benefit (the two sides always travel together), while big clusters that
are never crossed cost reload latency for nothing when they swap.

The tuner works from signals the middleware already maintains:

* per-cluster crossing counts and recency (recorded by every proxy
  invocation, paper §3);
* static reference affinity, recovered by scanning member fields for
  outbound proxies (a tuning-time scan — nothing is added to the
  invocation fast path).

``AdaptiveTuner.step()`` applies at most one restructuring per call, with
hysteresis bounds, so it can run from a policy rule (action
``adapt_clusters``) on memory/GC events without thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.restructure import merge_swap_clusters, split_swap_cluster
from repro.ids import ROOT_SID, Sid
from repro.runtime.classext import instance_fields


@dataclass(frozen=True)
class TuningDecision:
    """What one tuner step did (or why it did nothing)."""

    action: str  # "merge" | "split" | "none"
    detail: str
    sids: Tuple[Sid, ...] = ()


def reference_affinity(space: Any, sid: Sid) -> Dict[Sid, int]:
    """How many outbound references cluster ``sid`` holds, per target.

    Counts swap-cluster-proxies found in the members' fields (including
    containers) — the static edge structure the dynamic crossings flow
    over.
    """
    cluster = space._clusters.get(sid)
    if cluster is None or not cluster.is_resident:
        return {}
    counts: Dict[Sid, int] = {}

    def scan(value: Any) -> None:
        cls = type(value)
        if getattr(cls, "_obi_is_proxy", False):
            target_sid = value._obi_target_sid
            counts[target_sid] = counts.get(target_sid, 0) + 1
            return
        if cls is list or cls is tuple or cls is set or cls is frozenset:
            for item in value:
                scan(item)
        elif cls is dict:
            for key, item in value.items():
                scan(key)
                scan(item)

    for oid in cluster.oids:
        member = space._objects.get(oid)
        if member is None:
            continue
        for value in instance_fields(member).values():
            scan(value)
    return counts


class AdaptiveTuner:
    """One-step-at-a-time swap-cluster restructuring."""

    def __init__(
        self,
        space: Any,
        *,
        hot_crossings: int = 200,
        cold_crossings: int = 5,
        max_cluster_objects: int = 400,
        min_cluster_objects: int = 4,
        cooldown_ticks: int = 100,
    ) -> None:
        self._space = space
        #: A cluster crossed at least this often since the last step is
        #: "hot": merging it with its strongest neighbour removes the
        #: most-paid-for boundary.
        self.hot_crossings = hot_crossings
        #: A cluster crossed at most this often is "cold": if it is also
        #: large, splitting halves the future reload unit.
        self.cold_crossings = cold_crossings
        self.max_cluster_objects = max_cluster_objects
        self.min_cluster_objects = min_cluster_objects
        self.cooldown_ticks = cooldown_ticks
        self._baseline_crossings: Dict[Sid, int] = {}
        self._last_step_tick = 0
        self.decisions: List[TuningDecision] = []

    # -- signals -------------------------------------------------------------

    def crossings_since_last_step(self, sid: Sid) -> int:
        cluster = self._space._clusters.get(sid)
        if cluster is None:
            return 0
        return cluster.crossings - self._baseline_crossings.get(sid, 0)

    def _eligible(self) -> List[Any]:
        return [
            cluster
            for sid, cluster in self._space._clusters.items()
            if sid != ROOT_SID and cluster.swappable() and len(cluster) > 0
        ]

    # -- the step ----------------------------------------------------------------

    def step(self) -> TuningDecision:
        """Apply at most one merge or split; returns the decision."""
        space = self._space
        if space._tick - self._last_step_tick < self.cooldown_ticks:
            decision = TuningDecision("none", "cooldown")
            self.decisions.append(decision)
            return decision

        decision = self._try_merge()
        if decision.action == "none":
            decision = self._try_split()

        self._last_step_tick = space._tick
        for sid, cluster in space._clusters.items():
            self._baseline_crossings[sid] = cluster.crossings
        self.decisions.append(decision)
        return decision

    def _try_merge(self) -> TuningDecision:
        hot = [
            (self.crossings_since_last_step(cluster.sid), cluster)
            for cluster in self._eligible()
        ]
        hot = [
            (delta, cluster)
            for delta, cluster in hot
            if delta >= self.hot_crossings
        ]
        if not hot:
            return TuningDecision("none", "no hot cluster")
        hot.sort(key=lambda pair: pair[0], reverse=True)

        # hottest first; a cluster already at the size cap falls through
        # to the next-hottest instead of stalling the tuner
        for delta, cluster in hot:
            affinity = reference_affinity(self._space, cluster.sid)
            affinity.pop(ROOT_SID, None)
            candidates = [
                (count, target_sid)
                for target_sid, count in affinity.items()
                if (target := self._space._clusters.get(target_sid)) is not None
                and target.swappable()
                and len(target) > 0
                and len(target) + len(cluster) <= self.max_cluster_objects
            ]
            if not candidates:
                continue
            _, neighbour_sid = max(candidates)
            merge_swap_clusters(self._space, cluster.sid, neighbour_sid)
            return TuningDecision(
                "merge",
                f"hot sc-{cluster.sid} ({delta} crossings) absorbed "
                f"sc-{neighbour_sid}",
                (cluster.sid, neighbour_sid),
            )
        return TuningDecision("none", "hot clusters have no mergeable neighbour")

    def _try_split(self) -> TuningDecision:
        coldest: Optional[Any] = None
        for cluster in self._eligible():
            if len(cluster) < 2 * self.min_cluster_objects:
                continue
            if len(cluster) <= self.max_cluster_objects // 2:
                continue
            if self.crossings_since_last_step(cluster.sid) > self.cold_crossings:
                continue
            if coldest is None or len(cluster) > len(coldest):
                coldest = cluster
        if coldest is None:
            return TuningDecision("none", "no cold oversized cluster")
        half = len(coldest) // 2
        new_sid = split_swap_cluster(self._space, coldest.sid, half)
        return TuningDecision(
            "split",
            f"cold sc-{coldest.sid} split: {half} objects -> sc-{new_sid}",
            (coldest.sid, new_sid),
        )


def install_tuning_action(engine: Any, tuner: AdaptiveTuner) -> None:
    """Register the ``adapt_clusters`` policy action on an engine."""

    def adapt_clusters(context: Any, args: Dict[str, str]) -> None:
        decision = tuner.step()
        context.note(f"adapt_clusters: {decision.action} ({decision.detail})")

    engine.actions.register("adapt_clusters", adapt_clusters)
