"""Built-in policy actions.

Actions run with an :class:`ActionContext` (space, triggering event,
engine) and string arguments from the policy document.  The built-in
vocabulary covers the paper's behaviours: swap victims out under
pressure, reload, run the collector, log.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import NoSwapDeviceError, PolicyError, SwapStoreUnavailableError
from repro.events import Event
from repro.policy.victims import select_victims

logger = logging.getLogger("repro.policy")


@dataclass
class ActionContext:
    space: Any
    event: Optional[Event] = None
    engine: Any = None
    #: Actions append human-readable notes here; tests assert on them.
    journal: List[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.journal.append(message)


ActionFn = Callable[[ActionContext, Dict[str, str]], None]


class ActionRegistry:
    """Named actions a policy document may invoke."""

    def __init__(self) -> None:
        self._actions: Dict[str, ActionFn] = {}

    def register(self, name: str, fn: ActionFn) -> None:
        self._actions[name] = fn

    def run(self, name: str, context: ActionContext, args: Dict[str, str]) -> None:
        action = self._actions.get(name)
        if action is None:
            raise PolicyError(
                f"unknown action {name!r}; available: {sorted(self._actions)}"
            )
        action(context, args)

    def names(self) -> List[str]:
        return sorted(self._actions)


# -- built-ins -----------------------------------------------------------------


def _int_arg(args: Dict[str, str], name: str, default: int | None = None) -> int | None:
    raw = args.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise PolicyError(f"action argument {name}={raw!r} is not an integer") from None


def _float_arg(
    args: Dict[str, str], name: str, default: float | None = None
) -> float | None:
    raw = args.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise PolicyError(f"action argument {name}={raw!r} is not a number") from None


def action_swap_out(context: ActionContext, args: Dict[str, str]) -> None:
    """Swap victims out: ``victims=`` strategy, ``count=`` or
    ``until_ratio=`` termination (default: one victim)."""
    space = context.space
    strategy = args.get("victims", "lru")
    until_ratio = _float_arg(args, "until_ratio")
    count = _int_arg(args, "count", default=None if until_ratio else 1)

    swapped = 0
    while True:
        if until_ratio is not None and space.heap.ratio <= until_ratio:
            break
        if count is not None and swapped >= count:
            break
        victims = select_victims(space, strategy, count=1)
        if not victims:
            context.note("swap_out: no swappable victim")
            break
        try:
            location = space.manager.swap_out(victims[0])
        except (NoSwapDeviceError, SwapStoreUnavailableError) as exc:
            context.note(f"swap_out: {exc}")
            break
        swapped += 1
        context.note(
            f"swap_out: sc-{victims[0]} -> {location.device_id} "
            f"({location.xml_bytes} bytes)"
        )
        if until_ratio is None and count is None:
            break


def action_swap_in(context: ActionContext, args: Dict[str, str]) -> None:
    sid = _int_arg(args, "sid")
    if sid is None:
        raise PolicyError("swap_in requires sid=")
    context.space.manager.swap_in(sid)
    context.note(f"swap_in: sc-{sid}")


def action_gc(context: ActionContext, args: Dict[str, str]) -> None:
    result = context.space.gc()
    context.note(f"gc: {result.describe()}")


def action_log(context: ActionContext, args: Dict[str, str]) -> None:
    message = args.get("message", "")
    event_text = context.event.describe() if context.event else "<no event>"
    logger.info("policy: %s (%s)", message, event_text)
    context.note(f"log: {message}")


def action_set_victim_strategy(context: ActionContext, args: Dict[str, str]) -> None:
    from repro.policy.victims import make_selector

    strategy = args.get("strategy", "lru")
    context.space.manager.victim_selector = make_selector(strategy)
    context.note(f"victim strategy -> {strategy}")


def default_action_registry() -> ActionRegistry:
    registry = ActionRegistry()
    registry.register("swap_out", action_swap_out)
    registry.register("swap_in", action_swap_in)
    registry.register("gc", action_gc)
    registry.register("log", action_log)
    registry.register("set_victim_strategy", action_set_victim_strategy)
    return registry
