"""Safe expression evaluation for policy conditions.

Policy documents embed conditions like ``heap.ratio >= 0.85 and
devices.in_range > 0``.  They are evaluated over a namespace supplied by
the engine using a strict AST whitelist — no calls, no comprehensions,
no dunder access — so a policy file can never execute arbitrary code.
"""

from __future__ import annotations

import ast
import operator
from typing import Any, Callable, Dict, Mapping

from repro.errors import ExpressionError

_BIN_OPS: Dict[type, Callable[[Any, Any], Any]] = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
}

_CMP_OPS: Dict[type, Callable[[Any, Any], bool]] = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
    ast.Is: operator.is_,
    ast.IsNot: operator.is_not,
}


class CompiledExpression:
    """A parsed, validated condition ready to evaluate repeatedly."""

    def __init__(self, source: str) -> None:
        self.source = source
        try:
            tree = ast.parse(source, mode="eval")
        except SyntaxError as exc:
            raise ExpressionError(f"invalid condition {source!r}: {exc}") from exc
        _validate(tree.body, source)
        self._body = tree.body

    def evaluate(self, namespace: Mapping[str, Any]) -> Any:
        return _eval_node(self._body, namespace, self.source)

    def __call__(self, namespace: Mapping[str, Any]) -> Any:
        return self.evaluate(namespace)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CompiledExpression {self.source!r}>"


def compile_expression(source: str) -> CompiledExpression:
    return CompiledExpression(source)


def evaluate_expression(source: str, namespace: Mapping[str, Any]) -> Any:
    return CompiledExpression(source).evaluate(namespace)


_ALLOWED_NODES = (
    ast.Expression,
    ast.BoolOp,
    ast.And,
    ast.Or,
    ast.UnaryOp,
    ast.Not,
    ast.USub,
    ast.BinOp,
    ast.Compare,
    ast.Name,
    ast.Load,
    ast.Attribute,
    ast.Subscript,
    ast.Constant,
    ast.IfExp,
    ast.Tuple,
    ast.List,
)


def _validate(node: ast.AST, source: str) -> None:
    for child in ast.walk(node):
        if not isinstance(child, _ALLOWED_NODES) and not isinstance(
            child, tuple(_BIN_OPS) + tuple(_CMP_OPS)
        ):
            raise ExpressionError(
                f"condition {source!r}: construct {type(child).__name__} is "
                f"not allowed (no calls, lambdas or comprehensions)"
            )
        if isinstance(child, ast.Attribute) and child.attr.startswith("_"):
            raise ExpressionError(
                f"condition {source!r}: underscore attribute "
                f"{child.attr!r} is not allowed"
            )


def _eval_node(node: ast.AST, namespace: Mapping[str, Any], source: str) -> Any:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        try:
            return namespace[node.id]
        except KeyError:
            raise ExpressionError(
                f"condition {source!r}: unknown name {node.id!r}"
            ) from None
    if isinstance(node, ast.Attribute):
        value = _eval_node(node.value, namespace, source)
        try:
            return getattr(value, node.attr)
        except AttributeError:
            raise ExpressionError(
                f"condition {source!r}: {type(value).__name__} has no "
                f"attribute {node.attr!r}"
            ) from None
    if isinstance(node, ast.Subscript):
        value = _eval_node(node.value, namespace, source)
        index = _eval_node(node.slice, namespace, source)
        try:
            return value[index]
        except (KeyError, IndexError, TypeError) as exc:
            raise ExpressionError(f"condition {source!r}: {exc}") from exc
    if isinstance(node, ast.BoolOp):
        if isinstance(node.op, ast.And):
            result: Any = True
            for clause in node.values:
                result = _eval_node(clause, namespace, source)
                if not result:
                    return result
            return result
        result = False
        for clause in node.values:
            result = _eval_node(clause, namespace, source)
            if result:
                return result
        return result
    if isinstance(node, ast.UnaryOp):
        operand = _eval_node(node.operand, namespace, source)
        if isinstance(node.op, ast.Not):
            return not operand
        if isinstance(node.op, ast.USub):
            return -operand
        raise ExpressionError(f"condition {source!r}: unsupported unary op")
    if isinstance(node, ast.BinOp):
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            raise ExpressionError(f"condition {source!r}: unsupported operator")
        return op(
            _eval_node(node.left, namespace, source),
            _eval_node(node.right, namespace, source),
        )
    if isinstance(node, ast.Compare):
        left = _eval_node(node.left, namespace, source)
        for op_node, comparator in zip(node.ops, node.comparators):
            op = _CMP_OPS.get(type(op_node))
            if op is None:
                raise ExpressionError(f"condition {source!r}: unsupported comparison")
            right = _eval_node(comparator, namespace, source)
            if not op(left, right):
                return False
            left = right
        return True
    if isinstance(node, ast.IfExp):
        if _eval_node(node.test, namespace, source):
            return _eval_node(node.body, namespace, source)
        return _eval_node(node.orelse, namespace, source)
    if isinstance(node, (ast.Tuple, ast.List)):
        items = [_eval_node(item, namespace, source) for item in node.elts]
        return tuple(items) if isinstance(node, ast.Tuple) else items
    raise ExpressionError(
        f"condition {source!r}: unsupported node {type(node).__name__}"
    )
