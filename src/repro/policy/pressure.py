"""Pressure signals: how squeezed is the swapping runtime right now?

The degrade ladder (:mod:`repro.core.degrade`) escalates per swap-out
under rising pressure; this module defines what "pressure" *is*.  A
:class:`PressureSignal` is an explicit, inspectable reading of three
inputs —

* **heap headroom** — free heap as a fraction of capacity; the direct
  memory-pressure input (SWAM frames responsiveness policy around
  exactly this margin);
* **store health** — the fraction of the swap neighborhood that is
  actually usable: dead stores count zero, browned-out stores count
  half, and the :class:`~repro.resilience.placement.PlacementMap`'s
  active-replica fraction caps the figure (replicas marked SUSPECT or
  QUARANTINED mean the ledger itself doubts the neighborhood);
* **link saturation** — the fraction of recent simulated time the
  links spent carrying bytes (from ``LinkStats.seconds_charged``).

:func:`classify` folds the three into a :class:`PressureLevel`.  The
heap sets the base level; degraded stores and saturated links each bump
it one step, because shipping payloads out of a tight heap over a sick
neighborhood is strictly worse than either problem alone.

Everything here is pure and deterministic: same inputs, same level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Optional


class PressureLevel(enum.IntEnum):
    """How hard the runtime should be defending responsiveness."""

    NOMINAL = 0
    ELEVATED = 1
    HIGH = 2
    CRITICAL = 3


@dataclass(frozen=True)
class PressureThresholds:
    """Cut points turning raw readings into a :class:`PressureLevel`."""

    #: Heap headroom at or below this fraction is ELEVATED.
    elevated_headroom: float = 0.30
    #: ... HIGH.
    high_headroom: float = 0.15
    #: ... CRITICAL.
    critical_headroom: float = 0.05
    #: Store health strictly below this bumps the level one step.  The
    #: default is chosen so a fully browned-out fleet (health 0.5) and a
    #: mostly-degraded one both bump, while a single dead store out of
    #: four (health 0.75 — replication's everyday case) does not.
    degraded_store_health: float = 0.7
    #: Link saturation at or above this bumps the level one step.
    saturated_link: float = 0.75

    def __post_init__(self) -> None:
        if not (
            0.0
            <= self.critical_headroom
            <= self.high_headroom
            <= self.elevated_headroom
            <= 1.0
        ):
            raise ValueError(
                "headroom thresholds must satisfy 0 <= critical <= high "
                f"<= elevated <= 1, got {self.critical_headroom}/"
                f"{self.high_headroom}/{self.elevated_headroom}"
            )


@dataclass(frozen=True)
class PressureSignal:
    """One explicit pressure reading; drives ladder rung transitions."""

    heap_headroom: float
    store_health: float
    link_saturation: float
    level: PressureLevel

    def describe(self) -> str:
        return (
            f"{self.level.name.lower()} (headroom {self.heap_headroom:.0%}, "
            f"stores {self.store_health:.0%}, link {self.link_saturation:.0%})"
        )


def classify(
    heap_headroom: float,
    store_health: float,
    link_saturation: float,
    thresholds: Optional[PressureThresholds] = None,
) -> PressureSignal:
    """Fold three raw readings into a :class:`PressureSignal`.

    The heap sets the base level; an unhealthy neighborhood and a
    saturated link each bump it one step (capped at CRITICAL).
    """
    t = thresholds if thresholds is not None else PressureThresholds()
    if heap_headroom <= t.critical_headroom:
        level = PressureLevel.CRITICAL
    elif heap_headroom <= t.high_headroom:
        level = PressureLevel.HIGH
    elif heap_headroom <= t.elevated_headroom:
        level = PressureLevel.ELEVATED
    else:
        level = PressureLevel.NOMINAL
    bumps = 0
    if store_health < t.degraded_store_health:
        bumps += 1
    if link_saturation >= t.saturated_link:
        bumps += 1
    level = PressureLevel(min(int(PressureLevel.CRITICAL), int(level) + bumps))
    return PressureSignal(
        heap_headroom=heap_headroom,
        store_health=store_health,
        link_saturation=link_saturation,
        level=level,
    )


def store_health_of(stores: Iterable[Any], placement: Any = None) -> float:
    """The usable fraction of the swap neighborhood, in ``[0, 1]``.

    Each store contributes a weight: 0 when dead, 0.5 while browned out
    (reachable, but slow and squeezed — see :meth:`repro.faults.flaky.
    FlakyStore.set_brownout`), 1 otherwise.  When a ``placement`` map is
    given, the figure is additionally capped by its active-replica
    fraction: SUSPECT/QUARANTINED replicas mean the ledger itself does
    not trust the neighborhood, whatever the stores claim.

    An empty neighborhood reads as perfectly healthy (health measures
    degradation of what exists; absence is :class:`~repro.errors.
    NoSwapDeviceError`'s problem).
    """
    if hasattr(stores, "values"):  # accept device_id -> store mappings
        stores = stores.values()
    weights = []
    for store in stores:
        if getattr(store, "is_dead", False) or getattr(
            store, "is_partitioned", False
        ):
            weights.append(0.0)
        elif getattr(store, "in_brownout", False):
            weights.append(0.5)
        else:
            weights.append(1.0)
    health = sum(weights) / len(weights) if weights else 1.0
    if placement is not None and len(placement):
        slots = 0
        live = 0
        for record in placement.records().values():
            slots += len(record.replicas)
            live += record.live_count
        if slots:
            health = min(health, live / slots)
    return health


def links_busy_seconds(stores: Iterable[Any]) -> float:
    """Total simulated seconds the stores' links have spent transferring
    *usefully*.

    Deltas of this figure over elapsed simulated time are the link-
    saturation input to :func:`classify`.  Stores without a link (the
    compressed pool, loopback test doubles) contribute nothing.  Seconds
    charged by channel transfers that failed mid-flight
    (``LinkStats.seconds_failed``) are excluded: a ship that dies
    half-way gets retried, and counting both the doomed window and the
    retry would permanently over-report saturation for work the link
    never completed.
    """
    busy = 0.0
    for store in stores:
        link = getattr(store, "link", None)
        stats = getattr(link, "stats", None)
        if stats is not None:
            busy += max(
                0.0,
                getattr(stats, "seconds_charged", 0.0)
                - getattr(stats, "seconds_failed", 0.0),
            )
    return busy
