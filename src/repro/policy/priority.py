"""Responsiveness-aware victim policy: priorities + working sets.

SWAM's core observation (PAPERS.md) is that swap policy on a device is
really a *responsiveness* policy: the cluster behind the screen must
never pay the fault stall, and the working set — not raw recency — is
what predicts the next fault.  This module adds both notions on top of
the crossing statistics and PR 2 dirty tracking the clusters already
carry:

* a :class:`Priority` per swap-cluster (foreground / background /
  idle), settable via :meth:`repro.core.space.Space.set_priority`;
* :func:`working_set_bytes`, a working-set estimator fed by the dirty
  tracker: dirty bytes are certainly hot, and a cluster crossed within
  the recency window is conservatively counted whole;
* :func:`rank_responsiveness`, the victim ranking registered as the
  ``"responsiveness"`` strategy in :data:`repro.policy.victims.
  VICTIM_STRATEGIES` — evict idle before background before foreground,
  cold before hot, stale before recent.
"""

from __future__ import annotations

import enum
from typing import Any, List

#: Crossings within this many ticks of "now" count the whole cluster as
#: part of the working set (a touched cluster is about to be touched
#: again far more often than not).
WORKING_SET_WINDOW_TICKS = 64


class Priority(enum.IntEnum):
    """User-visible importance of a swap-cluster's contents.

    Plain ints on the wire (``SwapCluster.priority`` stores the value),
    so core never imports this module; higher means more protected.
    """

    IDLE = 0
    BACKGROUND = 1
    FOREGROUND = 2


def _footprint(space: Any, cluster: Any) -> int:
    heap = space.heap
    return sum(heap.size_of(oid) for oid in cluster.oids if heap.holds(oid))


def working_set_bytes(
    space: Any, cluster: Any, window_ticks: int = WORKING_SET_WINDOW_TICKS
) -> int:
    """Estimated hot bytes of a resident cluster.

    Fed by the dirty tracker: attributed dirty objects are certainly
    part of the working set; a conservative whole-payload invalidation
    (``dirty_all``) or a crossing within ``window_ticks`` counts the
    full footprint.  A clean cluster untouched for longer than the
    window estimates to zero — the ideal victim.
    """
    if not cluster.is_resident or not cluster.oids:
        return 0
    footprint = _footprint(space, cluster)
    if cluster.dirty_all:
        hot = footprint
    else:
        heap = space.heap
        hot = sum(
            heap.size_of(oid)
            for oid in cluster.dirty_oids
            if oid in cluster.oids and heap.holds(oid)
        )
    if space._tick - cluster.last_crossing_tick <= window_ticks:
        hot = footprint
    return hot


def hot_fraction(space: Any, cluster: Any) -> float:
    """``working_set_bytes`` over footprint, in ``[0, 1]``."""
    footprint = _footprint(space, cluster)
    if footprint <= 0:
        return 0.0
    return min(1.0, working_set_bytes(space, cluster) / footprint)


def rank_responsiveness(space: Any) -> List[int]:
    """Victim ranking that protects what the user is looking at.

    Sort key, best victim first: lowest priority, then coldest working
    set (smallest hot fraction), then least-recently crossed, then the
    biggest footprint (frees the most per eviction), sid as the
    deterministic tiebreak.
    """
    candidates = [
        cluster
        for cluster in space._clusters.values()
        if cluster.swappable() and cluster.oids
    ]

    def key(cluster: Any):
        return (
            getattr(cluster, "priority", int(Priority.BACKGROUND)),
            hot_fraction(space, cluster),
            cluster.last_crossing_tick,
            -_footprint(space, cluster),
            cluster.sid,
        )

    return [cluster.sid for cluster in sorted(candidates, key=key)]
