"""Policy object model: policies, rules, action specifications.

A policy is a named, categorized bundle of rules ("policies are stored
and categorized by nature", Section 2).  Each rule binds an event topic
(with ``*`` prefix wildcards) to an optional condition and a list of
actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.policy.expr import CompiledExpression, compile_expression


@dataclass(frozen=True)
class ActionSpec:
    """One action invocation: a registered name plus string arguments."""

    name: str
    args: Dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        rendered = " ".join(f"{key}={value}" for key, value in self.args.items())
        return f"{self.name}({rendered})" if rendered else f"{self.name}()"


class Rule:
    """on <topic> [when <condition>] do <actions>."""

    def __init__(
        self,
        on: str,
        actions: List[ActionSpec],
        when: Optional[str] = None,
    ) -> None:
        self.on = on
        self.actions = list(actions)
        self.when_source = when
        self._condition: Optional[CompiledExpression] = (
            compile_expression(when) if when else None
        )

    def matches_topic(self, topic: str) -> bool:
        if self.on.endswith("*"):
            return topic.startswith(self.on[:-1])
        return self.on == topic

    def condition_holds(self, namespace: Mapping[str, Any]) -> bool:
        if self._condition is None:
            return True
        return bool(self._condition.evaluate(namespace))

    def describe(self) -> str:
        parts = [f"on {self.on}"]
        if self.when_source:
            parts.append(f"when {self.when_source}")
        parts.append("do " + "; ".join(a.describe() for a in self.actions))
        return " ".join(parts)


@dataclass
class Policy:
    """A named bundle of rules."""

    name: str
    rules: List[Rule]
    category: str = "application"
    enabled: bool = True

    def describe(self) -> str:
        lines = [f"policy {self.name!r} [{self.category}]"]
        lines.extend(f"  {rule.describe()}" for rule in self.rules)
        return "\n".join(lines)


#: The policy categories of Figure 1 (user / machine / application / domain).
POLICY_CATEGORIES = ("user", "machine", "application", "domain")
