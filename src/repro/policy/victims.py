"""Swap-victim selection strategies.

Swap-cluster-proxies record "basic data w.r.t. recency and frequency, as
these boundaries are transversed by the application" (Section 3); those
statistics drive the choice of which cluster to detach under pressure.

Strategies (each maps a space to a ranked list of swappable sids):

* ``lru``     — least-recently-crossed first (the default);
* ``lfu``     — least-frequently-crossed first;
* ``largest`` — biggest heap footprint first (frees most per swap);
* ``smallest``— smallest first (cheapest to reload);
* ``hybrid``  — footprint / (1 + recent use) score, preferring big idle
  clusters;
* ``responsiveness`` — priority- and working-set-aware (see
  :mod:`repro.policy.priority`): idle before background before
  foreground, cold before hot.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import PolicyError
from repro.policy.priority import rank_responsiveness

RankFn = Callable[[Any], List[int]]


def _swappable(space: Any) -> List[Any]:
    return [
        cluster
        for cluster in space._clusters.values()
        if cluster.swappable() and cluster.oids
    ]


def _footprint(space: Any, cluster: Any) -> int:
    heap = space.heap
    return sum(heap.size_of(oid) for oid in cluster.oids if heap.holds(oid))


def rank_lru(space: Any) -> List[int]:
    clusters = sorted(_swappable(space), key=lambda c: c.last_crossing_tick)
    return [cluster.sid for cluster in clusters]


def rank_lfu(space: Any) -> List[int]:
    clusters = sorted(
        _swappable(space), key=lambda c: (c.crossings, c.last_crossing_tick)
    )
    return [cluster.sid for cluster in clusters]


def rank_largest(space: Any) -> List[int]:
    clusters = sorted(
        _swappable(space), key=lambda c: _footprint(space, c), reverse=True
    )
    return [cluster.sid for cluster in clusters]


def rank_smallest(space: Any) -> List[int]:
    clusters = sorted(_swappable(space), key=lambda c: _footprint(space, c))
    return [cluster.sid for cluster in clusters]


def rank_hybrid(space: Any) -> List[int]:
    now = space._tick

    def score(cluster: Any) -> float:
        idle = max(1, now - cluster.last_crossing_tick)
        return _footprint(space, cluster) * idle / (1 + cluster.crossings)

    clusters = sorted(_swappable(space), key=score, reverse=True)
    return [cluster.sid for cluster in clusters]


VICTIM_STRATEGIES: Dict[str, RankFn] = {
    "lru": rank_lru,
    "lfu": rank_lfu,
    "largest": rank_largest,
    "smallest": rank_smallest,
    "hybrid": rank_hybrid,
    "responsiveness": rank_responsiveness,
}


def select_victims(
    space: Any,
    strategy: str = "lru",
    count: int | None = None,
    need_bytes: int | None = None,
) -> List[int]:
    """Ranked victim sids, cut by ``count`` or cumulative ``need_bytes``."""
    try:
        rank = VICTIM_STRATEGIES[strategy]
    except KeyError:
        raise PolicyError(
            f"unknown victim strategy {strategy!r}; "
            f"available: {sorted(VICTIM_STRATEGIES)}"
        ) from None
    ranked = rank(space)
    if count is not None:
        return ranked[:count]
    if need_bytes is not None:
        chosen: List[int] = []
        freed = 0
        for sid in ranked:
            if freed >= need_bytes:
                break
            chosen.append(sid)
            freed += _footprint(space, space._clusters[sid])
        return chosen
    return ranked


def make_selector(strategy: str = "lru") -> Callable[[Any], Optional[int]]:
    """A one-victim-at-a-time selector for the SwappingManager."""
    if strategy not in VICTIM_STRATEGIES:
        raise PolicyError(
            f"unknown victim strategy {strategy!r}; "
            f"available: {sorted(VICTIM_STRATEGIES)}"
        )

    def selector(space: Any) -> Optional[int]:
        ranked = VICTIM_STRATEGIES[strategy](space)
        return ranked[0] if ranked else None

    return selector
