"""The policy engine: event-driven rule evaluation.

Subscribes to the space's bus; every event is matched against the loaded
rules' topics, the rule condition is evaluated over a namespace built
from the event and the live system (heap, space, devices), and matching
rules run their actions through the action registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Optional

from repro.events import Event, EventBus, topic_of
from repro.policy.actions import ActionContext, ActionRegistry, default_action_registry
from repro.policy.model import Policy, Rule


@dataclass
class _EventView:
    """Attribute-access view of an event for condition namespaces."""

    topic: str
    fields: Dict[str, Any]

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


@dataclass
class FiredRule:
    policy: str
    rule: str
    topic: str
    notes: List[str]


class PolicyEngine:
    """Loads policies and mediates events to actions for one space."""

    def __init__(
        self,
        space: Any,
        bus: Optional[EventBus] = None,
        actions: Optional[ActionRegistry] = None,
        neighborhood: Any = None,
    ) -> None:
        self._space = space
        self._bus = bus if bus is not None else space.bus
        self._actions = actions if actions is not None else default_action_registry()
        self._neighborhood = neighborhood
        self._policies: List[Policy] = []
        self.fired: List[FiredRule] = []
        self._reentry = False
        self._unsubscribe = self._bus.subscribe_all(self._on_event)

    # -- loading ---------------------------------------------------------------

    def load(self, policy: Policy) -> None:
        self._policies.append(policy)

    def load_all(self, policies: List[Policy]) -> None:
        for policy in policies:
            self.load(policy)

    def load_xml(self, xml_text: str) -> List[Policy]:
        from repro.policy.xmlpolicy import parse_policies

        policies = parse_policies(xml_text)
        self.load_all(policies)
        return policies

    def policies(self) -> List[Policy]:
        return list(self._policies)

    def unload(self, name: str) -> None:
        self._policies = [p for p in self._policies if p.name != name]

    def close(self) -> None:
        self._unsubscribe()

    @property
    def actions(self) -> ActionRegistry:
        return self._actions

    # -- dispatch -----------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if self._reentry:
            # actions emit events themselves (swap.out etc.); evaluating
            # policies against those would recurse unboundedly
            return
        topic = topic_of(event)
        namespace = self._namespace(event, topic)
        self._reentry = True
        try:
            for policy in self._policies:
                if not policy.enabled:
                    continue
                for rule in policy.rules:
                    if not rule.matches_topic(topic):
                        continue
                    if not rule.condition_holds(namespace):
                        continue
                    context = ActionContext(
                        space=self._space, event=event, engine=self
                    )
                    for action in rule.actions:
                        self._actions.run(action.name, context, action.args)
                    self.fired.append(
                        FiredRule(
                            policy=policy.name,
                            rule=rule.describe(),
                            topic=topic,
                            notes=list(context.journal),
                        )
                    )
        finally:
            self._reentry = False

    def _namespace(self, event: Event, topic: str) -> Dict[str, Any]:
        event_fields = {
            f.name: getattr(event, f.name) for f in dataclass_fields(event)
        }
        namespace: Dict[str, Any] = {
            "event": _EventView(topic=topic, fields=event_fields),
            "topic": topic,
            "heap": self._space.heap,
            "space": self._space,
            "resident_objects": self._space.object_count(),
        }
        namespace.update(event_fields)
        if self._neighborhood is not None:
            namespace["devices_in_range"] = len(self._neighborhood.discover())
        return namespace
