"""XML policy documents.

"Policies that deploy the various modules are coded in XML" (Section 4).
Format::

    <policies>
      <policy name="swap-on-pressure" category="machine">
        <rule on="memory.high">
          <when>heap.ratio &gt;= 0.85</when>
          <do action="swap_out" victims="lru" until_ratio="0.6"/>
        </rule>
        <rule on="context.device_joined">
          <do action="log" message="a store appeared"/>
        </rule>
      </policy>
    </policies>
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from xml.etree import ElementTree as ET

from repro.errors import PolicyError
from repro.policy.model import ActionSpec, Policy, Rule, POLICY_CATEGORIES


def parse_policies(xml_text: str) -> List[Policy]:
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise PolicyError(f"malformed policy XML: {exc}") from exc
    if root.tag == "policy":
        return [_parse_policy(root)]
    if root.tag != "policies":
        raise PolicyError(f"expected <policies> or <policy>, got <{root.tag}>")
    return [_parse_policy(element) for element in root if element.tag == "policy"]


def parse_policy_file(path: str | Path) -> List[Policy]:
    return parse_policies(Path(path).read_text(encoding="utf-8"))


def _parse_policy(element: ET.Element) -> Policy:
    name = element.get("name", "")
    if not name:
        raise PolicyError("<policy> requires a name attribute")
    category = element.get("category", "application")
    if category not in POLICY_CATEGORIES:
        raise PolicyError(
            f"policy {name!r}: unknown category {category!r}; "
            f"expected one of {POLICY_CATEGORIES}"
        )
    enabled = element.get("enabled", "true").lower() != "false"
    rules = [_parse_rule(child, name) for child in element if child.tag == "rule"]
    if not rules:
        raise PolicyError(f"policy {name!r} has no rules")
    return Policy(name=name, rules=rules, category=category, enabled=enabled)


def _parse_rule(element: ET.Element, policy_name: str) -> Rule:
    on = element.get("on", "")
    if not on:
        raise PolicyError(f"policy {policy_name!r}: <rule> requires on=")
    when: str | None = None
    actions: List[ActionSpec] = []
    for child in element:
        if child.tag == "when":
            if when is not None:
                raise PolicyError(
                    f"policy {policy_name!r}: rule has multiple <when>"
                )
            when = (child.text or "").strip()
            if not when:
                raise PolicyError(f"policy {policy_name!r}: empty <when>")
        elif child.tag == "do":
            name = child.get("action", "")
            if not name:
                raise PolicyError(
                    f"policy {policy_name!r}: <do> requires action="
                )
            args = {
                key: value for key, value in child.attrib.items() if key != "action"
            }
            actions.append(ActionSpec(name=name, args=args))
        else:
            raise PolicyError(
                f"policy {policy_name!r}: unexpected element <{child.tag}>"
            )
    if not actions:
        raise PolicyError(f"policy {policy_name!r}: rule on={on!r} has no <do>")
    return Rule(on=on, actions=actions, when=when)


def render_policies(policies: List[Policy]) -> str:
    """Serialize policies back to the XML document format."""
    root = ET.Element("policies")
    for policy in policies:
        policy_el = ET.SubElement(
            root,
            "policy",
            {
                "name": policy.name,
                "category": policy.category,
                "enabled": "true" if policy.enabled else "false",
            },
        )
        for rule in policy.rules:
            rule_el = ET.SubElement(policy_el, "rule", {"on": rule.on})
            if rule.when_source:
                when_el = ET.SubElement(rule_el, "when")
                when_el.text = rule.when_source
            for action in rule.actions:
                attrs = {"action": action.name}
                attrs.update(action.args)
                ET.SubElement(rule_el, "do", attrs)
    return ET.tostring(root, encoding="unicode")
