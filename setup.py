"""Legacy setup shim: lets `pip install -e .` work offline on toolchains
without wheel/PEP-517 support.  All metadata lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Object-Swapping for Resource-Constrained Devices (ICDCS 2007) — "
        "full reproduction of the OBIWAN object-swapping middleware"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
