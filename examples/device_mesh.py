#!/usr/bin/env python3
"""Surviving the device myriad: mirrored swapping + the adaptive tuner.

The paper's closing vision: "there will also be an increase in small
memory-enabled devices with wireless connectivity, scattered all-over,
that are available to any user".  Those devices come and go.  This
example shows two extensions built on that premise:

* ``replication_factor = 2``: every swapped cluster is mirrored on two
  nearby stores, so a device walking away with your data is a non-event;
* the :class:`~repro.policy.AdaptiveTuner`: constantly-crossed
  swap-cluster boundaries are merged away at runtime, cold oversized
  clusters are split, driven by the crossing statistics the proxies
  already maintain.

Run with:  python examples/device_mesh.py
"""

from repro import managed
from repro.policy import AdaptiveTuner
from repro.sim import ScenarioWorld, StoreSpec
from repro.stats import format_report, snapshot


@managed
class Entry:
    def __init__(self, key: int) -> None:
        self.key = key
        self.next = None

    def get_key(self) -> int:
        return self.key

    def get_next(self):
        return self.next


def build(n):
    head = Entry(0)
    node = head
    for key in range(1, n):
        node.next = Entry(key)
        node = node.next
    return head


def walk(handle):
    total = 0
    cursor = handle
    while cursor is not None:
        total += cursor.get_key()
        cursor = cursor.get_next()
    return total


def main() -> None:
    world = ScenarioWorld("mesh-pda", heap_capacity=1 << 20)
    for name in ("kiosk", "elevator-panel", "coffee-machine"):
        world.add_store(StoreSpec(name, capacity=1 << 20))
    space = world.space
    space.manager.replication_factor = 2

    handle = space.ingest(build(200), cluster_size=20, root_name="data")
    expected = sum(range(200))

    # -- mirrored swap: a vanishing device is survivable ---------------------
    space.swap_out(3)
    holders = [store.device_id for store in space.manager.bindings_for(3)]
    print(f"swap-cluster 3 mirrored on: {holders}")

    victim = holders[0]
    print(f"*** {victim} walks away WITH the data ***")
    world.vanish_with_data(victim)

    assert walk(handle) == expected
    print(f"walk still consistent (failover to mirror; "
          f"{space.manager.stats.mirror_failovers} failover)")
    world.come_back(victim)

    # -- adaptive tuning: hot boundaries disappear ----------------------------
    tuner = AdaptiveTuner(
        space, hot_crossings=50, max_cluster_objects=100, cooldown_ticks=0
    )
    boundaries_before = len(space.clusters()) - 1
    for round_index in range(6):
        for _ in range(10):
            assert walk(handle) == expected  # a hot, uniform traversal
        decision = tuner.step()
        print(f"tuner round {round_index}: {decision.action} "
              f"({decision.detail})")
    boundaries_after = len(space.clusters()) - 1
    print(f"\nswap-clusters: {boundaries_before} -> {boundaries_after} "
          f"(hot boundaries merged away)")

    space.verify_integrity()
    print()
    print(format_report(snapshot(space)))
    print("\nreferential integrity verified — done.")


if __name__ == "__main__":
    main()
