#!/usr/bin/env python3
"""Quick Figure 5 demonstration (reduced size).

Runs the paper's four traversal tests (A1, A2, B1, B2) against swap-
cluster sizes 20/50/100 and the NO-SWAP lower bound, on a reduced list so
it finishes in seconds.  For the full 10000-object reproduction run::

    python -m repro.bench.figure5

Run with:  python examples/figure5_demo.py
"""

from repro.bench.figure5 import Figure5Config, run_figure5
from repro.bench.report import check_shape, format_figure5_table


def main() -> None:
    config = Figure5Config(objects=3000, repeats=2)
    print(f"Figure 5 (reduced): {config.objects} x 64-byte objects\n")
    result = run_figure5(config, verbose=True)
    print()
    print(format_figure5_table(result))
    print()
    ok, notes = check_shape(result)
    for passed, note in notes:
        print(("PASS " if passed else "FAIL ") + note)
    print("\nshape " + ("HOLDS" if ok else "DOES NOT HOLD")
          + " (reduced size; the full run is the authoritative one)")


if __name__ == "__main__":
    main()
