#!/usr/bin/env python3
"""Photo-album browsing on a PDA (the paper's motivating scenario).

A server publishes photo albums; the PDA replicates them incrementally
(cluster by cluster, on demand) and browses under a small heap.  When
memory runs high, the default machine policy swaps least-recently-used
albums to whatever storage devices are in the room; browsing back to an
old album transparently reloads it over the (simulated 700 Kbps
Bluetooth) link.

Run with:  python examples/photo_album.py
"""

from repro import managed
from repro.replication import ObjectServer, Replicator
from repro.replication.server import WsServerClient
from repro.comm import WebServiceClient
from repro.events import SwapInEvent, SwapOutEvent
from repro.sim import ScenarioWorld, StoreSpec


@managed
class Photo:
    def __init__(self, name: str, pixels: bytes) -> None:
        self.name = name
        self.pixels = pixels  # a stand-in thumbnail payload

    def get_name(self) -> str:
        return self.name

    def byte_size(self) -> int:
        return len(self.pixels)


@managed
class Album:
    def __init__(self, title: str) -> None:
        self.title = title
        self.photos = []
        self.next_album = None

    def add(self, photo: Photo) -> None:
        self.photos.append(photo)

    def get_title(self) -> str:
        return self.title

    def get_photos(self):
        return self.photos

    def get_next_album(self):
        return self.next_album


def build_albums(albums: int, photos_per_album: int, photo_bytes: int) -> Album:
    first = None
    previous = None
    for album_index in range(albums):
        album = Album(f"trip-{album_index:02d}")
        for photo_index in range(photos_per_album):
            album.add(
                Photo(
                    f"img-{album_index:02d}-{photo_index:03d}.jpg",
                    bytes(photo_bytes),
                )
            )
        if previous is not None:
            previous.next_album = album
        else:
            first = album
        previous = album
    return first


def main() -> None:
    albums, photos_per_album, photo_bytes = 10, 8, 1500

    # -- the resourceful side: a server publishing the album chain --------
    server = ObjectServer("photo-server")
    server.publish(
        "albums",
        build_albums(albums, photos_per_album, photo_bytes),
        cluster_size=1 + photos_per_album,  # one album + its photos
    )

    # -- the constrained side: a PDA with a ~100 KB application heap -------
    world = ScenarioWorld("pda", heap_capacity=100 * 1024)
    world.add_store(StoreSpec("desk-pc", capacity=4 << 20))
    world.add_store(StoreSpec("peer-pda", capacity=256 << 10))
    space = world.space

    swap_log = []
    space.bus.subscribe(
        SwapOutEvent,
        lambda e: swap_log.append(f"  [swap-out] sc-{e.sid} -> {e.device_id} "
                                  f"({e.xml_bytes} B)"),
    )
    space.bus.subscribe(
        SwapInEvent,
        lambda e: swap_log.append(f"  [swap-in ] sc-{e.sid} <- {e.device_id}"),
    )

    replicator = Replicator(
        space,
        WsServerClient(
            WebServiceClient(server.as_endpoint(), world.device.profile.make_link(world.clock))
        ),
    )
    first_album = replicator.replicate("albums")

    # -- browse forward through every album --------------------------------
    print(f"browsing {albums} albums x {photos_per_album} photos "
          f"({photo_bytes} B each) on a {space.heap.capacity // 1024} KB heap\n")
    album = first_album
    while album is not None:
        names = [photo.get_name() for photo in album.get_photos()]
        print(f"viewing {album.get_title()}: {len(names)} photos "
              f"(heap {space.heap.ratio:.0%})")
        album = album.get_next_album()

    print(f"\nclusters fetched: {replicator.clusters_fetched}, "
          f"object faults: {replicator.faults}")
    print(f"swap activity while browsing forward:")
    print("\n".join(swap_log) or "  (none)")
    swap_log.clear()

    # -- jump back to the first album: transparent reload ------------------
    print(f"\nback to {first_album.get_title()}: "
          f"{len(first_album.get_photos())} photos still there")
    print("\n".join(swap_log) or "  (no swap needed)")

    stats = space.manager.stats
    print(f"\ntotals: {stats.swap_outs} swap-outs "
          f"({stats.bytes_shipped} B shipped), {stats.swap_ins} swap-ins, "
          f"{world.clock.now():.2f} simulated seconds of radio time")
    space.verify_integrity()
    print("referential integrity verified — done.")


if __name__ == "__main__":
    main()
