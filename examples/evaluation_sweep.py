#!/usr/bin/env python3
"""A reproducible parameter study with CSV output.

Uses the sweep driver (`repro.bench.sweep`) to study the swap-cycle
cost surface: cluster size × link class, measuring per-cycle radio time,
XML bytes, and energy (PDA power model).  Results land in
``results/swap_cycle_sweep.csv`` for plotting with any tool.

Run with:  python examples/evaluation_sweep.py
"""

from pathlib import Path

from repro.bench.sweep import Sweep
from repro.bench.workloads import build_list
from repro.clock import SimulatedClock
from repro.comm.transport import SimulatedLink
from repro.core.space import Space
from repro.devices.store import XmlStoreDevice
from repro.sim.energy import PDA_ENERGY, EnergyLedger


def swap_cycle(cluster_size: int, bandwidth_bps: int) -> dict:
    clock = SimulatedClock()
    space = Space(
        f"sweep-{cluster_size}-{bandwidth_bps}",
        heap_capacity=8 << 20,
        clock=clock,
    )
    link = SimulatedLink(bandwidth_bps, latency_s=0.05, clock=clock)
    store = XmlStoreDevice("receiver", capacity=8 << 20, link=link)
    space.manager.add_store(store)
    space.ingest(build_list(2000), cluster_size=cluster_size, root_name="h")

    before = clock.now()
    location = space.manager.swap_out(2)
    swap_out_s = clock.now() - before
    before = clock.now()
    space.manager.swap_in(2)
    swap_in_s = clock.now() - before
    space.verify_integrity()

    ledger = EnergyLedger(model=PDA_ENERGY)
    ledger.charge_radio_tx(swap_out_s)
    ledger.charge_radio_rx(swap_in_s)
    return {
        "xml_bytes": location.xml_bytes,
        "swap_out_s": round(swap_out_s, 4),
        "swap_in_s": round(swap_in_s, 4),
        "radio_mj": round(ledger.radio_joules * 1000, 2),
        "mj_per_kb": round(ledger.millijoules_per_kb(location.xml_bytes), 3),
    }


def main() -> None:
    sweep = Sweep(
        name="swap-cycle-surface",
        grid={
            "cluster_size": [10, 20, 50, 100, 250],
            "bandwidth_bps": [115_200, 700_000, 11_000_000],
        },
        run=swap_cycle,
    )
    print("sweeping swap-cycle cost over cluster size x link class "
          f"({len(sweep.points())} points)...\n")
    sweep.execute()
    print(sweep.format_table())

    destination = Path("results") / "swap_cycle_sweep.csv"
    sweep.write_csv(destination)
    print(f"\nwrote {destination} ({len(sweep.records)} rows)")

    summary = sweep.aggregate("mj_per_kb", by=["bandwidth_bps"])
    print("\nmean energy per KB swapped, by link class:")
    for row in summary:
        print(f"  {row['bandwidth_bps']:>10} bps: {row['mj_per_kb']:.3f} mJ/KB")


if __name__ == "__main__":
    main()
