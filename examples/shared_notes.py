#!/usr/bin/env python3
"""Two devices, one master: loosely-coupled reintegration.

Two field workers replicate the same note list from a server, edit
*disconnected* (their replicas live under their own memory pressure and
swap like anything else), then reintegrate.  The second push races the
first, loses, pulls, and retries — optimistic concurrency with no locks,
exactly the loosely-coupled style OBIWAN targets for mobile settings.

Run with:  python examples/shared_notes.py
"""

from repro import managed, Space
from repro.devices import InMemoryStore
from repro.errors import SyncConflictError
from repro.replication import (
    DirectServerClient,
    ObjectServer,
    ReplicaSync,
    Replicator,
)


@managed
class Note:
    def __init__(self, text: str) -> None:
        self.text = text
        self.next = None

    def get_text(self) -> str:
        return self.text

    def set_text(self, text: str) -> None:
        self.text = text

    def get_next(self):
        return self.next


def build_notes(texts):
    first = previous = None
    for text in texts:
        note = Note(text)
        if previous is None:
            first = note
        else:
            previous.next = note
        previous = note
    return first


def all_texts(handle):
    texts = []
    cursor = handle
    while cursor is not None:
        texts.append(cursor.get_text())
        cursor = cursor.get_next()
    return texts


def field_device(name: str, client) -> tuple:
    space = Space(name, heap_capacity=64 * 1024)
    space.manager.add_store(InMemoryStore(f"{name}-store"))
    replicator = Replicator(space, client)
    handle = replicator.replicate("notes")
    all_texts(handle)  # materialize the whole list
    return space, handle, ReplicaSync(replicator)


def main() -> None:
    server = ObjectServer("field-office")
    master = build_notes(
        ["site A: foundations ok", "site B: check drainage", "site C: todo"]
    )
    server.publish("notes", master, cluster_size=1)
    client = DirectServerClient(server)
    cids = server.cluster_ids("notes")

    alice_space, alice_notes, alice_sync = field_device("alice-pda", client)
    bob_space, bob_notes, bob_sync = field_device("bob-pda", client)
    print("both devices replicated:", all_texts(alice_notes))

    # -- disconnected edits to the SAME note -------------------------------
    alice_notes.set_text("site A: foundations ok, signed off")
    bob_notes.set_text("site A: cracks found, re-inspect!")
    first_cid = cids[0]
    print(f"\nalice dirty clusters: {alice_sync.dirty_clusters()}")
    print(f"bob   dirty clusters: {bob_sync.dirty_clusters()}")

    # -- alice reintegrates first ------------------------------------------
    result = alice_sync.push(first_cid)
    print(f"\nalice push: accepted, master now v{result.version}")
    print(f"master says: {master.text!r}")

    # -- bob's push is refused: his base version is stale --------------------
    try:
        bob_sync.push(first_cid)
    except SyncConflictError as conflict:
        print(f"bob push:   REFUSED ({conflict})")

    # -- bob pulls (sees alice's text), re-applies his finding, retries ------
    bob_sync.pull(first_cid, overwrite=True)
    print(f"bob after pull: {bob_notes.get_text()!r}")
    bob_notes.set_text(bob_notes.get_text() + " / cracks found, re-inspect!")
    result = bob_sync.push(first_cid)
    print(f"bob push:   accepted, master now v{result.version}")
    print(f"master says: {master.text!r}")

    # -- alice pulls the merged note ------------------------------------------
    alice_sync.pull(first_cid, overwrite=True)
    print(f"\nalice finally sees: {alice_notes.get_text()!r}")

    assert alice_notes.get_text() == bob_notes.get_text() == master.text
    alice_space.verify_integrity()
    bob_space.verify_integrity()
    print("\nreplicas converged; referential integrity verified — done.")


if __name__ == "__main__":
    main()
