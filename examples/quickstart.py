#!/usr/bin/env python3
"""Quickstart: transparent object-swapping in five minutes.

Builds a linked list, partitions it into swap-clusters, ships one cluster
to a nearby "device" as XML, and shows that the application never
notices: navigation transparently reloads the cluster.

Run with:  python examples/quickstart.py
"""

from repro import managed, Space, SwapClusterUtils
from repro.devices import XmlStoreDevice


@managed
class Node:
    """A tiny application class — note: no middleware code anywhere."""

    def __init__(self, value: int) -> None:
        self.value = value
        self.next = None

    def get_value(self) -> int:
        return self.value

    def get_next(self):
        return self.next


def main() -> None:
    # A managed space models the constrained device's heap.
    space = Space("my-pda", heap_capacity=256 * 1024)

    # Any nearby device able to store/return/drop XML text can receive
    # swapped objects — no VM, no middleware on that side.
    nearby_pc = XmlStoreDevice("nearby-pc", capacity=1 << 20)
    space.manager.add_store(nearby_pc)

    # Build a plain object graph...
    head = Node(0)
    node = head
    for value in range(1, 100):
        node.next = Node(value)
        node = node.next

    # ...and ingest it: BFS partition into clusters of 20 objects, one
    # swap-cluster each; cross-cluster references become proxies.
    handle = space.ingest(head, cluster_size=20, root_name="head")
    print(space.describe())

    # Swap the second cluster out: its 20 objects leave the heap as XML.
    before = space.heap.used
    location = space.swap_out(2)
    print(f"\nswapped swap-cluster 2 to {location.device_id} "
          f"({location.xml_bytes} bytes of XML, key {location.key!r})")
    print(f"heap: {before} -> {space.heap.used} bytes")
    print(f"store now holds: {nearby_pc.keys()}")

    # The application just keeps walking the list; the middleware reloads
    # the cluster the moment a proxy into it is invoked.
    total = 0
    cursor = handle
    while cursor is not None:
        total += cursor.get_value()
        cursor = cursor.get_next()
    print(f"\nwalked the whole list transparently: sum = {total} "
          f"(expected {sum(range(100))})")
    print(f"store after reload: {nearby_pc.keys()}")

    # Iteration through a root variable creates a proxy per step; the
    # assign() optimisation makes the cursor proxy patch itself instead.
    cursor = SwapClusterUtils.assign(space.make_cursor(handle))
    steps = 0
    while cursor is not None:
        cursor = cursor.get_next()
        steps += 1
    print(f"assign-mode iteration visited {steps} nodes with one proxy")

    space.verify_integrity()
    print("\nreferential integrity verified — done.")


if __name__ == "__main__":
    main()
