#!/usr/bin/env python3
"""Field data collection with unreliable nearby storage.

A surveyor's PDA logs sensor readings into pages.  Full pages are swapped
to whatever devices are nearby.  The example demonstrates the paper's
failure and GC stories:

* a storage device *leaves the room* while holding a page — touching
  that page raises ``SwapStoreUnavailableError`` (and recovers when the
  device returns);
* pages the surveyor discards become unreachable, and the local GC
  instructs the stores to drop their XML (no DGC needed).

Run with:  python examples/field_survey.py
"""

from repro import managed, SwapStoreUnavailableError
from repro.events import SwapDroppedEvent
from repro.sim import ScenarioWorld, StoreSpec


@managed
class Reading:
    def __init__(self, sensor: str, value: float) -> None:
        self.sensor = sensor
        self.value = value

    def get_value(self) -> float:
        return self.value


@managed
class Page:
    def __init__(self, page_id: int) -> None:
        self.page_id = page_id
        self.readings = []

    def append(self, reading: Reading) -> None:
        self.readings.append(reading)

    def total(self) -> float:
        return sum(reading.get_value() for reading in self.readings)

    def count(self) -> int:
        return len(self.readings)


def main() -> None:
    world = ScenarioWorld("survey-pda", heap_capacity=24 * 1024)
    world.add_store(StoreSpec("van-laptop", capacity=2 << 20))
    world.add_store(StoreSpec("colleague-pda", capacity=256 << 10))
    space = world.space

    dropped = []
    space.bus.subscribe(SwapDroppedEvent, lambda e: dropped.append(e.key))

    # -- collect eight pages of readings ------------------------------------
    pages, readings_per_page = 8, 100
    for page_id in range(pages):
        page = Page(page_id)
        for reading_index in range(readings_per_page):
            page.append(
                Reading(f"s{reading_index % 3}", float(page_id * 100 + reading_index))
            )
        # a full page is a natural swap unit: ingest gives it its own
        # swap-cluster (set_root would put it in unswappable cluster 0)
        handle = space.ingest(
            page,
            cluster_size=1 + readings_per_page,
            root_name=f"page-{page_id}",
        )
        print(f"captured page {page_id}: {handle.count()} readings "
              f"(heap {space.heap.ratio:.0%})")

    print(f"\nafter capture: {space.manager.stats.swap_outs} pages swapped out")
    print(world.describe())

    # -- a holder of swapped data leaves the room ---------------------------
    victim_store = None
    for name in ("van-laptop", "colleague-pda"):
        if len(world.store(name)) > 0:
            victim_store = name
            break
    assert victim_store is not None, "expected at least one swapped page"
    print(f"\n*** {victim_store} leaves the room ***")
    world.depart_cleanly(victim_store)

    # find a page whose cluster is on the departed device and poke it
    unavailable = 0
    totals = {}
    for page_id in range(pages):
        try:
            totals[page_id] = space.get_root(f"page-{page_id}").total()
        except SwapStoreUnavailableError:
            unavailable += 1
    print(f"pages readable: {len(totals)}, unavailable: {unavailable}")

    # -- the device comes back: everything is readable again ----------------
    print(f"\n*** {victim_store} returns ***")
    world.come_back(victim_store)
    for page_id in range(pages):
        totals[page_id] = space.get_root(f"page-{page_id}").total()
    expected = {
        page_id: float(sum(page_id * 100 + i for i in range(readings_per_page)))
        for page_id in range(pages)
    }
    assert totals == expected, "data corrupted across the outage!"
    print("all pages verified against expected checksums")

    # -- discard the oldest pages; GC drops their stored XML ----------------
    for page_id in range(3):
        space.del_root(f"page-{page_id}")
    result = space.gc()
    print(f"\ndiscarded 3 pages -> gc: {result.describe()}")
    print(f"store drops instructed: {dropped or '(pages were resident)'}")

    space.verify_integrity()
    print("\nreferential integrity verified — done.")


if __name__ == "__main__":
    main()
